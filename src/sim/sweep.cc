#include "src/sim/sweep.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <numeric>
#include <utility>

#include "src/common/arena_pool.h"
#include "src/common/logging.h"
#include "src/common/parallel.h"
#include "src/common/thread_pool.h"
#include "src/trace/entity_index.h"

namespace faas {

namespace {

// Shared tail of both sweep paths: percentile + waste roll-ups and the
// baseline normalisation.
void FinalizePoints(std::vector<PolicyPoint>& points, size_t baseline_index) {
  for (PolicyPoint& point : points) {
    point.cold_start_p75 = point.result.AppColdStartPercentile(75.0);
    point.wasted_memory_minutes = point.result.TotalWastedMemoryMinutes();
  }
  const double baseline_waste = points[baseline_index].wasted_memory_minutes;
  for (PolicyPoint& point : points) {
    point.normalized_wasted_memory_pct =
        baseline_waste > 0.0
            ? 100.0 * point.wasted_memory_minutes / baseline_waste
            : 0.0;
  }
}

}  // namespace

std::vector<PolicyPoint> EvaluatePolicies(
    const Trace& trace, const std::vector<const PolicyFactory*>& factories,
    size_t baseline_index, const SimulatorOptions& options) {
  return EvaluatePolicies(CompiledTrace::Compile(trace, options.num_threads),
                          factories, baseline_index, options);
}

std::vector<PolicyPoint> EvaluatePolicies(
    const CompiledTrace& compiled,
    const std::vector<const PolicyFactory*>& factories, size_t baseline_index,
    const SimulatorOptions& options) {
  FAAS_CHECK(baseline_index < factories.size()) << "baseline out of range";
  const ColdStartSimulator simulator(options);
  const size_t num_apps = compiled.num_apps();
  const size_t num_policies = factories.size();

  std::vector<PolicyPoint> points(num_policies);
  for (size_t p = 0; p < num_policies; ++p) {
    points[p].name = factories[p]->name();
    points[p].result.policy_name = points[p].name;
    points[p].result.entities = compiled.entities;
    points[p].result.apps.resize(num_apps);
  }

  // Telemetry: one instrument bundle per policy, registered on this thread
  // before the parallel region so worker shards are sized correctly.  The
  // Chrome-trace process lane is the policy ordinal and kAppReplay trace ids
  // are p * num_apps + app, so the collected span set is a deterministic
  // function of the sweep shape, independent of --threads.
  std::vector<SimPolicyInstruments> instruments;
  if (options.telemetry != nullptr) {
    instruments.reserve(num_policies);
    for (size_t p = 0; p < num_policies; ++p) {
      instruments.push_back(SimPolicyInstruments::Register(
          *options.telemetry, factories[p]->name(), static_cast<int16_t>(p),
          static_cast<int64_t>(p * num_apps), compiled.horizon));
    }
  }

  // One task simulates one shard of apps under one policy; every (policy,
  // app) cell lands in its own pre-sized slot, so scheduling order cannot
  // change the output.  Shards keep the task count well above the thread
  // count for load balance without paying one dispatch per app.
  const int threads =
      options.num_threads == 0 ? HardwareThreads() : options.num_threads;
  const size_t shard_size = std::clamp<size_t>(
      num_apps / std::max<size_t>(1, static_cast<size_t>(threads) * 4), 1,
      256);
  const size_t num_shards =
      num_apps == 0 ? 0 : (num_apps + shard_size - 1) / shard_size;

  // The daily-rate distribution is heavy-tailed, so a few shards can carry
  // most of the invocations; with dynamic claiming a giant shard picked up
  // last serialises the whole region behind one thread.  Schedule tasks in
  // descending shard-invocation order instead (stable, so equal-cost tasks
  // keep policy-major order and the permutation is deterministic), claiming
  // one task at a time.  Output slots are per-(policy, app), so scheduling
  // order cannot leak into the results.
  std::vector<int64_t> shard_cost(num_shards, 0);
  for (size_t shard = 0; shard < num_shards; ++shard) {
    const size_t begin = shard * shard_size;
    const size_t end = std::min(begin + shard_size, num_apps);
    for (size_t i = begin; i < end; ++i) {
      shard_cost[shard] += static_cast<int64_t>(compiled.spans[i].size());
    }
  }
  std::vector<size_t> task_order(num_policies * num_shards);
  std::iota(task_order.begin(), task_order.end(), size_t{0});
  std::stable_sort(task_order.begin(), task_order.end(),
                   [&](size_t a, size_t b) {
                     return shard_cost[a % num_shards] >
                            shard_cost[b % num_shards];
                   });

  ParallelFor(
      task_order.size(),
      [&](size_t slot) {
        const size_t task = task_order[slot];
        const size_t p = task / num_shards;
        const size_t shard = task % num_shards;
        const size_t begin = shard * shard_size;
        const size_t end = std::min(begin + shard_size, num_apps);
        const SimPolicyInstruments* policy_instruments =
            instruments.empty() ? nullptr : &instruments[p];
        for (size_t i = begin; i < end; ++i) {
          const std::unique_ptr<KeepAlivePolicy> policy =
              factories[p]->CreateForApp();
          points[p].result.apps[i] =
              simulator.SimulateApp(compiled, i, *policy, policy_instruments);
        }
      },
      options.num_threads, /*chunk=*/1);

  FinalizePoints(points, baseline_index);
  return points;
}

std::vector<PolicyPoint> EvaluatePoliciesStreamed(
    const ShardSource& source,
    const std::vector<const PolicyFactory*>& factories, size_t baseline_index,
    const SimulatorOptions& options, const StreamingSweepOptions& stream) {
  FAAS_CHECK(baseline_index < factories.size()) << "baseline out of range";
  FAAS_CHECK(options.telemetry == nullptr)
      << "telemetry is not supported in streamed sweeps (instrument "
         "registration needs the app population up front); run materialized";
  const ColdStartSimulator simulator(options);
  const int num_shards = source.num_shards();
  const size_t num_policies = factories.size();
  const int threads =
      options.num_threads == 0 ? HardwareThreads() : options.num_threads;

  std::vector<PolicyPoint> points(num_policies);
  for (size_t p = 0; p < num_policies; ++p) {
    points[p].name = factories[p]->name();
    points[p].result.policy_name = points[p].name;
  }

  // Bounded-depth pipeline over reusable slots: shard k lives in slot
  // k % depth.  Generation of a shard is claimed exactly once through a CAS
  // (either by a pool worker running the prefetch task, or inline by the
  // consumer when it arrives first — which is also what keeps a zero-worker
  // pool deadlock-free), so at most `depth` arenas exist at any moment.
  struct Slot {
    std::mutex mu;
    std::condition_variable cv;
    std::unique_ptr<CompiledTrace> arena;  // set under mu when ready
    bool ready = false;                    // guarded by mu
    std::atomic<int> claim{0};             // 0 = unclaimed, 1 = claimed
    int shard = -1;                        // target shard for this cycle
  };
  const int depth =
      std::max(1, std::min(stream.max_resident_shards,
                           num_shards == 0 ? 1 : num_shards));
  // Slots are shared with the queued prefetch tasks: a task whose shard the
  // consumer claimed inline may still sit in the pool queue when this frame
  // unwinds, and must find valid memory for its (failing) claim check.
  std::vector<std::shared_ptr<Slot>> slots;
  slots.reserve(static_cast<size_t>(depth));
  for (int s = 0; s < depth; ++s) {
    slots.push_back(std::make_shared<Slot>());
  }

  ThreadPool& pool = ThreadPool::Shared();
  // Prefetch only helps when a worker can overlap generation with the
  // consumer's simulation; with zero workers or a sequential run the
  // consumer generates every shard inline.
  const bool prefetch = threads > 1 && pool.num_workers() > 0 && depth > 1;
  ArenaPool<CompiledTrace> arena_pool;

  auto generate = [&](Slot& slot) {
    std::unique_ptr<CompiledTrace> arena = arena_pool.Acquire();
    source.Fill(slot.shard, arena.get());
    std::lock_guard<std::mutex> lock(slot.mu);
    slot.arena = std::move(arena);
    slot.ready = true;
    slot.cv.notify_all();
  };

  // Arms slot (shard % depth) for `shard` and, when prefetching, offers the
  // generation to the pool.  The shard/ready writes happen before the claim
  // reset (release), and every generator CAS-acquires the claim, so whoever
  // wins sees the new target.  A stale task from the slot's previous cycle
  // can also win the CAS — it generates the *current* target, which is
  // exactly as correct.
  auto arm = [&](int shard) {
    const std::shared_ptr<Slot>& slot_ptr =
        slots[static_cast<size_t>(shard) % static_cast<size_t>(depth)];
    Slot& slot = *slot_ptr;
    {
      std::lock_guard<std::mutex> lock(slot.mu);
      slot.ready = false;
      slot.shard = shard;
    }
    slot.claim.store(0, std::memory_order_release);
    if (prefetch) {
      // `generate` is captured by reference; it is only invoked after a
      // successful claim, and the drain guard below forecloses every claim
      // before this frame unwinds, so the reference never dangles in use.
      std::shared_ptr<Slot> armed = slot_ptr;
      pool.Submit([armed, &generate] {
        int expected = 0;
        if (armed->claim.compare_exchange_strong(expected, 1,
                                                 std::memory_order_acq_rel)) {
          generate(*armed);
        }
      });
    }
  };

  // On every exit path (including a policy exception rethrown out of the
  // simulation region) claim all slots, so a still-queued prefetch task can
  // never start generating against destroyed locals, and wait out any
  // generation already in flight on a worker.
  struct DrainGuard {
    std::vector<std::shared_ptr<Slot>>& slots;
    ~DrainGuard() {
      for (const std::shared_ptr<Slot>& slot_ptr : slots) {
        Slot& slot = *slot_ptr;
        int expected = 0;
        if (slot.claim.compare_exchange_strong(expected, 1,
                                               std::memory_order_acq_rel)) {
          continue;  // We own the claim; no generation will ever start.
        }
        // Claimed by a generator (possibly long finished): wait until the
        // arena handoff is published so no worker still touches the slot.
        std::unique_lock<std::mutex> lock(slot.mu);
        slot.cv.wait(lock, [&slot] { return slot.ready; });
      }
    }
  } drain_guard{slots};

  for (int k = 0; k < std::min(depth, num_shards); ++k) {
    arm(k);
  }

  auto entities = std::make_shared<EntityIndex>();
  size_t app_offset = 0;  // global dense id of the next surviving app
  for (int k = 0; k < num_shards; ++k) {
    Slot& slot =
        *slots[static_cast<size_t>(k) % static_cast<size_t>(depth)];
    int expected = 0;
    if (slot.claim.compare_exchange_strong(expected, 1,
                                           std::memory_order_acq_rel)) {
      generate(slot);
    }
    std::unique_ptr<CompiledTrace> arena;
    {
      std::unique_lock<std::mutex> lock(slot.mu);
      slot.cv.wait(lock, [&slot] { return slot.ready; });
      arena = std::move(slot.arena);
    }
    // The slot is free again: arm it for the shard `depth` ahead so its
    // generation overlaps this shard's simulation.
    if (k + depth < num_shards) {
      arm(k + depth);
    }

    const CompiledTrace& compiled = *arena;
    const size_t local_apps = compiled.num_apps();
    // Fold the shard's surviving apps into the global identity space: ids
    // are positional, so interning in shard-consumption order reproduces
    // the canonical ids of the materialized path exactly.
    for (size_t i = 0; i < local_apps; ++i) {
      const AppId local(static_cast<int64_t>(i));
      entities->AddApp(compiled.entities->OwnerName(local),
                       compiled.entities->AppName(local));
    }
    for (size_t p = 0; p < num_policies; ++p) {
      points[p].result.apps.resize(app_offset + local_apps);
    }

    // Same (policy x app-chunk) cell structure as the materialized engine,
    // scoped to this shard; every cell writes its own slot.
    const size_t sim_chunk = std::clamp<size_t>(
        local_apps / std::max<size_t>(1, static_cast<size_t>(threads) * 4),
        1, 256);
    const size_t num_chunks =
        local_apps == 0 ? 0 : (local_apps + sim_chunk - 1) / sim_chunk;
    ParallelFor(
        num_policies * num_chunks,
        [&](size_t task) {
          const size_t p = task / num_chunks;
          const size_t chunk = task % num_chunks;
          const size_t begin = chunk * sim_chunk;
          const size_t end = std::min(begin + sim_chunk, local_apps);
          for (size_t i = begin; i < end; ++i) {
            const std::unique_ptr<KeepAlivePolicy> policy =
                factories[p]->CreateForApp();
            AppSimResult result = simulator.SimulateApp(compiled, i, *policy);
            // SimulateApp stamps the shard-local id; lift it to the global
            // dense range.
            result.app = AppId(static_cast<int64_t>(app_offset + i));
            points[p].result.apps[app_offset + i] = std::move(result);
          }
        },
        options.num_threads);
    app_offset += local_apps;
    arena_pool.Release(std::move(arena));
  }

  const std::shared_ptr<const EntityIndex> shared_entities =
      std::move(entities);
  for (size_t p = 0; p < num_policies; ++p) {
    points[p].result.entities = shared_entities;
  }
  FinalizePoints(points, baseline_index);
  return points;
}

}  // namespace faas
