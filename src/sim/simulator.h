// Analytic cold-start simulator (Section 5.1).
//
// Replays each application's merged invocation stream against a keep-alive
// policy and classifies every invocation as warm or cold, while accounting
// the "wasted memory time": the time an application image sat loaded in
// memory without executing anything.  Following the paper, function
// execution times default to zero (the conservative worst case for waste),
// the first invocation of every app is a cold start, and all apps are
// assumed to use the same amount of memory unless weighting is enabled.
//
// Window semantics (Figure 9): when an execution ends at time E with
// decision (PW, KA):
//   - PW = 0: the image stays loaded during [E, E + KA].  An invocation in
//     that interval is warm; afterwards, cold.
//   - PW > 0: the image is unloaded at E and re-loaded at E + PW, staying
//     until E + PW + KA.  An invocation before E + PW is cold (it beat the
//     pre-warm); within [E + PW, E + PW + KA] warm; afterwards cold.
// Idle memory is charged from load to unload minus execution time; a window
// that expires unused is charged in full.

#ifndef SRC_SIM_SIMULATOR_H_
#define SRC_SIM_SIMULATOR_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/common/intern.h"
#include "src/common/resource_ledger.h"
#include "src/policy/policy.h"
#include "src/sim/compiled_trace.h"
#include "src/stats/ecdf.h"
#include "src/telemetry/telemetry.h"
#include "src/trace/types.h"

namespace faas {

struct SimulatorOptions {
  // Charge the residency after the last invocation (until the keep-alive
  // expires or the trace horizon ends, whichever is first).
  bool count_tail_residency = true;
  // Use each function's average execution time instead of zero.  Idle time
  // is then measured from execution end, as in the real system.
  bool use_execution_times = false;
  // Weight each app's wasted memory time by its average allocated MB
  // (extension; the paper assumes equal memory use for this analysis).
  bool weight_by_memory = false;
  // Worker threads for Run(); apps are independent, so the result is
  // bit-identical to the sequential run.  0 = hardware concurrency.
  int num_threads = 1;
  // Record per-hour cold-start and invocation counts (for adaptation
  // experiments: how quickly a policy recovers after a pattern change).
  bool track_hourly = false;
  // Optional telemetry sink (non-owning; must outlive the run).  Null keeps
  // the hot loop free of any telemetry branches beyond one pointer test.
  Telemetry* telemetry = nullptr;
};

struct AppSimResult {
  // The app's dense id — its position in the CompiledTrace / EntityIndex.
  // Invalid (kInvalid) for the single-AppTrace legacy path, which has no
  // index; names re-materialize via SimulationResult::AppName.
  AppId app;
  int64_t invocations = 0;
  int64_t cold_starts = 0;
  // Number of pre-warm loads the policy scheduled that actually happened.
  int64_t prewarm_loads = 0;
  // Cost-accounting spine for this app's replay (src/common/
  // resource_ledger.h): the loaded-but-idle integral (scaled by the app's
  // memory when weighting is on), execution-time residency and CPU when
  // execution times are enabled, and load/hit churn.  The wasted-memory
  // view below derives from it.
  ResourceLedger ledger;
  // Per-hour counts; populated only when SimulatorOptions::track_hourly.
  std::vector<int32_t> cold_per_hour;
  std::vector<int32_t> invocations_per_hour;

  // Loaded-but-idle time, in minutes (scaled by memory when weighting is
  // on) — a view over the ledger's idle residency integral.
  double wasted_memory_minutes() const {
    return ledger.wasted_memory_minutes();
  }
  double ColdStartPercent() const {
    return invocations > 0 ? 100.0 * static_cast<double>(cold_starts) /
                                 static_cast<double>(invocations)
                           : 0.0;
  }
};

struct SimulationResult {
  std::string policy_name;
  std::vector<AppSimResult> apps;
  // Entity names for `apps` (shared with the compiled trace); writers
  // re-materialize strings through it at the output boundary.
  std::shared_ptr<const EntityIndex> entities;

  // Name of apps[i], via `entities`.
  const std::string& AppName(size_t i) const;

  int64_t TotalInvocations() const;
  int64_t TotalColdStarts() const;
  double TotalWastedMemoryMinutes() const;
  // Per-app ledgers folded in app order (bit-identical across threads).
  ResourceLedger TotalResources() const;
  // Percentile (e.g. 75 for the paper's headline metric) of the per-app
  // cold-start percentage distribution.
  double AppColdStartPercentile(double pct) const;
  // CDF of per-app cold-start percentages (Figures 14, 16, 17, 18, 20).
  Ecdf AppColdStartEcdf() const;
  // Fraction of apps whose every invocation was cold (Figure 19).  When
  // `exclude_single_invocation` is set, apps with exactly one invocation are
  // excluded from both numerator and denominator.
  double FractionAppsAlwaysCold(bool exclude_single_invocation) const;
  // Aggregate cold-start fraction per hour across all apps (empty unless the
  // run tracked hourly counts).
  std::vector<double> HourlyColdFraction() const;
};

class ColdStartSimulator {
 public:
  explicit ColdStartSimulator(SimulatorOptions options = {})
      : options_(options) {}

  // Simulates one application against a fresh policy instance, merging the
  // app's per-function streams in place (the legacy single-app path; sweeps
  // should compile the trace once instead).
  AppSimResult SimulateApp(const AppTrace& app, Duration horizon,
                           KeepAlivePolicy& policy) const;

  // Simulates one app of a pre-compiled trace.  Bit-identical to the
  // AppTrace overload on the same app.  `instruments` (optional) receives
  // per-minute series updates, per-app counter flushes and one kAppReplay
  // span; the simulated result itself is unaffected.
  AppSimResult SimulateApp(const CompiledTrace& compiled, size_t app_index,
                           KeepAlivePolicy& policy,
                           const SimPolicyInstruments* instruments =
                               nullptr) const;

  // Simulates the whole trace, one policy instance per app.  The Trace
  // overload compiles the trace and delegates; callers evaluating several
  // policies should compile once and use the CompiledTrace overload.
  SimulationResult Run(const Trace& trace, const PolicyFactory& factory) const;
  SimulationResult Run(const CompiledTrace& compiled,
                       const PolicyFactory& factory) const;

 private:
  // Shared replay core over a merged, time-sorted invocation stream.
  // `exec_ms` may be null, meaning every execution takes zero time.  The
  // caller stamps identity (AppSimResult::app) on the returned result.
  AppSimResult SimulateStream(const int64_t* times_ms, const int64_t* exec_ms,
                              size_t count, double memory_mb, Duration horizon,
                              KeepAlivePolicy& policy,
                              const SimPolicyInstruments* instruments =
                                  nullptr) const;

  // Devirtualized replay for policies with a static decision (fixed
  // keep-alive), used when no per-invocation telemetry is attached.
  // Bit-identical to the general loop: same accumulation order, same
  // comparisons, just without the two virtual calls per invocation.
  AppSimResult SimulateStaticStream(const int64_t* times_ms,
                                    const int64_t* exec_ms, size_t count,
                                    double memory_mb, Duration horizon,
                                    PolicyDecision decision) const;

  SimulatorOptions options_;
};

}  // namespace faas

#endif  // SRC_SIM_SIMULATOR_H_
