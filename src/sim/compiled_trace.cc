#include "src/sim/compiled_trace.h"

#include <algorithm>
#include <utility>

#include "src/common/logging.h"
#include "src/common/parallel.h"
#include "src/trace/entity_index.h"
#include "src/trace/types.h"

namespace faas {

const std::string& CompiledTrace::AppName(size_t app) const {
  return entities->AppName(AppId(app));
}

CompiledTrace CompiledTrace::Compile(const Trace& trace, int num_threads) {
  CompiledTrace compiled;
  compiled.horizon = trace.horizon;
  compiled.entities = EntityIndexFor(trace);

  const size_t num_apps = trace.apps.size();
  compiled.spans.resize(num_apps);
  compiled.memory_mb.resize(num_apps);

  size_t total = 0;
  for (size_t a = 0; a < num_apps; ++a) {
    const AppTrace& app = trace.apps[a];
    compiled.spans[a].begin = total;
    for (const auto& function : app.functions) {
      total += function.invocations.size();
    }
    compiled.spans[a].end = total;
    compiled.memory_mb[a] = app.memory.average_mb;
  }
  compiled.times_ms.resize(total);
  compiled.exec_ms.resize(total);

  ParallelFor(
      num_apps,
      [&](size_t a) {
        const AppTrace& app = trace.apps[a];
        const AppSpan span = compiled.spans[a];
        // Merge through (time, exec) pairs so ties between functions break
        // exactly as the legacy per-policy merge broke them: same insertion
        // order, same time-only comparator, same (unstable) sort.
        std::vector<std::pair<int64_t, int64_t>> merged;
        merged.reserve(span.size());
        for (const auto& function : app.functions) {
          const int64_t exec =
              static_cast<int64_t>(function.execution.average_ms);
          for (TimePoint t : function.invocations) {
            merged.emplace_back(t.millis_since_origin(), exec);
          }
        }
        std::sort(merged.begin(), merged.end(),
                  [](const std::pair<int64_t, int64_t>& lhs,
                     const std::pair<int64_t, int64_t>& rhs) {
                    return lhs.first < rhs.first;
                  });
        for (size_t i = 0; i < merged.size(); ++i) {
          compiled.times_ms[span.begin + i] = merged[i].first;
          compiled.exec_ms[span.begin + i] = merged[i].second;
        }
      },
      num_threads);
  return compiled;
}

void CompiledTrace::CompileRangeInto(const Trace& trace, size_t begin_app,
                                     size_t end_app, CompiledTrace* out) {
  FAAS_CHECK(begin_app <= end_app && end_app <= trace.apps.size())
      << "app range [" << begin_app << ", " << end_app << ") out of [0, "
      << trace.apps.size() << ")";
  out->horizon = trace.horizon;

  auto entities = std::make_shared<EntityIndex>();
  const size_t num_apps = end_app - begin_app;
  out->spans.resize(num_apps);
  out->memory_mb.resize(num_apps);

  size_t total = 0;
  for (size_t a = 0; a < num_apps; ++a) {
    const AppTrace& app = trace.apps[begin_app + a];
    entities->AddApp(app.owner_id, app.app_id);
    out->spans[a].begin = total;
    for (const auto& function : app.functions) {
      total += function.invocations.size();
    }
    out->spans[a].end = total;
    out->memory_mb[a] = app.memory.average_mb;
  }
  out->entities = std::move(entities);
  out->times_ms.resize(total);
  out->exec_ms.resize(total);

  // One reusable merge buffer for the whole shard: per-app scratch
  // allocation would defeat the arena recycling this path exists for.
  std::vector<std::pair<int64_t, int64_t>> merged;
  for (size_t a = 0; a < num_apps; ++a) {
    const AppTrace& app = trace.apps[begin_app + a];
    const AppSpan span = out->spans[a];
    merged.clear();
    merged.reserve(span.size());
    for (const auto& function : app.functions) {
      const int64_t exec = static_cast<int64_t>(function.execution.average_ms);
      for (TimePoint t : function.invocations) {
        merged.emplace_back(t.millis_since_origin(), exec);
      }
    }
    std::sort(merged.begin(), merged.end(),
              [](const std::pair<int64_t, int64_t>& lhs,
                 const std::pair<int64_t, int64_t>& rhs) {
                return lhs.first < rhs.first;
              });
    for (size_t i = 0; i < merged.size(); ++i) {
      out->times_ms[span.begin + i] = merged[i].first;
      out->exec_ms[span.begin + i] = merged[i].second;
    }
  }
}

}  // namespace faas
