#include "src/sim/shard_source.h"

#include <algorithm>

#include "src/common/logging.h"
#include "src/trace/types.h"
#include "src/workload/generator.h"

namespace faas {

namespace {

int ShardCount(int num_apps, int shard_apps) {
  FAAS_CHECK(shard_apps > 0) << "shard_apps must be positive";
  return num_apps == 0 ? 0 : (num_apps + shard_apps - 1) / shard_apps;
}

}  // namespace

TraceShardSource::TraceShardSource(const Trace& trace, int shard_apps)
    : trace_(trace),
      shard_apps_(shard_apps),
      num_apps_(static_cast<int>(trace.apps.size())),
      num_shards_(ShardCount(num_apps_, shard_apps)) {}

int TraceShardSource::shard_begin(int k) const {
  FAAS_CHECK(k >= 0 && k < num_shards_) << "shard " << k << " out of range";
  return k * shard_apps_;
}

int TraceShardSource::shard_end(int k) const {
  return std::min(shard_begin(k) + shard_apps_, num_apps_);
}

void TraceShardSource::Fill(int k, CompiledTrace* arena) const {
  CompiledTrace::CompileRangeInto(trace_,
                                  static_cast<size_t>(shard_begin(k)),
                                  static_cast<size_t>(shard_end(k)), arena);
}

GeneratorShardSource::GeneratorShardSource(WorkloadGenerator& generator,
                                           int shard_apps)
    : generator_(generator),
      shard_apps_(shard_apps),
      num_apps_(generator.num_sampled_apps()),
      num_shards_(ShardCount(num_apps_, shard_apps)) {
  FAAS_CHECK(generator.config().flash_crowd_count == 0)
      << "flash crowds are a global overlay; streamed generation requires "
         "flash_crowd_count == 0";
  // Pay the one-time global pass (structure sampling + rate ranking) here so
  // concurrent Fill calls are pure per-shard work.
  generator.PreparePlans();
}

int GeneratorShardSource::shard_begin(int k) const {
  FAAS_CHECK(k >= 0 && k < num_shards_) << "shard " << k << " out of range";
  return k * shard_apps_;
}

int GeneratorShardSource::shard_end(int k) const {
  return std::min(shard_begin(k) + shard_apps_, num_apps_);
}

void GeneratorShardSource::Fill(int k, CompiledTrace* arena) const {
  const Trace shard = generator_.GenerateShard(shard_begin(k), shard_end(k));
  CompiledTrace::CompileRangeInto(shard, 0, shard.apps.size(), arena);
}

}  // namespace faas
