#include "src/common/cpu_topology.h"

#include <algorithm>
#include <charconv>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "src/common/parallel.h"

namespace faas {

namespace {

// Reads a small sysfs file into a string; empty on any failure.
std::string ReadSysFile(const std::string& path) {
  std::ifstream in(path);
  if (!in.is_open()) {
    return {};
  }
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

bool ParseInt(std::string_view text, int* value) {
  const char* begin = text.data();
  const char* end = begin + text.size();
  const auto [ptr, ec] = std::from_chars(begin, end, *value);
  return ec == std::errc() && ptr == end && *value >= 0;
}

CpuTopology FallbackTopology() {
  CpuTopology topo;
  CpuTopology::Node node;
  node.id = 0;
  const int cpus = HardwareThreads();
  node.cpus.reserve(static_cast<size_t>(cpus));
  for (int c = 0; c < cpus; ++c) {
    node.cpus.push_back(c);
  }
  topo.nodes.push_back(std::move(node));
  return topo;
}

CpuTopology DetectUncached() {
#if defined(__linux__)
  CpuTopology topo;
  // Nodes are sparse in principle; probe a generous id range rather than
  // listing the directory (keeps this dependency-free).
  constexpr int kMaxNodeProbe = 256;
  for (int id = 0; id < kMaxNodeProbe; ++id) {
    const std::string path =
        "/sys/devices/system/node/node" + std::to_string(id) + "/cpulist";
    const std::string list = ReadSysFile(path);
    if (list.empty()) {
      continue;
    }
    CpuTopology::Node node;
    node.id = id;
    node.cpus = CpuTopology::ParseCpuList(list);
    if (!node.cpus.empty()) {
      topo.nodes.push_back(std::move(node));
    }
  }
  if (!topo.nodes.empty()) {
    return topo;
  }
#endif
  return FallbackTopology();
}

}  // namespace

int CpuTopology::num_cpus() const {
  int total = 0;
  for (const Node& node : nodes) {
    total += static_cast<int>(node.cpus.size());
  }
  return total;
}

std::vector<int> CpuTopology::InterleavedCpus() const {
  std::vector<int> cpus;
  cpus.reserve(static_cast<size_t>(num_cpus()));
  for (size_t round = 0; cpus.size() < static_cast<size_t>(num_cpus());
       ++round) {
    for (const Node& node : nodes) {
      if (round < node.cpus.size()) {
        cpus.push_back(node.cpus[round]);
      }
    }
  }
  return cpus;
}

int CpuTopology::NodeOfCpu(int cpu) const {
  for (size_t n = 0; n < nodes.size(); ++n) {
    const auto& cpus = nodes[n].cpus;
    if (std::find(cpus.begin(), cpus.end(), cpu) != cpus.end()) {
      return static_cast<int>(n);
    }
  }
  return 0;
}

const CpuTopology& CpuTopology::Detect() {
  static const CpuTopology topo = DetectUncached();
  return topo;
}

std::vector<int> CpuTopology::ParseCpuList(std::string_view list) {
  std::vector<int> cpus;
  size_t pos = 0;
  while (pos < list.size()) {
    size_t comma = list.find(',', pos);
    if (comma == std::string_view::npos) {
      comma = list.size();
    }
    std::string_view chunk = list.substr(pos, comma - pos);
    pos = comma + 1;
    // Trim whitespace / trailing newline.
    while (!chunk.empty() && (chunk.back() == '\n' || chunk.back() == ' ')) {
      chunk.remove_suffix(1);
    }
    while (!chunk.empty() && chunk.front() == ' ') {
      chunk.remove_prefix(1);
    }
    if (chunk.empty()) {
      continue;
    }
    const size_t dash = chunk.find('-');
    int lo = 0;
    int hi = 0;
    if (dash == std::string_view::npos) {
      if (!ParseInt(chunk, &lo)) {
        continue;
      }
      hi = lo;
    } else if (!ParseInt(chunk.substr(0, dash), &lo) ||
               !ParseInt(chunk.substr(dash + 1), &hi) || hi < lo) {
      continue;
    }
    for (int c = lo; c <= hi; ++c) {
      cpus.push_back(c);
    }
  }
  std::sort(cpus.begin(), cpus.end());
  cpus.erase(std::unique(cpus.begin(), cpus.end()), cpus.end());
  return cpus;
}

}  // namespace faas
