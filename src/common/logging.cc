#include "src/common/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace faas {

namespace {

std::atomic<int> g_log_level{static_cast<int>(LogLevel::kWarning)};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}

const char* Basename(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash != nullptr ? slash + 1 : path;
}

}  // namespace

void SetLogLevel(LogLevel level) {
  g_log_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_log_level.load(std::memory_order_relaxed));
}

namespace log_internal {

bool LogEnabled(LogLevel level) {
  return static_cast<int>(level) >=
         g_log_level.load(std::memory_order_relaxed);
}

void EmitLog(LogLevel level, const char* file, int line,
             const std::string& message) {
  std::fprintf(stderr, "[%s %s:%d] %s\n", LevelName(level), Basename(file),
               line, message.c_str());
}

CheckFailure::CheckFailure(const char* file, int line, const char* condition)
    : file_(file), line_(line), condition_(condition) {}

CheckFailure::~CheckFailure() {
  std::fprintf(stderr, "[FATAL %s:%d] check failed: %s %s\n", Basename(file_),
               line_, condition_, stream_.str().c_str());
  std::abort();
}

}  // namespace log_internal

}  // namespace faas
