#include "src/common/time.h"

#include <cinttypes>
#include <cstdio>

namespace faas {

std::string Duration::ToString() const {
  char buf[64];
  int64_t ms = millis_;
  const char* sign = "";
  if (ms < 0) {
    sign = "-";
    ms = -ms;
  }
  if (ms < 1000) {
    std::snprintf(buf, sizeof(buf), "%s%" PRId64 "ms", sign, ms);
  } else if (ms < 60'000) {
    std::snprintf(buf, sizeof(buf), "%s%.3fs", sign, static_cast<double>(ms) / 1e3);
  } else if (ms < 3'600'000) {
    std::snprintf(buf, sizeof(buf), "%s%.2fmin", sign, static_cast<double>(ms) / 6e4);
  } else {
    std::snprintf(buf, sizeof(buf), "%s%.2fh", sign, static_cast<double>(ms) / 3.6e6);
  }
  return buf;
}

std::string TimePoint::ToString() const {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "t+%.3fs", static_cast<double>(millis_) / 1e3);
  return buf;
}

}  // namespace faas
