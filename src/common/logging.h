// Minimal leveled logging.
//
// The simulators run millions of events; logging must be cheap when disabled.
// The FAAS_LOG macro evaluates its stream expression only when the level is
// enabled, so disabled log lines cost one branch.

#ifndef SRC_COMMON_LOGGING_H_
#define SRC_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace faas {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
  kOff = 4,
};

// Global threshold; messages below it are dropped.  Defaults to kWarning so
// library users see problems but not chatter.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace log_internal {

bool LogEnabled(LogLevel level);
void EmitLog(LogLevel level, const char* file, int line, const std::string& message);

// Collects one log statement's stream output and emits it on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line)
      : level_(level), file_(file), line_(line) {}
  ~LogMessage() { EmitLog(level_, file_, line_, stream_.str()); }

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

}  // namespace log_internal

#define FAAS_LOG(level)                                                      \
  if (!::faas::log_internal::LogEnabled(::faas::LogLevel::level)) {          \
  } else                                                                     \
    ::faas::log_internal::LogMessage(::faas::LogLevel::level, __FILE__,      \
                                     __LINE__)                               \
        .stream()

#define FAAS_CHECK(condition)                                                \
  if (condition) {                                                           \
  } else                                                                     \
    ::faas::log_internal::CheckFailure(__FILE__, __LINE__, #condition).stream()

namespace log_internal {

// Prints the failed condition and aborts when destroyed.
class CheckFailure {
 public:
  CheckFailure(const char* file, int line, const char* condition);
  [[noreturn]] ~CheckFailure();

  CheckFailure(const CheckFailure&) = delete;
  CheckFailure& operator=(const CheckFailure&) = delete;

  std::ostringstream& stream() { return stream_; }

 private:
  const char* file_;
  int line_;
  const char* condition_;
  std::ostringstream stream_;
};

}  // namespace log_internal

}  // namespace faas

#endif  // SRC_COMMON_LOGGING_H_
