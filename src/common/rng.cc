#include "src/common/rng.h"

#include <cassert>
#include <cmath>

namespace faas {

namespace {

inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& word : state_) {
    word = SplitMix64(sm);
  }
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

Rng Rng::Fork() { return Rng(Next() ^ 0xD2B74407B1CE6E93ull); }

double Rng::NextDouble() {
  // 53 random mantissa bits -> uniform double in [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::UniformDouble(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

uint64_t Rng::UniformInt(uint64_t n) {
  assert(n > 0);
  // Lemire's nearly-divisionless bounded sampling with rejection.
  uint64_t x = Next();
  __uint128_t m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(n);
  uint64_t l = static_cast<uint64_t>(m);
  if (l < n) {
    uint64_t threshold = (-n) % n;
    while (l < threshold) {
      x = Next();
      m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(n);
      l = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  return lo + static_cast<int64_t>(
                  UniformInt(static_cast<uint64_t>(hi - lo) + 1));
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) {
    return false;
  }
  if (p >= 1.0) {
    return true;
  }
  return NextDouble() < p;
}

double Rng::NextGaussian() {
  if (has_spare_gaussian_) {
    has_spare_gaussian_ = false;
    return spare_gaussian_;
  }
  double u, v, s;
  do {
    u = UniformDouble(-1.0, 1.0);
    v = UniformDouble(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double mul = std::sqrt(-2.0 * std::log(s) / s);
  spare_gaussian_ = v * mul;
  has_spare_gaussian_ = true;
  return u * mul;
}

double Rng::NextExponential(double rate) {
  assert(rate > 0.0);
  // 1 - NextDouble() is in (0, 1], so the log is finite.
  return -std::log(1.0 - NextDouble()) / rate;
}

double Rng::NextLogNormal(double mu, double sigma) {
  return std::exp(mu + sigma * NextGaussian());
}

double Rng::NextPoisson(double mean) {
  assert(mean >= 0.0);
  if (mean == 0.0) {
    return 0.0;
  }
  if (mean < 64.0) {
    // Knuth's multiplicative method.
    const double limit = std::exp(-mean);
    double product = NextDouble();
    double count = 0.0;
    while (product > limit) {
      product *= NextDouble();
      count += 1.0;
    }
    return count;
  }
  // Normal approximation with continuity correction, clamped at zero.
  const double draw = mean + std::sqrt(mean) * NextGaussian() + 0.5;
  return draw < 0.0 ? 0.0 : std::floor(draw);
}

size_t Rng::WeightedIndex(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) {
    assert(w >= 0.0);
    total += w;
  }
  assert(total > 0.0);
  double target = NextDouble() * total;
  for (size_t i = 0; i < weights.size(); ++i) {
    target -= weights[i];
    if (target < 0.0) {
      return i;
    }
  }
  return weights.size() - 1;  // Floating-point slack: fall back to the last.
}

}  // namespace faas
