// Small string utilities used by the CSV trace readers/writers.

#ifndef SRC_COMMON_STRINGS_H_
#define SRC_COMMON_STRINGS_H_

#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace faas {

// Splits on every occurrence of `delim` (adjacent delimiters yield empty
// fields, matching CSV semantics).
std::vector<std::string_view> SplitString(std::string_view input, char delim);

// Removes leading and trailing ASCII whitespace.
std::string_view StripWhitespace(std::string_view input);

// Locale-independent numeric parsing; returns nullopt on any trailing junk.
std::optional<double> ParseDouble(std::string_view input);
std::optional<int64_t> ParseInt64(std::string_view input);

bool StartsWith(std::string_view text, std::string_view prefix);

// Joins the pieces with `sep` between them.
std::string JoinStrings(const std::vector<std::string>& pieces,
                        std::string_view sep);

}  // namespace faas

#endif  // SRC_COMMON_STRINGS_H_
