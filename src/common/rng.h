// Deterministic pseudo-random number generation.
//
// All stochastic components in this project (workload synthesis, samplers,
// the cluster latency model) draw from this generator so that every
// experiment is reproducible from a single seed.  The core generator is
// xoshiro256** (Blackman & Vigna), seeded via splitmix64; both are tiny,
// fast, and have no global state, unlike std::mt19937 whose 5 KB of state
// makes per-application generators expensive.

#ifndef SRC_COMMON_RNG_H_
#define SRC_COMMON_RNG_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace faas {

// Stateless seed expander: maps any 64-bit seed to a well-mixed stream.
// Used to initialise xoshiro state and to derive independent child seeds.
uint64_t SplitMix64(uint64_t& state);

// xoshiro256** 1.0.  Satisfies the C++ UniformRandomBitGenerator concept so
// it can also drive <random> distributions where convenient.
class Rng {
 public:
  using result_type = uint64_t;

  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ull);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ull; }

  result_type operator()() { return Next(); }
  uint64_t Next();

  // Derives an independent generator; calling Fork() repeatedly yields a
  // stream of generators with decorrelated sequences.
  Rng Fork();

  // Uniform double in [0, 1).
  double NextDouble();
  // Uniform double in [lo, hi).
  double UniformDouble(double lo, double hi);
  // Uniform integer in [0, n).  n must be > 0.
  uint64_t UniformInt(uint64_t n);
  // Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi);
  // True with probability p (clamped to [0, 1]).
  bool Bernoulli(double p);

  // Standard normal via Marsaglia polar method (cached spare deviate).
  double NextGaussian();
  // Exponential with the given rate (mean 1/rate).
  double NextExponential(double rate);
  // Log-normal: exp(N(mu, sigma^2)).
  double NextLogNormal(double mu, double sigma);
  // Poisson-distributed count with the given mean (Knuth for small means,
  // normal approximation above 64).
  double NextPoisson(double mean);

  // Samples an index in [0, weights.size()) proportionally to weights.
  // Weights must be non-negative with a positive sum.
  size_t WeightedIndex(const std::vector<double>& weights);

 private:
  uint64_t state_[4];
  double spare_gaussian_ = 0.0;
  bool has_spare_gaussian_ = false;
};

}  // namespace faas

#endif  // SRC_COMMON_RNG_H_
