#include "src/common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <exception>
#include <memory>

#include "src/common/parallel.h"

namespace faas {

namespace {

// Shared state of one For() region.  Kept alive by shared_ptr so helper
// tasks that wake after the caller returned (having found no chunk left)
// still touch valid memory; `fn` is only dereferenced while the caller is
// provably blocked in Wait() (a claimed chunk implies finished < count).
struct ForRegion {
  size_t count = 0;
  size_t chunk = 1;
  const std::function<void(size_t)>* fn = nullptr;
  std::atomic<size_t> next{0};
  std::atomic<bool> cancelled{false};

  std::mutex mu;
  std::condition_variable done_cv;
  size_t finished = 0;  // indices accounted for; region done at == count
  std::exception_ptr error;

  // Claims and runs chunks until the range is exhausted.  On exception,
  // records the first error and lets the remaining chunks drain unexecuted
  // so `finished` still reaches `count`.
  void RunChunks() {
    while (true) {
      const size_t begin = next.fetch_add(chunk, std::memory_order_relaxed);
      if (begin >= count) {
        return;
      }
      const size_t end = std::min(begin + chunk, count);
      if (!cancelled.load(std::memory_order_relaxed)) {
        try {
          for (size_t i = begin; i < end; ++i) {
            (*fn)(i);
          }
        } catch (...) {
          std::lock_guard<std::mutex> lock(mu);
          if (error == nullptr) {
            error = std::current_exception();
          }
          cancelled.store(true, std::memory_order_relaxed);
        }
      }
      std::lock_guard<std::mutex> lock(mu);
      finished += end - begin;
      if (finished == count) {
        done_cv.notify_all();
      }
    }
  }

  void Wait() {
    std::unique_lock<std::mutex> lock(mu);
    done_cv.wait(lock, [this] { return finished == count; });
    if (error != nullptr) {
      std::rethrow_exception(error);
    }
  }
};

}  // namespace

ThreadPool::ThreadPool(int num_threads) {
  if (num_threads == 0) {
    num_threads = HardwareThreads();
  }
  const int workers = std::max(0, num_threads - 1);
  threads_.reserve(static_cast<size_t>(workers));
  for (int i = 0; i < workers; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& thread : threads_) {
    thread.join();
  }
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) {
        return;  // stop_ set and nothing left to drain
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::For(size_t count, const std::function<void(size_t)>& fn,
                     int max_parallelism, size_t chunk) {
  if (max_parallelism == 0) {
    max_parallelism = num_workers() + 1;
  }
  if (count <= 1 || max_parallelism <= 1) {
    for (size_t i = 0; i < count; ++i) {
      fn(i);  // Inline path: exceptions propagate naturally.
    }
    return;
  }
  const size_t participants =
      std::min({static_cast<size_t>(max_parallelism),
                static_cast<size_t>(num_workers()) + 1, count});
  if (chunk == 0) {
    chunk = std::max<size_t>(1, count / (participants * 8));
  }

  auto region = std::make_shared<ForRegion>();
  region->count = count;
  region->chunk = chunk;
  region->fn = &fn;

  const size_t helpers =
      std::min(participants - 1, (count + chunk - 1) / chunk - 1);
  for (size_t h = 0; h < helpers; ++h) {
    Submit([region] { region->RunChunks(); });
  }
  region->RunChunks();
  region->Wait();
}

ThreadPool& ThreadPool::Shared() {
  static ThreadPool pool(0);
  return pool;
}

}  // namespace faas
