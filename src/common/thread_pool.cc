#include "src/common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <exception>
#include <memory>

#include "src/common/cpu_topology.h"
#include "src/common/parallel.h"

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

namespace faas {

namespace {

// NUMA node of the current thread; written once by pinned workers before
// they start serving tasks, read by CurrentNodeId() on any thread.
thread_local int tls_node_id = 0;

// Binds the calling thread to one CPU.  Best-effort: failure (e.g. a cgroup
// that masks the CPU) leaves the thread unpinned, which is always correct.
bool PinCurrentThread(int cpu) {
#if defined(__linux__)
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(cpu, &set);
  return pthread_setaffinity_np(pthread_self(), sizeof(set), &set) == 0;
#else
  (void)cpu;
  return false;
#endif
}

// Shared state of one For() region.  Kept alive by shared_ptr so helper
// tasks that wake after the caller returned (having found no chunk left)
// still touch valid memory; `fn` is only dereferenced while the caller is
// provably blocked in Wait() (a claimed chunk implies finished < count).
struct ForRegion {
  size_t count = 0;
  size_t chunk = 1;
  const std::function<void(size_t)>* fn = nullptr;
  std::atomic<size_t> next{0};
  std::atomic<bool> cancelled{false};

  std::mutex mu;
  std::condition_variable done_cv;
  size_t finished = 0;  // indices accounted for; region done at == count
  std::exception_ptr error;

  // Claims and runs chunks until the range is exhausted.  On exception,
  // records the first error and lets the remaining chunks drain unexecuted
  // so `finished` still reaches `count`.
  void RunChunks() {
    while (true) {
      const size_t begin = next.fetch_add(chunk, std::memory_order_relaxed);
      if (begin >= count) {
        return;
      }
      const size_t end = std::min(begin + chunk, count);
      if (!cancelled.load(std::memory_order_relaxed)) {
        try {
          for (size_t i = begin; i < end; ++i) {
            (*fn)(i);
          }
        } catch (...) {
          std::lock_guard<std::mutex> lock(mu);
          if (error == nullptr) {
            error = std::current_exception();
          }
          cancelled.store(true, std::memory_order_relaxed);
        }
      }
      std::lock_guard<std::mutex> lock(mu);
      finished += end - begin;
      if (finished == count) {
        done_cv.notify_all();
      }
    }
  }

  void Wait() {
    std::unique_lock<std::mutex> lock(mu);
    done_cv.wait(lock, [this] { return finished == count; });
    if (error != nullptr) {
      std::rethrow_exception(error);
    }
  }
};

}  // namespace

ThreadPool::ThreadPool(const ThreadPoolOptions& options) {
  int num_threads = options.num_threads;
  if (num_threads == 0) {
    num_threads = HardwareThreads();
  }
  const int workers = std::max(0, num_threads - 1);
  threads_.reserve(static_cast<size_t>(workers));
  std::vector<int> cpus;
  const CpuTopology* topo = nullptr;
  if (options.pin_threads) {
    topo = &CpuTopology::Detect();
    cpus = topo->InterleavedCpus();
    pinned_ = !cpus.empty();
  }
  for (int i = 0; i < workers; ++i) {
    int cpu = -1;
    int node = 0;
    if (pinned_) {
      // The caller thread is participant 0 and typically runs on the first
      // CPU the scheduler gave the process; start workers at slot 1 so the
      // pool as a whole covers distinct CPUs when it is hardware-sized.
      cpu = cpus[static_cast<size_t>(i + 1) % cpus.size()];
      node = topo->NodeOfCpu(cpu);
    }
    threads_.emplace_back([this, cpu, node] { WorkerLoop(cpu, node); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& thread : threads_) {
    thread.join();
  }
}

void ThreadPool::WorkerLoop(int cpu, int node) {
  if (cpu >= 0 && PinCurrentThread(cpu)) {
    tls_node_id = node;
  }
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) {
        return;  // stop_ set and nothing left to drain
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::For(size_t count, const std::function<void(size_t)>& fn,
                     int max_parallelism, size_t chunk) {
  if (max_parallelism == 0) {
    max_parallelism = num_workers() + 1;
  }
  if (count <= 1 || max_parallelism <= 1) {
    for (size_t i = 0; i < count; ++i) {
      fn(i);  // Inline path: exceptions propagate naturally.
    }
    return;
  }
  const size_t participants =
      std::min({static_cast<size_t>(max_parallelism),
                static_cast<size_t>(num_workers()) + 1, count});
  if (chunk == 0) {
    chunk = std::max<size_t>(1, count / (participants * 8));
  }

  auto region = std::make_shared<ForRegion>();
  region->count = count;
  region->chunk = chunk;
  region->fn = &fn;

  const size_t helpers =
      std::min(participants - 1, (count + chunk - 1) / chunk - 1);
  for (size_t h = 0; h < helpers; ++h) {
    Submit([region] { region->RunChunks(); });
  }
  region->RunChunks();
  region->Wait();
}

ThreadPool& ThreadPool::Shared() {
  static ThreadPool pool([] {
    ThreadPoolOptions options;
    if (const char* env = std::getenv("FAAS_POOL_THREADS");
        env != nullptr && env[0] != '\0') {
      const int n = std::atoi(env);
      if (n > 0) {
        options.num_threads = n;
      }
    }
    if (const char* env = std::getenv("FAAS_PIN_THREADS")) {
      options.pin_threads = env[0] != '\0' && env[0] != '0';
    }
    return options;
  }());
  return pool;
}

int ThreadPool::CurrentNodeId() { return tls_node_id; }

}  // namespace faas
