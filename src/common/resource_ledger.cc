#include "src/common/resource_ledger.h"

namespace faas {

double ResourceLedger::CostDollars(const CostModel& model) const {
  if (!model.enabled()) return 0.0;
  return gb_seconds() * model.dollars_per_gb_second +
         cpu_seconds() * model.dollars_per_cpu_second +
         static_cast<double>(invocations) / 1'000'000.0 *
             model.dollars_per_million_invocations;
}

}  // namespace faas
