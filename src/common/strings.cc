#include "src/common/strings.h"

#include <cctype>
#include <charconv>
#include <cstdlib>

namespace faas {

std::vector<std::string_view> SplitString(std::string_view input, char delim) {
  std::vector<std::string_view> parts;
  size_t start = 0;
  while (true) {
    size_t pos = input.find(delim, start);
    if (pos == std::string_view::npos) {
      parts.push_back(input.substr(start));
      break;
    }
    parts.push_back(input.substr(start, pos - start));
    start = pos + 1;
  }
  return parts;
}

std::string_view StripWhitespace(std::string_view input) {
  size_t begin = 0;
  size_t end = input.size();
  while (begin < end &&
         std::isspace(static_cast<unsigned char>(input[begin])) != 0) {
    ++begin;
  }
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(input[end - 1])) != 0) {
    --end;
  }
  return input.substr(begin, end - begin);
}

std::optional<double> ParseDouble(std::string_view input) {
  input = StripWhitespace(input);
  if (input.empty()) {
    return std::nullopt;
  }
  // std::from_chars<double> is available in libstdc++ >= 11.
  double value = 0.0;
  const char* first = input.data();
  const char* last = input.data() + input.size();
  auto [ptr, ec] = std::from_chars(first, last, value);
  if (ec != std::errc() || ptr != last) {
    return std::nullopt;
  }
  return value;
}

std::optional<int64_t> ParseInt64(std::string_view input) {
  input = StripWhitespace(input);
  if (input.empty()) {
    return std::nullopt;
  }
  int64_t value = 0;
  const char* first = input.data();
  const char* last = input.data() + input.size();
  auto [ptr, ec] = std::from_chars(first, last, value);
  if (ec != std::errc() || ptr != last) {
    return std::nullopt;
  }
  return value;
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

std::string JoinStrings(const std::vector<std::string>& pieces,
                        std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < pieces.size(); ++i) {
    if (i > 0) {
      out.append(sep);
    }
    out.append(pieces[i]);
  }
  return out;
}

}  // namespace faas
