// String interning: deterministic dense u32 handles for entity names.
//
// Every layer of the engine identifies applications and functions millions
// of times per replay; carrying `std::string` keys through those paths costs
// an allocation per copy and a full string hash + compare per lookup.  An
// InternTable assigns each distinct name a dense id in *insertion order*, so
// ids are bit-identical across runs and across `--threads` (interning always
// happens single-threaded, at parse/generate time), and per-entity state can
// live in flat arrays indexed by id instead of string-keyed hash maps.
//
// Strings exist at the I/O boundaries only: interned once when a trace is
// read or generated, re-materialized via NameOf when results are written.
//
// AppId/FunctionId are strong wrappers around the u32 handle so an app id
// can never be used where a function id is expected (and vice versa).

#ifndef SRC_COMMON_INTERN_H_
#define SRC_COMMON_INTERN_H_

#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <type_traits>
#include <unordered_map>

namespace faas {

// Dense handle for an interned application.  When built canonically from a
// Trace (EntityIndex::Build), AppId(i) is exactly position i in trace.apps.
struct AppId {
  static constexpr uint32_t kInvalid = UINT32_MAX;

  uint32_t value = kInvalid;

  constexpr AppId() = default;
  template <typename T, typename = std::enable_if_t<std::is_integral_v<T>>>
  constexpr explicit AppId(T v) : value(static_cast<uint32_t>(v)) {}

  constexpr bool valid() const { return value != kInvalid; }
  constexpr size_t index() const { return value; }

  friend constexpr bool operator==(AppId, AppId) = default;
  friend constexpr bool operator<(AppId a, AppId b) {
    return a.value < b.value;
  }
};

// Dense handle for an interned function.  Function names are only unique
// within their owning app, so a FunctionId is always minted relative to an
// AppId (EntityIndex::AddFunction).
struct FunctionId {
  static constexpr uint32_t kInvalid = UINT32_MAX;

  uint32_t value = kInvalid;

  constexpr FunctionId() = default;
  template <typename T, typename = std::enable_if_t<std::is_integral_v<T>>>
  constexpr explicit FunctionId(T v) : value(static_cast<uint32_t>(v)) {}

  constexpr bool valid() const { return value != kInvalid; }
  constexpr size_t index() const { return value; }

  friend constexpr bool operator==(FunctionId, FunctionId) = default;
  friend constexpr bool operator<(FunctionId a, FunctionId b) {
    return a.value < b.value;
  }
};

// Insertion-ordered string -> dense u32 map.  Lookup is heterogeneous
// (string_view, no temporary std::string); stored names have stable
// addresses (deque), so NameOf references stay valid as the table grows.
// Not thread-safe: intern on one thread, share const references freely.
class InternTable {
 public:
  InternTable() = default;

  InternTable(const InternTable&) = delete;
  InternTable& operator=(const InternTable&) = delete;
  InternTable(InternTable&&) = default;
  InternTable& operator=(InternTable&&) = default;

  // Returns the id of `name`, inserting it at the next dense id if new.
  uint32_t Intern(std::string_view name);

  // Lookup without insertion.
  std::optional<uint32_t> Find(std::string_view name) const;

  // The interned string for an id minted by this table.
  const std::string& NameOf(uint32_t id) const;

  size_t size() const { return names_.size(); }
  bool empty() const { return names_.empty(); }

 private:
  // Names in insertion order; deque keeps element addresses stable so the
  // index below can key string_views into the stored strings.
  std::deque<std::string> names_;
  std::unordered_map<std::string_view, uint32_t> index_;
};

}  // namespace faas

template <>
struct std::hash<faas::AppId> {
  size_t operator()(faas::AppId id) const noexcept {
    return std::hash<uint32_t>{}(id.value);
  }
};

template <>
struct std::hash<faas::FunctionId> {
  size_t operator()(faas::FunctionId id) const noexcept {
    return std::hash<uint32_t>{}(id.value);
  }
};

#endif  // SRC_COMMON_INTERN_H_
