#include "src/common/parallel.h"

#include <atomic>
#include <thread>
#include <vector>

namespace faas {

int HardwareThreads() {
  const unsigned int n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

void ParallelFor(size_t count, const std::function<void(size_t)>& fn,
                 int num_threads) {
  if (num_threads == 0) {
    num_threads = HardwareThreads();
  }
  if (num_threads <= 1 || count <= 1) {
    for (size_t i = 0; i < count; ++i) {
      fn(i);
    }
    return;
  }
  const size_t workers =
      std::min(static_cast<size_t>(num_threads), count);
  std::atomic<size_t> next{0};
  std::vector<std::thread> threads;
  threads.reserve(workers);
  for (size_t w = 0; w < workers; ++w) {
    threads.emplace_back([&]() {
      while (true) {
        const size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= count) {
          return;
        }
        fn(i);
      }
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
}

}  // namespace faas
