#include "src/common/parallel.h"

#include <thread>

#include "src/common/thread_pool.h"

namespace faas {

int HardwareThreads() {
  const unsigned int n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

void ParallelFor(size_t count, const std::function<void(size_t)>& fn,
                 int num_threads, size_t chunk) {
  if (num_threads == 0) {
    num_threads = HardwareThreads();
  }
  if (num_threads <= 1 || count <= 1) {
    for (size_t i = 0; i < count; ++i) {
      fn(i);
    }
    return;
  }
  ThreadPool::Shared().For(count, fn, num_threads, chunk);
}

}  // namespace faas
