// Node-local arena recycler for the streaming shard pipeline.
//
// A streamed sweep rotates through thousands of shard arenas but only ever
// holds a bounded handful resident; allocating and freeing multi-megabyte
// vectors once per shard would put the allocator (and, under NUMA, the page
// allocator of whichever node happened to free last) on the hot path.  The
// pool keeps released arenas on per-NUMA-node freelists: a worker acquires
// from its own node's shelf (falling back to other shelves, then to a fresh
// arena), so a recycled buffer's pages stay on the memory controller that
// first touched them.  With one node this degrades to a plain freelist.
//
// T must be default-constructible.  The pool never shrinks on its own;
// bounded residency is the caller's job (the sweep pipeline releases each
// shard before requesting more than `max_resident_shards` ahead).

#ifndef SRC_COMMON_ARENA_POOL_H_
#define SRC_COMMON_ARENA_POOL_H_

#include <cstddef>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "src/common/cpu_topology.h"
#include "src/common/thread_pool.h"

namespace faas {

template <typename T>
class ArenaPool {
 public:
  // num_nodes == 0 sizes the pool to the detected topology.
  explicit ArenaPool(int num_nodes = 0) {
    if (num_nodes <= 0) {
      num_nodes = CpuTopology::Detect().num_nodes();
    }
    shelves_ = std::vector<Shelf>(static_cast<size_t>(num_nodes));
  }

  // Pops a recycled arena, preferring the calling thread's node shelf, then
  // stealing from the fullest other shelf; constructs a fresh T when every
  // shelf is empty.
  std::unique_ptr<T> Acquire() {
    const size_t home = HomeShelf();
    if (auto arena = PopFrom(home)) {
      return arena;
    }
    for (size_t s = 0; s < shelves_.size(); ++s) {
      if (s == home) {
        continue;
      }
      if (auto arena = PopFrom(s)) {
        return arena;
      }
    }
    return std::make_unique<T>();
  }

  // Returns an arena to the calling thread's node shelf.  The arena keeps
  // its capacity; the next Acquire on this node reuses it.
  void Release(std::unique_ptr<T> arena) {
    if (arena == nullptr) {
      return;
    }
    Shelf& shelf = shelves_[HomeShelf()];
    std::lock_guard<std::mutex> lock(shelf.mu);
    shelf.items.push_back(std::move(arena));
  }

  // Total arenas currently parked across all shelves (diagnostics/tests).
  size_t idle_count() const {
    size_t total = 0;
    for (const Shelf& shelf : shelves_) {
      std::lock_guard<std::mutex> lock(shelf.mu);
      total += shelf.items.size();
    }
    return total;
  }

  int num_shelves() const { return static_cast<int>(shelves_.size()); }

 private:
  struct Shelf {
    mutable std::mutex mu;
    std::vector<std::unique_ptr<T>> items;
  };

  size_t HomeShelf() const {
    const int node = ThreadPool::CurrentNodeId();
    return static_cast<size_t>(node) < shelves_.size()
               ? static_cast<size_t>(node)
               : 0;
  }

  std::unique_ptr<T> PopFrom(size_t s) {
    Shelf& shelf = shelves_[s];
    std::lock_guard<std::mutex> lock(shelf.mu);
    if (shelf.items.empty()) {
      return nullptr;
    }
    std::unique_ptr<T> arena = std::move(shelf.items.back());
    shelf.items.pop_back();
    return arena;
  }

  std::vector<Shelf> shelves_;
};

}  // namespace faas

#endif  // SRC_COMMON_ARENA_POOL_H_
