#include "src/common/intern.h"

#include "src/common/logging.h"

namespace faas {

uint32_t InternTable::Intern(std::string_view name) {
  const auto it = index_.find(name);
  if (it != index_.end()) {
    return it->second;
  }
  FAAS_CHECK(names_.size() < static_cast<size_t>(UINT32_MAX))
      << "intern table exhausted the u32 id space";
  const auto id = static_cast<uint32_t>(names_.size());
  names_.emplace_back(name);
  index_.emplace(std::string_view(names_.back()), id);
  return id;
}

std::optional<uint32_t> InternTable::Find(std::string_view name) const {
  const auto it = index_.find(name);
  if (it == index_.end()) {
    return std::nullopt;
  }
  return it->second;
}

const std::string& InternTable::NameOf(uint32_t id) const {
  FAAS_CHECK(id < names_.size()) << "unknown interned id " << id;
  return names_[id];
}

}  // namespace faas
