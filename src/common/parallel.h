// Minimal parallel-for over an index range.
//
// Policy evaluation is embarrassingly parallel across applications (each app
// gets its own policy instance); this helper spreads an index range over the
// process-wide persistent thread pool (src/common/thread_pool.h) using
// chunked dynamic scheduling.  Results must be written to pre-allocated,
// per-index slots so the output is identical to the sequential run.

#ifndef SRC_COMMON_PARALLEL_H_
#define SRC_COMMON_PARALLEL_H_

#include <cstddef>
#include <functional>

namespace faas {

// Invokes fn(i) for every i in [0, count), using up to `num_threads`
// participants (the calling thread plus shared-pool workers).
// num_threads <= 1 runs inline on the calling thread; 0 means "use the
// hardware concurrency".  fn must be safe to call concurrently for distinct
// indices.  The first exception thrown by any participant is rethrown on
// the calling thread after the range drains; remaining chunks are skipped.
// chunk == 0 picks a size yielding ~8 chunks per participant; callers that
// permute the index range for priority scheduling (e.g. largest-shard-first
// in the sweep engine) pass 1 so claims follow the permuted order exactly.
void ParallelFor(size_t count, const std::function<void(size_t)>& fn,
                 int num_threads, size_t chunk = 0);

// Hardware concurrency with a sane floor of 1.
int HardwareThreads();

}  // namespace faas

#endif  // SRC_COMMON_PARALLEL_H_
