// Strong time types for simulation.
//
// All simulation clocks in this project are integral milliseconds since the
// start of the trace.  Using a dedicated pair of types (Duration for spans,
// TimePoint for instants) instead of bare int64_t prevents the classic
// instant-vs-span mixups, while staying trivially copyable and cheap enough
// for the hot simulation loops.
//
// The millisecond tick is chosen because (a) the paper's invocation data is
// binned at 1-minute granularity, so ms is far finer than any signal in the
// input, and (b) cold-start latencies in the cluster model are O(10-100 ms)
// and must be representable exactly.

#ifndef SRC_COMMON_TIME_H_
#define SRC_COMMON_TIME_H_

#include <cstdint>
#include <limits>
#include <string>

namespace faas {

// A span of simulated time in integral milliseconds.  May be negative in
// intermediate arithmetic, but most APIs expect non-negative spans.
class Duration {
 public:
  constexpr Duration() = default;
  constexpr explicit Duration(int64_t millis) : millis_(millis) {}

  static constexpr Duration Millis(int64_t ms) { return Duration(ms); }
  static constexpr Duration Seconds(int64_t s) { return Duration(s * 1000); }
  static constexpr Duration Minutes(int64_t m) { return Duration(m * 60'000); }
  static constexpr Duration Hours(int64_t h) { return Duration(h * 3'600'000); }
  static constexpr Duration Days(int64_t d) { return Duration(d * 86'400'000); }

  // Fractional constructors, rounded to the nearest millisecond.
  static constexpr Duration FromSecondsF(double s) {
    return Duration(RoundToInt64(s * 1000.0));
  }
  static constexpr Duration FromMinutesF(double m) {
    return Duration(RoundToInt64(m * 60'000.0));
  }
  static constexpr Duration FromHoursF(double h) {
    return Duration(RoundToInt64(h * 3'600'000.0));
  }

  static constexpr Duration Zero() { return Duration(0); }
  static constexpr Duration Max() {
    return Duration(std::numeric_limits<int64_t>::max());
  }

  constexpr int64_t millis() const { return millis_; }
  constexpr double seconds() const { return static_cast<double>(millis_) / 1e3; }
  constexpr double minutes() const { return static_cast<double>(millis_) / 6e4; }
  constexpr double hours() const { return static_cast<double>(millis_) / 3.6e6; }
  constexpr double days() const { return static_cast<double>(millis_) / 8.64e7; }

  constexpr bool IsZero() const { return millis_ == 0; }
  constexpr bool IsNegative() const { return millis_ < 0; }

  constexpr Duration operator+(Duration other) const {
    return Duration(millis_ + other.millis_);
  }
  constexpr Duration operator-(Duration other) const {
    return Duration(millis_ - other.millis_);
  }
  constexpr Duration operator*(double factor) const {
    return Duration(RoundToInt64(static_cast<double>(millis_) * factor));
  }
  constexpr Duration operator/(int64_t divisor) const {
    return Duration(millis_ / divisor);
  }
  constexpr double operator/(Duration other) const {
    return static_cast<double>(millis_) / static_cast<double>(other.millis_);
  }
  constexpr Duration operator-() const { return Duration(-millis_); }

  Duration& operator+=(Duration other) {
    millis_ += other.millis_;
    return *this;
  }
  Duration& operator-=(Duration other) {
    millis_ -= other.millis_;
    return *this;
  }

  constexpr auto operator<=>(const Duration&) const = default;

  std::string ToString() const;

 private:
  static constexpr int64_t RoundToInt64(double v) {
    return static_cast<int64_t>(v >= 0 ? v + 0.5 : v - 0.5);
  }

  int64_t millis_ = 0;
};

// An instant of simulated time: milliseconds since the start of the trace.
class TimePoint {
 public:
  constexpr TimePoint() = default;
  constexpr explicit TimePoint(int64_t millis) : millis_(millis) {}

  static constexpr TimePoint Origin() { return TimePoint(0); }
  static constexpr TimePoint Max() {
    return TimePoint(std::numeric_limits<int64_t>::max());
  }

  constexpr int64_t millis_since_origin() const { return millis_; }

  constexpr TimePoint operator+(Duration d) const {
    return TimePoint(millis_ + d.millis());
  }
  constexpr TimePoint operator-(Duration d) const {
    return TimePoint(millis_ - d.millis());
  }
  constexpr Duration operator-(TimePoint other) const {
    return Duration(millis_ - other.millis_);
  }

  TimePoint& operator+=(Duration d) {
    millis_ += d.millis();
    return *this;
  }

  constexpr auto operator<=>(const TimePoint&) const = default;

  std::string ToString() const;

 private:
  int64_t millis_ = 0;
};

}  // namespace faas

#endif  // SRC_COMMON_TIME_H_
