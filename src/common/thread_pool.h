// Persistent worker-thread pool with a chunked parallel-for and optional
// NUMA-aware worker pinning.
//
// The seed ParallelFor spawned and joined fresh std::threads on every call
// and claimed one index per atomic operation; for sweep workloads that call
// into the parallel region once per policy point, thread creation and
// cache-line ping-pong on the work counter dominated.  This pool is created
// once (see ThreadPool::Shared), parks its workers on a condition variable
// between parallel regions, and hands out *chunks* of the index range so the
// shared counter is touched O(count / chunk) times instead of O(count).
//
// Pinning (ThreadPoolOptions::pin_threads): each worker is bound to one CPU,
// workers interleaved across NUMA nodes (see cpu_topology.h), and publishes
// its node id through a thread-local read by CurrentNodeId().  The streaming
// sweep engine uses that id to return shard arenas to a node-local freelist,
// so a shard's pages are generated, simulated, and recycled on the same
// memory controller instead of bouncing across sockets.  Pinning is off by
// default (it is a pessimisation for pools sharing a machine with other
// work); the shared pool turns it on when FAAS_PIN_THREADS is set to a
// non-zero value, and FAAS_POOL_THREADS overrides its size.
//
// Design notes:
//   - The calling thread always participates in the loop body, so a region
//     completes even when every pool worker is busy elsewhere; nested
//     ParallelFor calls therefore cannot deadlock (the inner call simply
//     runs mostly inline).
//   - The first exception thrown by any participant is captured and
//     rethrown on the calling thread after the region drains (the seed
//     behaviour was std::terminate).  Remaining chunks are skipped once an
//     exception is pending.
//   - Results must still be written to per-index slots; scheduling is
//     dynamic, so chunk-to-thread assignment is nondeterministic even
//     though index coverage is exact.

#ifndef SRC_COMMON_THREAD_POOL_H_
#define SRC_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace faas {

struct ThreadPoolOptions {
  // 0 means hardware concurrency.  The pool keeps (num_threads - 1) parked
  // workers: the caller of For() is the remaining participant.
  int num_threads = 0;
  // Bind each worker to one CPU, interleaved across NUMA nodes.
  bool pin_threads = false;
};

class ThreadPool {
 public:
  explicit ThreadPool(int num_threads = 0)
      : ThreadPool(ThreadPoolOptions{num_threads, false}) {}
  explicit ThreadPool(const ThreadPoolOptions& options);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Number of parked worker threads (callers add one more on top).
  int num_workers() const { return static_cast<int>(threads_.size()); }
  bool pinned() const { return pinned_; }

  // Invokes fn(i) for every i in [0, count) using the calling thread plus up
  // to (max_parallelism - 1) pool workers.  chunk == 0 picks a chunk size
  // that yields ~8 chunks per participant.  Rethrows the first exception any
  // participant raised.  max_parallelism <= 1 (or count <= 1) runs inline.
  void For(size_t count, const std::function<void(size_t)>& fn,
           int max_parallelism = 0, size_t chunk = 0);

  // Enqueues one fire-and-forget task for a pool worker.  Intended for the
  // For() implementation, shard prefetching, and tests; tasks must not
  // throw.  Callers must not rely on a task ever running when the pool has
  // zero workers — check num_workers() first.
  void Submit(std::function<void()> task);

  // Process-wide pool sized to the hardware, created on first use.
  // FAAS_POOL_THREADS=N overrides the size; FAAS_PIN_THREADS=1 enables
  // NUMA-interleaved pinning of its workers.
  static ThreadPool& Shared();

  // NUMA node id of the calling thread: set for pinned pool workers, 0 for
  // everyone else (including unpinned workers and outside threads).  Always
  // in [0, CpuTopology::Detect().num_nodes()).
  static int CurrentNodeId();

 private:
  void WorkerLoop(int cpu, int node);

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool stop_ = false;
  bool pinned_ = false;
  std::vector<std::thread> threads_;
};

}  // namespace faas

#endif  // SRC_COMMON_THREAD_POOL_H_
