// Persistent worker-thread pool with a chunked parallel-for.
//
// The seed ParallelFor spawned and joined fresh std::threads on every call
// and claimed one index per atomic operation; for sweep workloads that call
// into the parallel region once per policy point, thread creation and
// cache-line ping-pong on the work counter dominated.  This pool is created
// once (see ThreadPool::Shared), parks its workers on a condition variable
// between parallel regions, and hands out *chunks* of the index range so the
// shared counter is touched O(count / chunk) times instead of O(count).
//
// Design notes:
//   - The calling thread always participates in the loop body, so a region
//     completes even when every pool worker is busy elsewhere; nested
//     ParallelFor calls therefore cannot deadlock (the inner call simply
//     runs mostly inline).
//   - The first exception thrown by any participant is captured and
//     rethrown on the calling thread after the region drains (the seed
//     behaviour was std::terminate).  Remaining chunks are skipped once an
//     exception is pending.
//   - Results must still be written to per-index slots; scheduling is
//     dynamic, so chunk-to-thread assignment is nondeterministic even
//     though index coverage is exact.

#ifndef SRC_COMMON_THREAD_POOL_H_
#define SRC_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace faas {

class ThreadPool {
 public:
  // num_threads == 0 means hardware concurrency.  The pool keeps
  // (num_threads - 1) parked workers: the caller of For() is the remaining
  // participant.
  explicit ThreadPool(int num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Number of parked worker threads (callers add one more on top).
  int num_workers() const { return static_cast<int>(threads_.size()); }

  // Invokes fn(i) for every i in [0, count) using the calling thread plus up
  // to (max_parallelism - 1) pool workers.  chunk == 0 picks a chunk size
  // that yields ~8 chunks per participant.  Rethrows the first exception any
  // participant raised.  max_parallelism <= 1 (or count <= 1) runs inline.
  void For(size_t count, const std::function<void(size_t)>& fn,
           int max_parallelism = 0, size_t chunk = 0);

  // Enqueues one fire-and-forget task for a pool worker.  Intended for the
  // For() implementation and tests; tasks must not throw.
  void Submit(std::function<void()> task);

  // Process-wide pool sized to the hardware, created on first use.
  static ThreadPool& Shared();

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool stop_ = false;
  std::vector<std::thread> threads_;
};

}  // namespace faas

#endif  // SRC_COMMON_THREAD_POOL_H_
