// CPU / NUMA topology detection for worker pinning.
//
// The sweep engine's multi-thread scaling stalls when workers migrate
// between sockets mid-sweep: a shard arena is first-touched (and therefore
// page-allocated) on the node that generated it, and a worker that simulates
// it from the other socket pays cross-socket latency on every invocation
// load.  Pinning workers to CPUs — interleaved across NUMA nodes so a pool
// smaller than the machine still spans every memory controller — keeps the
// generate-on-node / simulate-on-node pairing stable.
//
// Detection reads /sys/devices/system/node/node*/cpulist on Linux and falls
// back to a single node holding every hardware thread elsewhere (or when
// sysfs is unreadable, e.g. in containers that mask it).  Detection never
// fails: the fallback is always a valid topology.

#ifndef SRC_COMMON_CPU_TOPOLOGY_H_
#define SRC_COMMON_CPU_TOPOLOGY_H_

#include <string_view>
#include <vector>

namespace faas {

struct CpuTopology {
  struct Node {
    int id = 0;
    std::vector<int> cpus;  // Online CPU ids on this node, ascending.
  };
  std::vector<Node> nodes;  // Ascending node id; never empty after Detect().

  int num_nodes() const { return static_cast<int>(nodes.size()); }
  int num_cpus() const;

  // CPUs ordered round-robin across nodes (node0-cpu0, node1-cpu0, ...,
  // node0-cpu1, ...), so pinning the first K workers to the first K entries
  // spreads any pool size evenly over the memory controllers.
  std::vector<int> InterleavedCpus() const;

  // Dense position (in `nodes`) of the node owning `cpu`, or 0 when the CPU
  // is not in the map — the safe default: callers use the value to pick an
  // arena shelf, and shelf 0 always exists.  Positions, not Node::id, so the
  // result indexes [0, num_nodes()) even with sparse node ids.
  int NodeOfCpu(int cpu) const;

  // Reads the machine topology (see header comment).  Cached per process;
  // the first call pays the sysfs walk.
  static const CpuTopology& Detect();

  // Parses a sysfs cpulist string ("0-3,8,10-11") into CPU ids.  Exposed for
  // tests; malformed chunks are skipped.
  static std::vector<int> ParseCpuList(std::string_view list);
};

}  // namespace faas

#endif  // SRC_COMMON_CPU_TOPOLOGY_H_
