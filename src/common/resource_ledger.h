// ResourceLedger: the one cost-accounting spine shared by the simulator,
// the cluster engine, and the wall-clock serving bridge.
//
// The paper's Figure 14/15 tradeoff (cold-start rate vs. wasted memory
// time) was computed ad-hoc per layer: AppSimResult summed idle
// MB-minutes, the invoker kept a private memory integral, and the serve
// bridge only counted evictions.  "The High Cost of Keeping Warm"
// (arXiv 2509.03104) shows the metric operators actually optimize is
// warm-pool resource overhead — memory-GB-seconds split into warm-idle
// vs. executing, CPU-seconds, and container churn — optionally priced by
// a $/GB-s + $/CPU-s + $/invocation model.  This header holds that
// ledger, plus the generic field-visitor merge helper shared with
// FaultLedger and OverloadLedger.
//
// Determinism rules (the same contract OverloadLedger follows):
//   * Every field merges either by addition (Sum) or by maximum (Max);
//     both are order-insensitive over the per-shard partials this repo
//     produces, so folds in a fixed index order are bit-identical across
//     --threads.
//   * Charging sites multiply a memory footprint by an elapsed time in
//     the SAME association per layer (footprint_mb * elapsed_ms), so a
//     given replay charges bit-identical values regardless of how work
//     was sharded.
//   * Ledger-off paths stay byte-identical: charging is pure arithmetic
//     on state the layers already track (no RNG draws, no scheduled
//     events), and telemetry families register only when enabled.
//
// Units: memory integrals are MB·ms (power-of-two footprints times
// integer milliseconds stay exactly representable); CPU time is ms.
// Derived accessors convert to the GB-seconds operators quote.

#ifndef SRC_COMMON_RESOURCE_LEDGER_H_
#define SRC_COMMON_RESOURCE_LEDGER_H_

#include <cstdint>

namespace faas {

namespace internal {

// Visitor backing MergeLedger: accumulates `from` into `into` field by
// field with the semantics the ledger declares per field.
template <class L>
struct LedgerMergeVisitor {
  L* into;
  const L* from;
  template <class T>
  void Sum(T L::*field) {
    into->*field += from->*field;
  }
  template <class T>
  void Max(T L::*field) {
    if (from->*field > into->*field) into->*field = from->*field;
  }
  template <class T, unsigned long N>
  void SumArray(T (L::*field)[N]) {
    for (unsigned long i = 0; i < N; ++i) {
      (into->*field)[i] += (from->*field)[i];
    }
  }
};

}  // namespace internal

// Merges `from` into `into` for any ledger struct exposing
//   template <class V> static void VisitMergeFields(V& v);
// which calls v.Sum(&L::field) or v.Max(&L::field) once per field.
// FaultLedger, OverloadLedger, and ResourceLedger all declare their merge
// semantics this way, so there is exactly one fold implementation.
template <class L>
void MergeLedger(L& into, const L& from) {
  internal::LedgerMergeVisitor<L> visitor{&into, &from};
  L::VisitMergeFields(visitor);
}

// Optional pricing applied on top of a ResourceLedger.  All-zero (the
// default) means "no cost model": CostDollars() returns 0 and nothing in
// any output changes, preserving byte-identity with cost-off runs.
struct CostModel {
  double dollars_per_gb_second = 0.0;  // Memory residency (idle + busy).
  double dollars_per_cpu_second = 0.0;
  double dollars_per_million_invocations = 0.0;

  bool enabled() const {
    return dollars_per_gb_second > 0.0 || dollars_per_cpu_second > 0.0 ||
           dollars_per_million_invocations > 0.0;
  }
};

// Tally of the resources a replay (or one shard of one) consumed.
// Comparable so determinism tests can assert bit-identical ledgers.
struct ResourceLedger {
  // Memory-residency integrals, MB·ms, split by what the container was
  // doing: `idle_mb_ms` is the keep-alive waste the paper's Figure 14
  // plots, `busy_mb_ms` is memory held while an execution ran.
  double idle_mb_ms = 0.0;
  double busy_mb_ms = 0.0;
  // Execution time across containers, ms (the billed-CPU integral).
  double cpu_ms = 0.0;

  // Invocation outcomes.
  int64_t invocations = 0;
  int64_t warm_hits = 0;  // Served by an already-resident container.

  // Container churn.  Loads split by trigger, unloads by cause; crash
  // teardowns are tracked by the FaultLedger, not here.
  int64_t cold_loads = 0;     // Created on demand (cold starts).
  int64_t prewarm_loads = 0;  // Created by a pre-warm event.
  int64_t evictions = 0;      // Unloaded early by memory pressure.
  int64_t expirations = 0;    // Unloaded by keep-alive expiry.

  // --- Derived views (never merged; computed from the integrals) ---
  double idle_gb_seconds() const { return idle_mb_ms / (1024.0 * 1000.0); }
  double busy_gb_seconds() const { return busy_mb_ms / (1024.0 * 1000.0); }
  double gb_seconds() const { return idle_gb_seconds() + busy_gb_seconds(); }
  double cpu_seconds() const { return cpu_ms / 1000.0; }
  double wasted_memory_minutes() const { return idle_mb_ms / 60'000.0; }
  int64_t container_loads() const { return cold_loads + prewarm_loads; }
  int64_t container_unloads() const { return evictions + expirations; }

  // Price of this ledger under `model` (0 when the model is disabled).
  double CostDollars(const CostModel& model) const;

  template <class V>
  static void VisitMergeFields(V& v) {
    v.Sum(&ResourceLedger::idle_mb_ms);
    v.Sum(&ResourceLedger::busy_mb_ms);
    v.Sum(&ResourceLedger::cpu_ms);
    v.Sum(&ResourceLedger::invocations);
    v.Sum(&ResourceLedger::warm_hits);
    v.Sum(&ResourceLedger::cold_loads);
    v.Sum(&ResourceLedger::prewarm_loads);
    v.Sum(&ResourceLedger::evictions);
    v.Sum(&ResourceLedger::expirations);
  }

  ResourceLedger& operator+=(const ResourceLedger& other) {
    MergeLedger(*this, other);
    return *this;
  }

  bool operator==(const ResourceLedger&) const = default;
};

}  // namespace faas

#endif  // SRC_COMMON_RESOURCE_LEDGER_H_
