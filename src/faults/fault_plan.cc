#include "src/faults/fault_plan.h"

#include <algorithm>
#include <cmath>

#include "src/common/rng.h"
#include "src/common/strings.h"
#include "src/faults/spec_grammar.h"

namespace faas {

double FaultPlan::LatencyMultiplierAt(TimePoint t) const {
  double multiplier = 1.0;
  for (const LatencySpike& spike : spikes) {
    if (spike.Covers(t)) {
      multiplier *= spike.multiplier;
    }
  }
  return multiplier;
}

double FaultPlan::TransientFailureProbabilityAt(TimePoint t) const {
  double probability = 0.0;
  for (const TransientFaultWindow& window : transient_windows) {
    if (window.Covers(t)) {
      probability = std::max(probability, window.failure_probability);
    }
  }
  return probability;
}

namespace {

// True when a fault scoped to `fault_invoker` applies to `invoker`'s link
// (-1 scopes the fault to every link).
bool CoversLink(int fault_invoker, int invoker) {
  return fault_invoker < 0 || fault_invoker == invoker;
}

}  // namespace

bool FaultPlan::LinkPartitionedAt(int invoker, NetDirection dir,
                                  TimePoint t) const {
  for (const NetPartitionEvent& partition : partitions) {
    if (!CoversLink(partition.invoker, invoker) || !partition.Covers(t)) {
      continue;
    }
    if (partition.dir == NetDirection::kBoth || partition.dir == dir) {
      return true;
    }
  }
  return false;
}

double FaultPlan::NetLossProbabilityAt(int invoker, TimePoint t) const {
  double probability = 0.0;
  for (const NetLossWindow& window : loss_windows) {
    if (CoversLink(window.invoker, invoker) && window.Covers(t)) {
      probability = std::max(probability, window.probability);
    }
  }
  return probability;
}

double FaultPlan::NetDuplicateProbabilityAt(int invoker, TimePoint t) const {
  double probability = 0.0;
  for (const NetDuplicateWindow& window : duplicate_windows) {
    if (CoversLink(window.invoker, invoker) && window.Covers(t)) {
      probability = std::max(probability, window.probability);
    }
  }
  return probability;
}

const NetReorderWindow* FaultPlan::NetReorderAt(int invoker,
                                                TimePoint t) const {
  const NetReorderWindow* best = nullptr;
  for (const NetReorderWindow& window : reorder_windows) {
    if (CoversLink(window.invoker, invoker) && window.Covers(t) &&
        (best == nullptr || window.probability > best->probability)) {
      best = &window;
    }
  }
  return best;
}

std::string FaultPlan::Validate(int num_invokers) const {
  for (const CrashEvent& crash : crashes) {
    if (crash.invoker < 0 || crash.invoker >= num_invokers) {
      return "crash targets invoker " + std::to_string(crash.invoker) +
             " in a cluster of " + std::to_string(num_invokers);
    }
    if (crash.at < TimePoint::Origin() || crash.downtime.IsNegative()) {
      return "crash with negative time or downtime";
    }
  }
  for (const StateWipeEvent& wipe : wipes) {
    if (wipe.at < TimePoint::Origin()) {
      return "state wipe scheduled before the trace start";
    }
  }
  for (const LatencySpike& spike : spikes) {
    if (spike.multiplier < 1.0) {
      return "latency spike multiplier below 1";
    }
    if (spike.start < TimePoint::Origin() || spike.duration.IsNegative()) {
      return "latency spike with negative time or duration";
    }
  }
  for (const TransientFaultWindow& window : transient_windows) {
    if (window.failure_probability < 0.0 ||
        window.failure_probability > 1.0) {
      return "transient failure probability outside [0, 1]";
    }
    if (window.start < TimePoint::Origin() || window.duration.IsNegative()) {
      return "transient window with negative time or duration";
    }
  }
  for (const NetPartitionEvent& partition : partitions) {
    if (partition.invoker >= num_invokers) {
      return "partition targets invoker " + std::to_string(partition.invoker) +
             " in a cluster of " + std::to_string(num_invokers);
    }
    if (partition.start < TimePoint::Origin() ||
        partition.duration.IsNegative()) {
      return "partition with negative time or duration";
    }
  }
  for (const NetLossWindow& window : loss_windows) {
    if (window.invoker >= num_invokers) {
      return "netloss targets invoker " + std::to_string(window.invoker) +
             " in a cluster of " + std::to_string(num_invokers);
    }
    if (window.probability < 0.0 || window.probability > 1.0) {
      return "netloss probability outside [0, 1]";
    }
    if (window.start < TimePoint::Origin() || window.duration.IsNegative()) {
      return "netloss window with negative time or duration";
    }
  }
  for (const NetDuplicateWindow& window : duplicate_windows) {
    if (window.invoker >= num_invokers) {
      return "netdup targets invoker " + std::to_string(window.invoker) +
             " in a cluster of " + std::to_string(num_invokers);
    }
    if (window.probability < 0.0 || window.probability > 1.0) {
      return "netdup probability outside [0, 1]";
    }
    if (window.start < TimePoint::Origin() || window.duration.IsNegative()) {
      return "netdup window with negative time or duration";
    }
  }
  for (const NetReorderWindow& window : reorder_windows) {
    if (window.invoker >= num_invokers) {
      return "netreorder targets invoker " + std::to_string(window.invoker) +
             " in a cluster of " + std::to_string(num_invokers);
    }
    if (window.probability < 0.0 || window.probability > 1.0) {
      return "netreorder probability outside [0, 1]";
    }
    if (window.extra_delay.IsNegative()) {
      return "netreorder with negative extra delay";
    }
    if (window.start < TimePoint::Origin() || window.duration.IsNegative()) {
      return "netreorder window with negative time or duration";
    }
  }
  return "";
}

FaultPlan FaultPlan::FromMtbf(const MtbfModel& model, int num_invokers,
                              Duration horizon) {
  FaultPlan plan;
  Rng root(model.seed);
  const double mtbf_ms = model.mtbf_hours * 3.6e6;
  const double mttr_ms = std::max(model.mttr_minutes * 6e4, 1e3);
  for (int invoker = 0; invoker < num_invokers; ++invoker) {
    Rng rng = root.Fork();
    if (mtbf_ms <= 0.0) {
      continue;
    }
    double t_ms = rng.NextExponential(1.0 / mtbf_ms);
    while (t_ms < static_cast<double>(horizon.millis())) {
      const double down_ms =
          std::max(rng.NextExponential(1.0 / mttr_ms), 1e3);
      plan.crashes.push_back(
          {invoker, TimePoint(static_cast<int64_t>(t_ms)),
           Duration::Millis(static_cast<int64_t>(down_ms))});
      t_ms += down_ms + rng.NextExponential(1.0 / mtbf_ms);
    }
  }
  if (model.wipe_mtbf_hours > 0.0) {
    Rng rng = root.Fork();
    const double wipe_mtbf_ms = model.wipe_mtbf_hours * 3.6e6;
    double t_ms = rng.NextExponential(1.0 / wipe_mtbf_ms);
    while (t_ms < static_cast<double>(horizon.millis())) {
      plan.wipes.push_back({TimePoint(static_cast<int64_t>(t_ms))});
      t_ms += rng.NextExponential(1.0 / wipe_mtbf_ms);
    }
  }
  return plan;
}

std::optional<Duration> ParseDuration(std::string_view text) {
  text = StripWhitespace(text);
  if (text.empty()) {
    return std::nullopt;
  }
  double scale_ms = 1e3;  // Bare numbers are seconds.
  if (text.size() >= 2 && text.substr(text.size() - 2) == "ms") {
    scale_ms = 1.0;
    text.remove_suffix(2);
  } else {
    switch (text.back()) {
      case 's':
        scale_ms = 1e3;
        text.remove_suffix(1);
        break;
      case 'm':
        scale_ms = 6e4;
        text.remove_suffix(1);
        break;
      case 'h':
        scale_ms = 3.6e6;
        text.remove_suffix(1);
        break;
      case 'd':
        scale_ms = 8.64e7;
        text.remove_suffix(1);
        break;
      default:
        break;
    }
  }
  const std::optional<double> value = ParseDouble(text);
  if (!value.has_value() || !std::isfinite(*value)) {
    return std::nullopt;
  }
  return Duration::Millis(static_cast<int64_t>(*value * scale_ms + 0.5));
}

std::optional<FaultPlan> FaultPlan::Parse(std::string_view spec,
                                          std::string* error) {
  using spec::GetDuration;
  using spec::ParseArgs;
  std::string local_error;
  if (error == nullptr) {
    error = &local_error;
  }
  FaultPlan plan;
  for (std::string_view clause : SplitString(spec, ';')) {
    clause = StripWhitespace(clause);
    if (clause.empty()) {
      continue;
    }
    const size_t colon = clause.find(':');
    const std::string_view kind =
        StripWhitespace(clause.substr(0, colon));
    const std::string_view body =
        colon == std::string_view::npos ? std::string_view{}
                                        : clause.substr(colon + 1);
    const auto args = ParseArgs(body, error, clause);
    if (!args.has_value()) {
      return std::nullopt;
    }
    if (kind == "crash") {
      const auto invoker_raw = args->Get("invoker");
      const auto invoker =
          invoker_raw.has_value() ? ParseInt64(*invoker_raw) : std::nullopt;
      const auto at = GetDuration(*args, "at", error, clause);
      const auto down = GetDuration(*args, "down", error, clause);
      if (!invoker.has_value()) {
        *error = std::string(clause) + ": missing or bad invoker=";
        return std::nullopt;
      }
      if (!at.has_value() || !down.has_value()) {
        return std::nullopt;
      }
      plan.crashes.push_back({static_cast<int>(*invoker),
                              TimePoint::Origin() + *at, *down});
    } else if (kind == "wipe") {
      const auto at = GetDuration(*args, "at", error, clause);
      if (!at.has_value()) {
        return std::nullopt;
      }
      plan.wipes.push_back({TimePoint::Origin() + *at});
    } else if (kind == "spike") {
      const auto at = GetDuration(*args, "at", error, clause);
      const auto duration = GetDuration(*args, "for", error, clause);
      const auto x_raw = args->Get("x");
      const auto x = x_raw.has_value() ? ParseDouble(*x_raw) : std::nullopt;
      if (!at.has_value() || !duration.has_value()) {
        return std::nullopt;
      }
      if (!x.has_value()) {
        *error = std::string(clause) + ": missing or bad x=";
        return std::nullopt;
      }
      plan.spikes.push_back({TimePoint::Origin() + *at, *duration, *x});
    } else if (kind == "flaky") {
      const auto at = GetDuration(*args, "at", error, clause);
      const auto duration = GetDuration(*args, "for", error, clause);
      const auto p_raw = args->Get("p");
      const auto p = p_raw.has_value() ? ParseDouble(*p_raw) : std::nullopt;
      if (!at.has_value() || !duration.has_value()) {
        return std::nullopt;
      }
      if (!p.has_value()) {
        *error = std::string(clause) + ": missing or bad p=";
        return std::nullopt;
      }
      plan.transient_windows.push_back(
          {TimePoint::Origin() + *at, *duration, *p});
    } else if (kind == "partition" || kind == "netloss" || kind == "netdup" ||
               kind == "netreorder") {
      const auto at = GetDuration(*args, "at", error, clause);
      const auto duration = GetDuration(*args, "for", error, clause);
      if (!at.has_value() || !duration.has_value()) {
        return std::nullopt;
      }
      // Network clauses default to every link; invoker= narrows to one.
      int invoker = -1;
      if (const auto invoker_raw = args->Get("invoker");
          invoker_raw.has_value()) {
        const auto parsed = ParseInt64(*invoker_raw);
        if (!parsed.has_value() || *parsed < 0) {
          *error = std::string(clause) + ": bad invoker=";
          return std::nullopt;
        }
        invoker = static_cast<int>(*parsed);
      }
      if (kind == "partition") {
        NetDirection dir = NetDirection::kBoth;
        if (const auto dir_raw = args->Get("dir"); dir_raw.has_value()) {
          if (*dir_raw == "up") {
            dir = NetDirection::kUp;
          } else if (*dir_raw == "down") {
            dir = NetDirection::kDown;
          } else if (*dir_raw == "both") {
            dir = NetDirection::kBoth;
          } else {
            *error = std::string(clause) + ": dir must be up/down/both";
            return std::nullopt;
          }
        }
        plan.partitions.push_back(
            {invoker, TimePoint::Origin() + *at, *duration, dir});
        continue;
      }
      const auto p_raw = args->Get("p");
      const auto p = p_raw.has_value() ? ParseDouble(*p_raw) : std::nullopt;
      if (!p.has_value()) {
        *error = std::string(clause) + ": missing or bad p=";
        return std::nullopt;
      }
      if (kind == "netloss") {
        plan.loss_windows.push_back(
            {invoker, TimePoint::Origin() + *at, *duration, *p});
      } else if (kind == "netdup") {
        plan.duplicate_windows.push_back(
            {invoker, TimePoint::Origin() + *at, *duration, *p});
      } else {
        NetReorderWindow window;
        window.invoker = invoker;
        window.start = TimePoint::Origin() + *at;
        window.duration = *duration;
        window.probability = *p;
        if (args->Get("delay").has_value()) {
          const auto delay = GetDuration(*args, "delay", error, clause);
          if (!delay.has_value()) {
            return std::nullopt;
          }
          window.extra_delay = *delay;
        }
        plan.reorder_windows.push_back(window);
      }
    } else {
      *error = "unknown fault clause '" + std::string(kind) +
               "' (expected crash/wipe/spike/flaky/partition/netloss/"
               "netdup/netreorder)";
      return std::nullopt;
    }
  }
  return plan;
}

}  // namespace faas
