// Deterministic fault-injection plans for the mini-OpenWhisk cluster.
//
// The paper evaluates the hybrid policy on a healthy 19-VM deployment
// (Section 5.3); a FaultPlan perturbs that deployment the way production
// clusters are perturbed: invoker crashes that kill in-flight activations
// and resident containers, controller failovers that wipe the per-app
// policy state of Section 4.3, transient activation failures, and latency
// spikes on the messaging/cold-start paths.  A plan is pure data — either
// written out explicitly or generated from MTBF/MTTR distributions with a
// fixed seed — so every chaos experiment is exactly reproducible.

#ifndef SRC_FAULTS_FAULT_PLAN_H_
#define SRC_FAULTS_FAULT_PLAN_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/time.h"

namespace faas {

// An invoker VM dies at `at`, losing every resident container and every
// in-flight activation, and rejoins cold after `downtime`.
struct CrashEvent {
  int invoker = 0;
  TimePoint at;
  Duration downtime;

  bool operator==(const CrashEvent&) const = default;
};

// A controller failover at `at`: the in-memory per-app policy state
// (histograms, IT histories) is lost.  Whether anything survives depends on
// the controller's checkpointing configuration.
struct StateWipeEvent {
  TimePoint at;

  bool operator==(const StateWipeEvent&) const = default;
};

// Messaging/cold-start latencies are multiplied by `multiplier` while
// [start, start + duration) is active (an overloaded Kafka / image registry).
struct LatencySpike {
  TimePoint start;
  Duration duration;
  double multiplier = 1.0;

  bool Covers(TimePoint t) const { return t >= start && t < start + duration; }
  bool operator==(const LatencySpike&) const = default;
};

// Activations placed while [start, start + duration) is active fail before
// the function runs with probability `failure_probability` (a flaky sandbox
// or a dependency brown-out).
struct TransientFaultWindow {
  TimePoint start;
  Duration duration;
  double failure_probability = 0.0;

  bool Covers(TimePoint t) const { return t >= start && t < start + duration; }
  bool operator==(const TransientFaultWindow&) const = default;
};

// Which direction(s) of a controller<->invoker link a network fault covers.
enum class NetDirection {
  kUp,    // Controller -> invoker (activation requests, pre-warms, ACKs).
  kDown,  // Invoker -> controller (responses, completion/failure notices).
  kBoth,
};

// A link partition: every message on the covered direction(s) of invoker
// `invoker`'s link is silently dropped during [start, start + duration), and
// the link heals when the window closes.  `invoker` = -1 partitions every
// link (a controller-side network brown-out).  A one-directional window
// (dir = kUp or kDown) is a blackhole: one side keeps transmitting into the
// void while the other hears nothing.
struct NetPartitionEvent {
  int invoker = -1;
  TimePoint start;
  Duration duration;
  NetDirection dir = NetDirection::kBoth;

  bool Covers(TimePoint t) const { return t >= start && t < start + duration; }
  bool operator==(const NetPartitionEvent&) const = default;
};

// Flaky loss: messages on the covered link(s) are independently dropped with
// `probability` while the window is active (both directions).
struct NetLossWindow {
  int invoker = -1;  // -1 = every link.
  TimePoint start;
  Duration duration;
  double probability = 0.0;

  bool Covers(TimePoint t) const { return t >= start && t < start + duration; }
  bool operator==(const NetLossWindow&) const = default;
};

// Duplicate delivery: a message sent while the window is active is delivered
// twice with `probability` (the copy samples its own latency, so the pair
// may also arrive reordered).  Exercises the RPC plane's idempotency.
struct NetDuplicateWindow {
  int invoker = -1;
  TimePoint start;
  Duration duration;
  double probability = 0.0;

  bool Covers(TimePoint t) const { return t >= start && t < start + duration; }
  bool operator==(const NetDuplicateWindow&) const = default;
};

// Reordered delivery: a message sent while the window is active is held back
// by uniform[0, extra_delay) with `probability`, letting later sends overtake
// it.
struct NetReorderWindow {
  int invoker = -1;
  TimePoint start;
  Duration duration;
  double probability = 0.0;
  Duration extra_delay = Duration::Millis(50);

  bool Covers(TimePoint t) const { return t >= start && t < start + duration; }
  bool operator==(const NetReorderWindow&) const = default;
};

// Parameters for the MTBF/MTTR plan generator.
struct MtbfModel {
  // Mean time between crashes per invoker (exponential).
  double mtbf_hours = 4.0;
  // Mean downtime per crash (exponential, floored at one second).
  double mttr_minutes = 10.0;
  // Mean time between controller failovers (state wipes); 0 disables them.
  double wipe_mtbf_hours = 0.0;
  uint64_t seed = 42;
};

struct FaultPlan {
  std::vector<CrashEvent> crashes;
  std::vector<StateWipeEvent> wipes;
  std::vector<LatencySpike> spikes;
  std::vector<TransientFaultWindow> transient_windows;
  // Network fault classes (take effect only when the cluster's NetworkModel
  // is enabled; see src/cluster/network.h).
  std::vector<NetPartitionEvent> partitions;
  std::vector<NetLossWindow> loss_windows;
  std::vector<NetDuplicateWindow> duplicate_windows;
  std::vector<NetReorderWindow> reorder_windows;

  bool Empty() const {
    return crashes.empty() && wipes.empty() && spikes.empty() &&
           transient_windows.empty() && !HasNetworkFaults();
  }
  bool HasNetworkFaults() const {
    return !partitions.empty() || !loss_windows.empty() ||
           !duplicate_windows.empty() || !reorder_windows.empty();
  }

  // Product of every spike multiplier active at `t` (1.0 when none).
  double LatencyMultiplierAt(TimePoint t) const;
  // Largest transient failure probability active at `t` (0.0 when none).
  double TransientFailureProbabilityAt(TimePoint t) const;

  // --- Network fault lookups (pure reads; no randomness) ---
  // True when a partition covers direction `dir` of invoker `invoker`'s link
  // at `t`.
  bool LinkPartitionedAt(int invoker, NetDirection dir, TimePoint t) const;
  // Largest loss / duplicate probability active on the link at `t`.
  double NetLossProbabilityAt(int invoker, TimePoint t) const;
  double NetDuplicateProbabilityAt(int invoker, TimePoint t) const;
  // Active reorder window for the link at `t` (the one with the largest
  // probability), or nullptr.
  const NetReorderWindow* NetReorderAt(int invoker, TimePoint t) const;

  // Empty string when the plan is well-formed for a cluster of
  // `num_invokers`; otherwise a description of the first problem.
  std::string Validate(int num_invokers) const;

  // Draws crash (and optionally wipe) events from exponential MTBF/MTTR
  // distributions over [0, horizon).  Deterministic in `model.seed`; each
  // invoker gets an independent forked stream so the plan for invoker i does
  // not depend on how many other invokers exist before it.
  static FaultPlan FromMtbf(const MtbfModel& model, int num_invokers,
                            Duration horizon);

  // Parses a plan from a compact spec: semicolon-separated clauses of
  //   crash:invoker=I,at=D,down=D
  //   wipe:at=D
  //   spike:at=D,for=D,x=M
  //   flaky:at=D,for=D,p=P
  //   partition:at=D,for=D[,invoker=I][,dir=up|down|both]
  //   netloss:at=D,for=D,p=P[,invoker=I]
  //   netdup:at=D,for=D,p=P[,invoker=I]
  //   netreorder:at=D,for=D,p=P[,delay=D][,invoker=I]
  // where durations D accept ms/s/m/h/d suffixes (bare numbers = seconds)
  // and invoker defaults to -1 (every link) for the network clauses.
  // Returns nullopt and sets *error on malformed input.
  static std::optional<FaultPlan> Parse(std::string_view spec,
                                        std::string* error);

  bool operator==(const FaultPlan&) const = default;
};

// Parses "250ms" / "30s" / "15m" / "4h" / "2d" (bare numbers are seconds).
std::optional<Duration> ParseDuration(std::string_view text);

}  // namespace faas

#endif  // SRC_FAULTS_FAULT_PLAN_H_
