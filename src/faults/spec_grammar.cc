#include "src/faults/spec_grammar.h"

#include <cmath>

#include "src/common/strings.h"
#include "src/faults/fault_plan.h"

namespace faas::spec {

std::optional<std::string_view> ClauseArgs::Get(std::string_view key) const {
  for (const auto& [k, v] : pairs) {
    if (k == key) {
      return v;
    }
  }
  return std::nullopt;
}

std::optional<ClauseArgs> ParseArgs(std::string_view body, std::string* error,
                                    std::string_view clause) {
  ClauseArgs args;
  for (std::string_view pair : SplitString(body, ',')) {
    pair = StripWhitespace(pair);
    if (pair.empty()) {
      continue;
    }
    const size_t eq = pair.find('=');
    if (eq == std::string_view::npos) {
      *error = std::string(clause) + ": expected key=value, got '" +
               std::string(pair) + "'";
      return std::nullopt;
    }
    args.pairs.emplace_back(StripWhitespace(pair.substr(0, eq)),
                            StripWhitespace(pair.substr(eq + 1)));
  }
  return args;
}

std::optional<Duration> GetDuration(const ClauseArgs& args,
                                    std::string_view key, std::string* error,
                                    std::string_view clause) {
  const auto raw = args.Get(key);
  if (!raw.has_value()) {
    *error = std::string(clause) + ": missing " + std::string(key) + "=";
    return std::nullopt;
  }
  const auto parsed = ParseDuration(*raw);
  if (!parsed.has_value()) {
    *error = std::string(clause) + ": bad duration '" + std::string(*raw) +
             "' for " + std::string(key);
  }
  return parsed;
}

std::optional<double> GetDouble(const ClauseArgs& args, std::string_view key,
                                std::string* error, std::string_view clause) {
  const auto raw = args.Get(key);
  const auto parsed = raw.has_value() ? ParseDouble(*raw) : std::nullopt;
  if (!parsed.has_value() || !std::isfinite(*parsed)) {
    *error = std::string(clause) + ": missing or bad " + std::string(key) + "=";
    return std::nullopt;
  }
  return parsed;
}

std::optional<int64_t> GetInt(const ClauseArgs& args, std::string_view key,
                              std::string* error, std::string_view clause) {
  const auto raw = args.Get(key);
  const auto parsed = raw.has_value() ? ParseInt64(*raw) : std::nullopt;
  if (!parsed.has_value()) {
    *error = std::string(clause) + ": missing or bad " + std::string(key) + "=";
    return std::nullopt;
  }
  return parsed;
}

}  // namespace faas::spec
