// Shared clause grammar for fault/chaos specs.
//
// Both the simulator's FaultPlan (src/faults/fault_plan.h) and the serving
// chaos plan (src/serve/chaos.h) parse the same compact textual form:
// semicolon-separated clauses of `kind:key=value,key=value,...` where
// durations accept ms/s/m/h/d suffixes.  This header holds the pieces both
// parsers share — the key=value splitter and the typed argument getters —
// so a clause that parses in one plan parses the same way in the other.

#ifndef SRC_FAULTS_SPEC_GRAMMAR_H_
#define SRC_FAULTS_SPEC_GRAMMAR_H_

#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "src/common/time.h"

namespace faas::spec {

// One clause's key=value pairs, e.g. "invoker=0,at=30m,down=5m".
struct ClauseArgs {
  std::vector<std::pair<std::string_view, std::string_view>> pairs;

  std::optional<std::string_view> Get(std::string_view key) const;
};

// Splits `body` into key=value pairs.  On malformed input sets *error
// (prefixed with the full clause text for context) and returns nullopt.
std::optional<ClauseArgs> ParseArgs(std::string_view body, std::string* error,
                                    std::string_view clause);

// Required duration argument (ms/s/m/h/d suffixes, bare numbers seconds).
std::optional<Duration> GetDuration(const ClauseArgs& args,
                                    std::string_view key, std::string* error,
                                    std::string_view clause);

// Required double / int argument; sets *error when missing or malformed.
std::optional<double> GetDouble(const ClauseArgs& args, std::string_view key,
                                std::string* error, std::string_view clause);
std::optional<int64_t> GetInt(const ClauseArgs& args, std::string_view key,
                              std::string* error, std::string_view clause);

}  // namespace faas::spec

#endif  // SRC_FAULTS_SPEC_GRAMMAR_H_
