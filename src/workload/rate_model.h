// Per-application invocation-rate model (Figure 5a).
//
// The paper reports the CDF of average daily invocations per application:
// the range spans 8 orders of magnitude, 45% of apps average at most one
// invocation per hour, and 81% at most one per minute.  We model the CDF of
// log10(daily rate) as a piecewise-linear function through those anchors and
// sample by inverse transform.

#ifndef SRC_WORKLOAD_RATE_MODEL_H_
#define SRC_WORKLOAD_RATE_MODEL_H_

#include <vector>

#include "src/common/rng.h"
#include "src/workload/config.h"

namespace faas {

class RateModel {
 public:
  explicit RateModel(const GeneratorConfig& config);

  // Samples an average daily invocation rate (invocations per day).
  double SampleDailyRate(Rng& rng) const;

  // As above but clamped to the instants cap (used when every invocation is
  // materialised as a timestamp).
  double SampleCappedDailyRate(Rng& rng) const;

  // CDF of the uncapped model at a given daily rate, for verification.
  double CdfAtDailyRate(double rate_per_day) const;

 private:
  struct Knot {
    double log10_rate;
    double cdf;
  };
  std::vector<Knot> knots_;
  double cap_;
};

}  // namespace faas

#endif  // SRC_WORKLOAD_RATE_MODEL_H_
