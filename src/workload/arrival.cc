#include "src/workload/arrival.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "src/common/logging.h"

namespace faas {

namespace {

constexpr double kMillisPerDay = 86'400'000.0;

}  // namespace

DiurnalProfile::DiurnalProfile(const GeneratorConfig& config)
    : baseline_(config.diurnal_baseline),
      weekend_dampening_(config.weekend_dampening),
      peak_hour_(config.peak_hour_utc) {
  FAAS_CHECK(baseline_ > 0.0 && baseline_ <= 1.0) << "baseline in (0,1]";
}

double DiurnalProfile::MultiplierAt(TimePoint t) const {
  const double ms = static_cast<double>(t.millis_since_origin());
  const double day_fraction = std::fmod(ms, kMillisPerDay) / kMillisPerDay;
  const double hour = day_fraction * 24.0;
  const int day_index = static_cast<int>(ms / kMillisPerDay);
  // Day 0 is a Monday (the trace starts Monday, July 15th 2019); days 5 and
  // 6 of each week are the weekend.
  const bool weekend = (day_index % 7) >= 5;

  // Raised-cosine hump centred on the peak hour, on top of the baseline.
  const double phase = 2.0 * M_PI * (hour - peak_hour_) / 24.0;
  double hump = 0.5 * (1.0 + std::cos(phase));  // In [0, 1], peak at peak_hour.
  // Sharpen the hump slightly so the peak is pronounced, as in Figure 4.
  hump = std::pow(hump, 1.5);
  double multiplier = baseline_ + (1.0 - baseline_) * hump;
  if (weekend) {
    // Weekends keep the baseline but shrink the diurnal swing.
    multiplier = baseline_ + (multiplier - baseline_) * weekend_dampening_;
  }
  return multiplier;
}

std::vector<TimePoint> GeneratePeriodicArrivals(Duration period,
                                                Duration horizon, Rng& rng,
                                                double jitter_fraction) {
  FAAS_CHECK(period.millis() > 0) << "period must be positive";
  std::vector<TimePoint> arrivals;
  const int64_t phase =
      static_cast<int64_t>(rng.NextDouble() * static_cast<double>(period.millis()));
  const double jitter_ms =
      jitter_fraction * static_cast<double>(period.millis());
  for (int64_t t = phase; t < horizon.millis(); t += period.millis()) {
    int64_t instant = t;
    if (jitter_ms > 0.0) {
      instant += static_cast<int64_t>((rng.NextDouble() - 0.5) * jitter_ms);
      instant = std::clamp<int64_t>(instant, 0, horizon.millis() - 1);
    }
    arrivals.emplace_back(instant);
  }
  std::sort(arrivals.begin(), arrivals.end());
  return arrivals;
}

std::vector<TimePoint> GeneratePoissonArrivals(double mean_rate_per_day,
                                               Duration horizon,
                                               const DiurnalProfile& profile,
                                               Rng& rng) {
  std::vector<TimePoint> arrivals;
  if (mean_rate_per_day <= 0.0) {
    return arrivals;
  }
  // The diurnal multiplier's time average over a week is needed so that the
  // realised mean rate matches the request.  Estimate it once on a coarse
  // grid (hourly over one week is exact enough for a smooth profile).
  double avg_multiplier = 0.0;
  constexpr int kGrid = 24 * 7;
  for (int i = 0; i < kGrid; ++i) {
    avg_multiplier += profile.MultiplierAt(
        TimePoint(static_cast<int64_t>(i) * 3'600'000));
  }
  avg_multiplier /= kGrid;

  // Lewis-Shedler thinning with majorant rate = peak (multiplier 1).
  const double peak_rate_per_ms =
      (mean_rate_per_day / avg_multiplier) / kMillisPerDay;
  arrivals.reserve(static_cast<size_t>(
      mean_rate_per_day * horizon.millis() / kMillisPerDay * 1.1) + 4);
  double t_ms = 0.0;
  const double horizon_ms = static_cast<double>(horizon.millis());
  while (true) {
    t_ms += rng.NextExponential(peak_rate_per_ms);
    if (t_ms >= horizon_ms) {
      break;
    }
    const TimePoint candidate(static_cast<int64_t>(t_ms));
    if (rng.NextDouble() < profile.MultiplierAt(candidate)) {
      arrivals.push_back(candidate);
    }
  }
  return arrivals;
}

std::vector<TimePoint> GenerateBurstyArrivals(double mean_rate_per_day,
                                              Duration horizon,
                                              const DiurnalProfile& profile,
                                              Rng& rng,
                                              double events_per_burst,
                                              Duration intra_burst_iat) {
  std::vector<TimePoint> arrivals;
  if (mean_rate_per_day <= 0.0) {
    return arrivals;
  }
  FAAS_CHECK(events_per_burst >= 1.0) << "need at least one event per burst";
  FAAS_CHECK(intra_burst_iat.millis() > 0) << "intra-burst IAT must be positive";

  // Burst epochs: diurnal-modulated Poisson at rate / events_per_burst.
  const std::vector<TimePoint> epochs = GeneratePoissonArrivals(
      mean_rate_per_day / events_per_burst, horizon, profile, rng);

  const double intra_rate_per_ms =
      1.0 / static_cast<double>(intra_burst_iat.millis());
  const double horizon_ms = static_cast<double>(horizon.millis());
  for (TimePoint epoch : epochs) {
    arrivals.push_back(epoch);
    const double extra = rng.NextPoisson(events_per_burst - 1.0);
    double t_ms = static_cast<double>(epoch.millis_since_origin());
    for (double k = 0; k < extra; k += 1.0) {
      t_ms += rng.NextExponential(intra_rate_per_ms);
      if (t_ms >= horizon_ms) {
        break;
      }
      arrivals.emplace_back(static_cast<int64_t>(t_ms));
    }
  }
  std::sort(arrivals.begin(), arrivals.end());
  return arrivals;
}

void ApplyFlashCrowd(Trace& trace, const FlashCrowdSpec& spec, Rng& rng) {
  if (!spec.enabled()) {
    return;
  }
  FAAS_CHECK(spec.duration.millis() > 0) << "burst duration must be positive";
  FAAS_CHECK(spec.fraction > 0.0 && spec.fraction <= 1.0)
      << "participation fraction in (0,1]";
  FAAS_CHECK(spec.events_per_function > 0.0)
      << "events per function must be positive";

  const double horizon_ms = static_cast<double>(trace.horizon.millis());
  std::vector<double> epochs(static_cast<size_t>(spec.count));
  for (double& epoch : epochs) {
    epoch = rng.UniformDouble(0.15, 0.85) * horizon_ms;
  }
  std::sort(epochs.begin(), epochs.end());

  const double duration_ms = static_cast<double>(spec.duration.millis());
  const double offset_rate_per_ms = 4.0 / duration_ms;  // Mean duration/4.
  for (AppTrace& app : trace.apps) {
    // Independent stream per app: the draws an app consumes do not shift
    // when another app's burst sizes change.
    Rng app_rng = rng.Fork();
    bool touched = false;
    for (double epoch : epochs) {
      if (!app_rng.Bernoulli(spec.fraction)) {
        continue;
      }
      for (FunctionTrace& function : app.functions) {
        const double extra = app_rng.NextPoisson(spec.events_per_function);
        for (double k = 0; k < extra; k += 1.0) {
          const double offset = std::min(
              app_rng.NextExponential(offset_rate_per_ms), duration_ms - 1.0);
          const double t = std::min(epoch + offset, horizon_ms - 1.0);
          function.invocations.emplace_back(static_cast<int64_t>(t));
          touched = true;
        }
      }
    }
    if (!touched) {
      continue;
    }
    for (FunctionTrace& function : app.functions) {
      std::sort(function.invocations.begin(), function.invocations.end());
      function.execution.count = function.InvocationCount();
    }
    app.memory.sample_count = std::max<int64_t>(app.TotalInvocations(), 1);
  }
}

Duration SnapToTimerPeriod(double desired_rate_per_day) {
  // Cron-style grid: 1, 2, 5, 10, 15, 30 minutes; 1, 2, 4, 6, 12 hours; 1 day.
  static const Duration kGrid[] = {
      Duration::Minutes(1),  Duration::Minutes(2),  Duration::Minutes(5),
      Duration::Minutes(10), Duration::Minutes(15), Duration::Minutes(30),
      Duration::Hours(1),    Duration::Hours(2),    Duration::Hours(4),
      Duration::Hours(6),    Duration::Hours(12),   Duration::Days(1),
  };
  if (desired_rate_per_day <= 0.0) {
    return Duration::Days(1);
  }
  const double desired_period_ms = kMillisPerDay / desired_rate_per_day;
  Duration best = kGrid[0];
  double best_error = std::numeric_limits<double>::infinity();
  for (Duration candidate : kGrid) {
    const double error = std::fabs(
        std::log(static_cast<double>(candidate.millis()) / desired_period_ms));
    if (error < best_error) {
      best_error = error;
      best = candidate;
    }
  }
  return best;
}

}  // namespace faas
