#include "src/workload/rate_model.h"

#include <algorithm>
#include <cmath>

#include "src/common/logging.h"

namespace faas {

RateModel::RateModel(const GeneratorConfig& config)
    : cap_(config.instants_rate_cap_per_day) {
  knots_ = {
      {config.rate_log10_min, 0.0},
      {config.rate_log10_knee1, config.cdf_at_knee1},
      {config.rate_log10_knee2, config.cdf_at_knee2},
      {config.rate_log10_max, 1.0},
  };
  for (size_t i = 1; i < knots_.size(); ++i) {
    FAAS_CHECK(knots_[i].log10_rate > knots_[i - 1].log10_rate &&
               knots_[i].cdf >= knots_[i - 1].cdf)
        << "rate model knots must be increasing";
  }
}

double RateModel::SampleDailyRate(Rng& rng) const {
  const double u = rng.NextDouble();
  // Find the segment containing u and invert the linear CDF piece.
  for (size_t i = 1; i < knots_.size(); ++i) {
    if (u <= knots_[i].cdf || i == knots_.size() - 1) {
      const double cdf_span = knots_[i].cdf - knots_[i - 1].cdf;
      const double t =
          cdf_span > 0.0 ? (u - knots_[i - 1].cdf) / cdf_span : 0.0;
      const double log10_rate =
          knots_[i - 1].log10_rate +
          t * (knots_[i].log10_rate - knots_[i - 1].log10_rate);
      return std::pow(10.0, log10_rate);
    }
  }
  return std::pow(10.0, knots_.back().log10_rate);
}

double RateModel::SampleCappedDailyRate(Rng& rng) const {
  return std::min(SampleDailyRate(rng), cap_);
}

double RateModel::CdfAtDailyRate(double rate_per_day) const {
  if (rate_per_day <= 0.0) {
    return 0.0;
  }
  const double x = std::log10(rate_per_day);
  if (x <= knots_.front().log10_rate) {
    return 0.0;
  }
  if (x >= knots_.back().log10_rate) {
    return 1.0;
  }
  for (size_t i = 1; i < knots_.size(); ++i) {
    if (x <= knots_[i].log10_rate) {
      const double t = (x - knots_[i - 1].log10_rate) /
                       (knots_[i].log10_rate - knots_[i - 1].log10_rate);
      return knots_[i - 1].cdf + t * (knots_[i].cdf - knots_[i - 1].cdf);
    }
  }
  return 1.0;
}

}  // namespace faas
