// Configuration for the synthetic workload generator.
//
// Every default below is calibrated against a number the paper publishes;
// the comment next to each knob cites the figure/table it reproduces.  The
// characterization test suite asserts that traces drawn with these defaults
// land near the paper's anchor points.

#ifndef SRC_WORKLOAD_CONFIG_H_
#define SRC_WORKLOAD_CONFIG_H_

#include <array>
#include <cstdint>
#include <vector>

#include "src/trace/types.h"

namespace faas {

struct GeneratorConfig {
  uint64_t seed = 42;
  int num_apps = 2000;
  int days = 14;  // The paper's trace covers July 15-28, 2019 (two weeks).

  // ---- Invocation rates (Figure 5a) -------------------------------------
  // CDF of log10(daily invocations per app) modelled as piecewise linear
  // between knots.  Anchors from the paper: 45% of apps average at most one
  // invocation per hour (24/day) and 81% at most one per minute (1440/day);
  // the full range spans 8 orders of magnitude.
  double rate_log10_min = -1.15;  // ~1 invocation per 2 weeks.
  double rate_log10_knee1 = 1.3802112;   // log10(24): once per hour.
  double rate_log10_knee2 = 3.1583625;   // log10(1440): once per minute.
  double rate_log10_max = 8.0;           // Most popular apps: 1e8/day.
  double cdf_at_knee1 = 0.45;
  double cdf_at_knee2 = 0.81;
  // Traces that materialise every invocation instant cap the per-app daily
  // rate here (memory bound); the analytic Figure 5 bench samples the
  // uncapped model directly.  The cap only compresses the always-warm top of
  // the popularity range, which no keep-alive policy differentiates.
  double instants_rate_cap_per_day = 8000.0;

  // ---- Functions per app (Figure 1) --------------------------------------
  // 54% of apps have exactly 1 function; 95% have at most 10; only 0.04%
  // have more than 100.
  double frac_single_function = 0.54;
  double frac_upto_10_functions = 0.95;
  double frac_over_100_functions = 0.0004;
  int max_functions_per_app = 2000;

  // ---- Trigger mix (Figures 2 and 3) -------------------------------------
  // Popular app-level trigger combinations from Figure 3(b) (percent of
  // apps).  The residual mass is spread over random 2-3 trigger combos.
  struct TriggerCombo {
    const char* key;  // Short codes: H, T, Q, S, E, O, o.
    double percent;
  };
  std::vector<TriggerCombo> trigger_combos = {
      {"H", 43.27},  {"T", 13.36}, {"Q", 9.47},  {"HT", 4.59}, {"HQ", 4.22},
      {"E", 3.01},   {"S", 2.80},  {"TQ", 2.57}, {"HTQ", 2.48}, {"Ho", 1.69},
      {"HS", 1.05},  {"HO", 1.03},
  };

  // Function-level trigger shares (Figure 2, %Functions), used to assign
  // triggers to an app's extra functions within the chosen combo.
  std::array<double, kNumTriggerTypes> function_share_by_trigger = {
      55.0,  // http
      15.2,  // queue
      2.2,   // event
      6.9,   // orchestration
      15.6,  // timer
      2.8,   // storage
      2.2,   // others
  };

  // Relative invocation intensity of a trigger = %Invocations / %Functions
  // from Figure 2.  Used to split an app's total rate across its functions
  // so Event/Queue functions carry disproportionally many invocations.
  std::array<double, kNumTriggerTypes> invocation_intensity_by_trigger = {
      35.9 / 55.0,  // http  ~0.65
      33.5 / 15.2,  // queue ~2.2
      24.7 / 2.2,   // event ~11.2
      2.3 / 6.9,    // orchestration ~0.33
      2.0 / 15.6,   // timer ~0.13
      0.7 / 2.8,    // storage ~0.25
      1.0 / 2.2,    // others ~0.45
  };

  // ---- Arrival-process behaviour mix (Figure 6) ---------------------------
  // Probability that a function of each trigger class behaves periodically
  // (CV ~ 0), as a Poisson stream (CV ~ 1), or bursty (CV > 1).  Timers are
  // always periodic.  ~10% of no-timer apps being near-periodic (IoT-style
  // callers) motivates the periodic share of HTTP/Storage/Others.
  struct BehaviorMix {
    double periodic = 0.0;
    double poisson = 0.0;
    double bursty = 0.0;
  };
  // Calibration note: these shares balance two published shapes that pull
  // in opposite directions — the IAT-CV spectrum of Figure 6 (wants more
  // periodic/Poisson mass) and the cold-start CDFs of Figures 14-15 (want
  // rare apps to arrive in tight clumps, i.e. bursty).  The cold-start
  // experiments are the paper's core contribution, so the mix leans bursty;
  // Figure 6's qualitative ordering across app classes still holds.
  std::array<BehaviorMix, kNumTriggerTypes> behavior_by_trigger = {{
      {0.06, 0.09, 0.85},  // http
      {0.04, 0.08, 0.88},  // queue
      {0.06, 0.12, 0.82},  // event
      {0.00, 0.13, 0.87},  // orchestration
      {1.00, 0.00, 0.00},  // timer
      {0.07, 0.12, 0.81},  // storage
      {0.09, 0.13, 0.78},  // others
  }};

  // Non-timer periodic callers (IoT-style) jitter their period by a uniform
  // fraction in [0, this]; the resulting CV spread fills the 0..1 band of
  // Figure 6 that strictly-periodic and Poisson streams cannot produce.
  double periodic_jitter_max = 0.8;

  // Survival-bias correction when assigning triggers to an app's extra
  // functions: timers always fire (periodic) while low-rate HTTP/queue
  // functions may never fire inside the horizon and get dropped, so raw
  // Figure 2 weights would over-represent timers among surviving functions.
  double timer_extra_weight_factor = 0.22;

  // Fraction of apps that are invoked exactly once over the whole trace
  // (test deployments, abandoned apps).  The paper observes ~3.5% of apps
  // with a single invocation in the week — always cold even under
  // no-unloading (Figure 14), and beyond help from any predictor
  // (Figure 19).
  double frac_one_shot_apps = 0.035;

  // Fraction of apps whose invocation pattern CHANGES partway through the
  // trace (rate scaled by a random factor and the arrival process
  // re-sampled).  Models the "transitioning to a different IT regime"
  // scenario that motivates the policy's representativeness check (design
  // challenge #2).  Default 0 keeps the calibration experiments stationary;
  // the adaptation ablation bench turns it up.
  double pattern_change_fraction = 0.0;

  // Strength of the rate/trigger-combo correlation in [0, 1]: 0 assigns
  // sampled rates to apps at random; 1 ranks apps purely by their combo's
  // invocation intensity.  The paper's Figure 2 requires Event/Queue apps to
  // sit in the high-rate tail (24.7% of invocations from 2.2% of functions).
  double rate_intensity_correlation = 1.0;


  // ---- Diurnal load shape (Figure 4) --------------------------------------
  // The platform-wide hourly load has a flat baseline of roughly 50% of the
  // peak plus diurnal and weekly swings.
  double diurnal_baseline = 0.38;
  double weekend_dampening = 0.75;  // Weekend peaks are visibly lower.
  double peak_hour_utc = 15.0;      // Hour of day with maximum load.

  // ---- Execution times (Figure 7) -----------------------------------------
  // Log-normal fit to average execution times (seconds): log-mean -0.38,
  // sigma 2.36.  Per-trigger multipliers reproduce the ~10x median spread
  // (orchestration functions are ~30ms dispatch shims).
  double exec_lognormal_mu = -0.38;
  double exec_lognormal_sigma = 2.36;
  std::array<double, kNumTriggerTypes> exec_median_multiplier = {
      1.0,    // http
      1.8,    // queue
      1.4,    // event
      0.045,  // orchestration (~30ms median)
      1.2,    // timer
      2.2,    // storage
      1.0,    // others
  };
  // Clamp sampled average execution times into a plausible band.
  double exec_min_ms = 1.0;
  double exec_max_ms = 3.0 * 3'600'000.0;

  // ---- Memory (Figure 8) ---------------------------------------------------
  // Burr XII fit to average allocated memory (MB): c, k, lambda from the
  // paper; 50% of apps allocate <= ~170MB, 90% <= ~400MB.
  double memory_burr_c = 11.652;
  double memory_burr_k = 0.221;
  double memory_burr_lambda = 107.083;
  double memory_min_mb = 10.0;
  double memory_max_mb = 4096.0;

  // ---- Flash crowds (overload experiments) --------------------------------
  // Synchronized burst trains stacked on the diurnal curve: at each of
  // `flash_crowd_count` epochs, a `flash_crowd_fraction` of apps receives a
  // Poisson(`flash_crowd_events_per_function`) clump of extra invocations
  // front-loaded inside a `flash_crowd_duration` window.  The default (0
  // crowds) adds nothing and draws no random numbers, so traces generated
  // without the feature are bit-identical to pre-overload builds.
  int flash_crowd_count = 0;
  Duration flash_crowd_duration = Duration::Minutes(10);
  double flash_crowd_fraction = 0.3;
  double flash_crowd_events_per_function = 80.0;

  Duration Horizon() const { return Duration::Days(days); }
};

}  // namespace faas

#endif  // SRC_WORKLOAD_CONFIG_H_
