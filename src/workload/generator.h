// Synthetic FaaS trace generator.
//
// Produces Trace objects whose population statistics match the paper's
// published distributions (see GeneratorConfig for the calibration map).
// The generator is deterministic given a seed: the same config always
// produces the identical trace, which keeps every experiment reproducible.

#ifndef SRC_WORKLOAD_GENERATOR_H_
#define SRC_WORKLOAD_GENERATOR_H_

#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/trace/types.h"
#include "src/workload/config.h"
#include "src/workload/rate_model.h"

namespace faas {

class WorkloadGenerator {
 public:
  explicit WorkloadGenerator(GeneratorConfig config);

  // Generates the full trace.  Apps that receive zero invocations over the
  // horizon are dropped (the Azure dataset only contains invoked functions);
  // `num_apps` is the number of *sampled* apps, so the returned trace may
  // contain slightly fewer.
  Trace Generate();

  const GeneratorConfig& config() const { return config_; }

  // Exposed for the Figure 5 benches: samples `n` uncapped daily rates.
  std::vector<double> SampleDailyRates(int n);

 private:
  // Builds the two combo tables (see SampleTriggerCombo).
  void BuildComboTables();
  // Number of functions in a new app (Figure 1 calibration).
  int SampleFunctionsPerApp(Rng& rng);
  // Trigger classes for a new app (Figure 3b calibration).  Single-function
  // apps can only hold single-trigger combos, so the sampler keeps two
  // tables: a renormalised single-trigger table for size-1 apps and a
  // compensated table for larger apps, constructed so the aggregate combo
  // marginals still match Figure 3(b).
  std::vector<TriggerType> SampleTriggerCombo(int num_functions, Rng& rng);
  // Assigns triggers to `count` functions covering `combo` at least once.
  std::vector<TriggerType> AssignFunctionTriggers(
      const std::vector<TriggerType>& combo, int count, Rng& rng);
  // Invocation instants for one function over [0, horizon).
  std::vector<TimePoint> GenerateInvocations(TriggerType trigger,
                                             double rate_per_day,
                                             Duration horizon, Rng& rng);
  // As above, but the pattern switches at a random point mid-trace
  // (pattern_change_fraction apps use this).
  std::vector<TimePoint> GenerateInvocationsWithPatternChange(
      TriggerType trigger, double rate_per_day, Rng& rng);
  // Per-function execution summary (Figure 7 calibration).
  ExecutionStats SampleExecutionStats(TriggerType trigger, int64_t invocations,
                                      Rng& rng);
  // Per-app memory summary (Figure 8 calibration).
  MemoryStats SampleMemoryStats(Rng& rng);

  GeneratorConfig config_;
  RateModel rate_model_;
  Rng root_rng_;

  struct WeightedCombo {
    std::vector<TriggerType> triggers;
    double weight = 0.0;
  };
  std::vector<WeightedCombo> single_function_combos_;
  std::vector<WeightedCombo> multi_function_combos_;
  double multi_residual_weight_ = 0.0;  // Random 2-3 trigger combos.
};

}  // namespace faas

#endif  // SRC_WORKLOAD_GENERATOR_H_
