// Synthetic FaaS trace generator.
//
// Produces Trace objects whose population statistics match the paper's
// published distributions (see GeneratorConfig for the calibration map).
// The generator is deterministic given a seed: the same config always
// produces the identical trace, which keeps every experiment reproducible.
//
// Shard-addressable generation: generation runs in two passes.  Pass 1
// (PreparePlans) samples every app's *structure* — function count, trigger
// combo, popularity rank — and assigns the globally-sorted daily rates; it
// is cheap (no invocation instants) and runs exactly once per generator.
// Pass 2 materializes invocation streams, and consumes only the app's own
// forked RNG stream, so any contiguous range of sampled apps can be
// materialized independently (GenerateShard) and is bit-identical to the
// same apps inside a full Generate().  That property is what lets the
// streaming sweep engine (src/sim/shard_source.h) generate per-shard event
// arenas on demand without ever holding the full trace.

#ifndef SRC_WORKLOAD_GENERATOR_H_
#define SRC_WORKLOAD_GENERATOR_H_

#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/trace/types.h"
#include "src/workload/config.h"
#include "src/workload/rate_model.h"

namespace faas {

class WorkloadGenerator {
 public:
  explicit WorkloadGenerator(GeneratorConfig config);

  // Generates the full trace.  Apps that receive zero invocations over the
  // horizon are dropped (the Azure dataset only contains invoked functions);
  // `num_apps` is the number of *sampled* apps, so the returned trace may
  // contain slightly fewer.  Idempotent: calling Generate() twice on the
  // same instance returns the same trace.
  Trace Generate();

  // Number of sampled app slots (config.num_apps); shard ranges index these,
  // not the surviving apps of the output trace.
  int num_sampled_apps() const { return config_.num_apps; }

  // Runs pass 1 (see header comment).  Idempotent and thread-safe; called
  // implicitly by Generate/GenerateShard, and explicitly by callers that
  // want the one-time cost paid before a timing region.
  void PreparePlans();

  // Materializes the sampled apps in [begin, end): the returned trace holds
  // that range's *surviving* apps, bit-identical (ids, instants, stats) to
  // the same apps inside Generate()'s output, with a shard-local entity
  // index.  Thread-safe for concurrent calls with any ranges; requires
  // flash crowds disabled (the overlay is a cross-shard global pass).
  Trace GenerateShard(int begin, int end);

  const GeneratorConfig& config() const { return config_; }

  // Exposed for the Figure 5 benches: samples `n` uncapped daily rates.
  std::vector<double> SampleDailyRates(int n);

 private:
  // Pass-1 output for one sampled app: the structure plus the RNG stream
  // state pass 2 continues from.  Materialization copies `rng`, so a plan
  // can be replayed any number of times.
  struct AppPlan {
    Rng rng;
    std::vector<TriggerType> triggers;
    double rate = 0.0;
    bool one_shot = false;
  };

  // Builds the two combo tables (see SampleTriggerCombo).
  void BuildComboTables();
  // Number of functions in a new app (Figure 1 calibration).
  int SampleFunctionsPerApp(Rng& rng) const;
  // Trigger classes for a new app (Figure 3b calibration).  Single-function
  // apps can only hold single-trigger combos, so the sampler keeps two
  // tables: a renormalised single-trigger table for size-1 apps and a
  // compensated table for larger apps, constructed so the aggregate combo
  // marginals still match Figure 3(b).
  std::vector<TriggerType> SampleTriggerCombo(int num_functions,
                                              Rng& rng) const;
  // Assigns triggers to `count` functions covering `combo` at least once.
  std::vector<TriggerType> AssignFunctionTriggers(
      const std::vector<TriggerType>& combo, int count, Rng& rng) const;
  // Invocation instants for one function over [0, horizon).
  std::vector<TimePoint> GenerateInvocations(TriggerType trigger,
                                             double rate_per_day,
                                             Duration horizon, Rng& rng) const;
  // As above, but the pattern switches at a random point mid-trace
  // (pattern_change_fraction apps use this).
  std::vector<TimePoint> GenerateInvocationsWithPatternChange(
      TriggerType trigger, double rate_per_day, Rng& rng) const;
  // Per-function execution summary (Figure 7 calibration).
  ExecutionStats SampleExecutionStats(TriggerType trigger, int64_t invocations,
                                      Rng& rng) const;
  // Per-app memory summary (Figure 8 calibration).
  MemoryStats SampleMemoryStats(Rng& rng) const;

  // Pass 2 for one sampled app, replaying from a copy of its plan's RNG.
  // nullopt when the app never fires inside the horizon (dropped).
  std::optional<AppTrace> MaterializeApp(int app_index) const;

  GeneratorConfig config_;
  RateModel rate_model_;
  Rng root_rng_;

  std::once_flag plans_once_;
  std::vector<AppPlan> plans_;

  struct WeightedCombo {
    std::vector<TriggerType> triggers;
    double weight = 0.0;
  };
  std::vector<WeightedCombo> single_function_combos_;
  std::vector<WeightedCombo> multi_function_combos_;
  double multi_residual_weight_ = 0.0;  // Random 2-3 trigger combos.
};

}  // namespace faas

#endif  // SRC_WORKLOAD_GENERATOR_H_
