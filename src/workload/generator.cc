#include "src/workload/generator.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>

#include "src/common/logging.h"
#include "src/stats/distributions.h"
#include "src/trace/entity_index.h"
#include "src/workload/arrival.h"

namespace faas {

namespace {

TriggerType TriggerFromShortCode(char code) {
  switch (code) {
    case 'H':
      return TriggerType::kHttp;
    case 'Q':
      return TriggerType::kQueue;
    case 'E':
      return TriggerType::kEvent;
    case 'O':
      return TriggerType::kOrchestration;
    case 'T':
      return TriggerType::kTimer;
    case 'S':
      return TriggerType::kStorage;
    case 'o':
      return TriggerType::kOthers;
    default:
      FAAS_CHECK(false) << "unknown trigger code '" << code << "'";
  }
  return TriggerType::kOthers;
}

std::string MakeId(const char* prefix, int index) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%s%06d", prefix, index);
  return buf;
}

}  // namespace

WorkloadGenerator::WorkloadGenerator(GeneratorConfig config)
    : config_(std::move(config)),
      rate_model_(config_),
      root_rng_(config_.seed) {
  BuildComboTables();
}

void WorkloadGenerator::BuildComboTables() {
  // Single-function apps can only hold single-trigger combos.  To keep the
  // aggregate Figure 3(b) marginals, size-1 apps draw from the single-trigger
  // combos renormalised to 1, and larger apps draw from a compensated table:
  //   q_c        = p_c / S                      (size-1 table; S = sum of
  //                                              single-trigger mass)
  //   p'_c       = (p_c - f1 * q_c) / (1 - f1)  (single-trigger combos in
  //                                              the multi table)
  //   p'_c       = p_c / (1 - f1)               (multi-trigger combos)
  // where f1 is the single-function app fraction.  Then
  // f1 * q_c + (1 - f1) * p'_c = p_c for every combo.
  const double f1 = config_.frac_single_function;
  double named_mass = 0.0;
  double single_mass = 0.0;
  for (const auto& combo : config_.trigger_combos) {
    named_mass += combo.percent / 100.0;
    if (std::strlen(combo.key) == 1) {
      single_mass += combo.percent / 100.0;
    }
  }
  FAAS_CHECK(single_mass >= f1)
      << "single-trigger combo mass must cover the single-function fraction";

  for (const auto& combo : config_.trigger_combos) {
    std::vector<TriggerType> triggers;
    for (const char* c = combo.key; *c != '\0'; ++c) {
      triggers.push_back(TriggerFromShortCode(*c));
    }
    const double p = combo.percent / 100.0;
    if (triggers.size() == 1) {
      const double q = p / single_mass;
      single_function_combos_.push_back({triggers, q});
      const double adjusted = (p - f1 * q) / (1.0 - f1);
      multi_function_combos_.push_back(
          {std::move(triggers), std::max(adjusted, 0.0)});
    } else {
      multi_function_combos_.push_back({std::move(triggers), p / (1.0 - f1)});
    }
  }
  // The residual (unnamed) mass is random multi-trigger combos.
  multi_residual_weight_ = (1.0 - named_mass) / (1.0 - f1);
}

std::vector<double> WorkloadGenerator::SampleDailyRates(int n) {
  Rng rng = root_rng_.Fork();
  std::vector<double> rates(static_cast<size_t>(n));
  for (double& rate : rates) {
    rate = rate_model_.SampleDailyRate(rng);
  }
  return rates;
}

int WorkloadGenerator::SampleFunctionsPerApp(Rng& rng) const {
  const double u = rng.NextDouble();
  if (u < config_.frac_single_function) {
    return 1;
  }
  // Remaining mass: [2,10] takes the CDF up to frac_upto_10; (10,100] the
  // rest except frac_over_100; a log-uniform tail above 100.
  const double mass_2_to_10 =
      config_.frac_upto_10_functions - config_.frac_single_function;
  const double mass_over_100 = config_.frac_over_100_functions;
  const double mass_11_to_100 =
      1.0 - config_.frac_upto_10_functions - mass_over_100;
  const double v = u - config_.frac_single_function;
  if (v < mass_2_to_10) {
    // Within [2,10], weight smaller apps more (roughly 1/n), matching the
    // smooth knee of Figure 1.
    static const int kLow = 2;
    static const int kHigh = 10;
    double weights_total = 0.0;
    for (int n = kLow; n <= kHigh; ++n) {
      weights_total += 1.0 / static_cast<double>(n);
    }
    double target = (v / mass_2_to_10) * weights_total;
    for (int n = kLow; n <= kHigh; ++n) {
      target -= 1.0 / static_cast<double>(n);
      if (target <= 0.0) {
        return n;
      }
    }
    return kHigh;
  }
  if (v < mass_2_to_10 + mass_11_to_100) {
    // Log-uniform over (10, 100].
    const double t = (v - mass_2_to_10) / mass_11_to_100;
    return static_cast<int>(std::round(10.0 * std::pow(10.0, t)));
  }
  // Log-uniform over (100, max].
  const double t = (v - mass_2_to_10 - mass_11_to_100) / mass_over_100;
  const double max_f = static_cast<double>(config_.max_functions_per_app);
  return static_cast<int>(
      std::round(100.0 * std::pow(max_f / 100.0, std::min(t, 1.0))));
}

std::vector<TriggerType> WorkloadGenerator::SampleTriggerCombo(
    int num_functions, Rng& rng) const {
  if (num_functions <= 1) {
    std::vector<double> weights;
    weights.reserve(single_function_combos_.size());
    for (const auto& combo : single_function_combos_) {
      weights.push_back(combo.weight);
    }
    return single_function_combos_[rng.WeightedIndex(weights)].triggers;
  }

  // Multi-function app: draw from the compensated table (plus the residual
  // random-combo bucket), rejecting combos larger than the app.
  std::vector<double> weights;
  weights.reserve(multi_function_combos_.size() + 1);
  for (const auto& combo : multi_function_combos_) {
    weights.push_back(
        static_cast<int>(combo.triggers.size()) <= num_functions
            ? combo.weight
            : 0.0);
  }
  weights.push_back(multi_residual_weight_);
  const size_t pick = rng.WeightedIndex(weights);
  if (pick < multi_function_combos_.size()) {
    return multi_function_combos_[pick].triggers;
  }
  // Residual mass: a random 2-3 trigger combination weighted by the
  // function-level marginals.
  std::vector<double> trigger_weights(
      config_.function_share_by_trigger.begin(),
      config_.function_share_by_trigger.end());
  const int combo_size =
      std::min(num_functions, rng.Bernoulli(0.6) ? 2 : 3);
  std::vector<TriggerType> triggers;
  while (static_cast<int>(triggers.size()) < combo_size) {
    const TriggerType candidate =
        static_cast<TriggerType>(rng.WeightedIndex(trigger_weights));
    if (std::find(triggers.begin(), triggers.end(), candidate) ==
        triggers.end()) {
      triggers.push_back(candidate);
    }
  }
  return triggers;
}

std::vector<TriggerType> WorkloadGenerator::AssignFunctionTriggers(
    const std::vector<TriggerType>& combo, int count, Rng& rng) const {
  std::vector<TriggerType> assignment;
  assignment.reserve(static_cast<size_t>(count));
  // Every trigger in the combo appears at least once (apps in Figure 3b are
  // partitioned by their exact trigger set).
  for (size_t i = 0; i < combo.size() && static_cast<int>(i) < count; ++i) {
    assignment.push_back(combo[i]);
  }
  // Remaining functions sample within the combo by function-share weight,
  // with a survival-bias correction for timers (which always fire and are
  // therefore never dropped from the trace, unlike low-rate functions).
  std::vector<double> weights;
  weights.reserve(combo.size());
  for (TriggerType trigger : combo) {
    double weight =
        config_.function_share_by_trigger[static_cast<size_t>(trigger)];
    if (trigger == TriggerType::kTimer) {
      weight *= config_.timer_extra_weight_factor;
    }
    weights.push_back(weight);
  }
  while (static_cast<int>(assignment.size()) < count) {
    assignment.push_back(combo[rng.WeightedIndex(weights)]);
  }
  return assignment;
}

std::vector<TimePoint> WorkloadGenerator::GenerateInvocationsWithPatternChange(
    TriggerType trigger, double rate_per_day, Rng& rng) const {
  // Split the horizon at a random point in the middle half; the pattern
  // after the switch has a rescaled rate and an independently sampled
  // arrival process.
  const Duration horizon = config_.Horizon();
  const Duration switch_at = horizon * rng.UniformDouble(0.25, 0.75);
  const double rate_factor =
      rng.Bernoulli(0.5) ? rng.UniformDouble(2.0, 8.0)      // Speeds up.
                         : rng.UniformDouble(0.125, 0.5);   // Quiets down.

  std::vector<TimePoint> first =
      GenerateInvocations(trigger, rate_per_day, switch_at, rng);
  const std::vector<TimePoint> second = GenerateInvocations(
      trigger, rate_per_day * rate_factor, horizon - switch_at, rng);
  first.reserve(first.size() + second.size());
  for (TimePoint t : second) {
    first.push_back(t + switch_at);
  }
  return first;
}

std::vector<TimePoint> WorkloadGenerator::GenerateInvocations(
    TriggerType trigger, double rate_per_day, Duration horizon,
    Rng& rng) const {
  const DiurnalProfile profile(config_);
  GeneratorConfig::BehaviorMix mix =
      config_.behavior_by_trigger[static_cast<size_t>(trigger)];
  // Behaviour is rate-dependent: the burst-with-long-gap pattern belongs to
  // RARE applications (that is what keeps them warm under keep-alive, Figure
  // 14), while mid/high-rate traffic is steadier — queue drains, polling
  // loops, IoT reporters — producing the single-mode IT histograms of the
  // paper's Figure 12 that let the policy unload + pre-warm.
  if (trigger != TriggerType::kTimer && rate_per_day >= 144.0) {
    // High-rate traffic (average IAT <= 10 minutes) is steady: queue drains,
    // polling loops, IoT reporters.  The paper's Figure 12 shows the
    // single-mode IT histograms this produces.
    const double steadiness =
        std::min(1.0, std::log10(rate_per_day / 144.0));
    const double bursty_cut = mix.bursty * (0.72 + 0.23 * steadiness);
    mix.bursty -= bursty_cut;
    mix.periodic += 0.75 * bursty_cut;
    mix.poisson += 0.25 * bursty_cut;
  } else if (trigger != TriggerType::kTimer && rate_per_day >= 24.0) {
    // The 10-60 minute IAT band holds a moderate population of regular
    // callers (Figure 12 left column: IT modes at 20-30 minutes) — always
    // cold under short fixed keep-alives, ideal for pre-warming.
    const double bursty_cut = mix.bursty * 0.18;
    mix.bursty -= bursty_cut;
    mix.periodic += 0.8 * bursty_cut;
    mix.poisson += 0.2 * bursty_cut;
  }
  const double u = rng.NextDouble();
  if (u < mix.periodic) {
    // Timers snap their allocated rate to the nearest cron-like round period
    // (so the app's total rate still follows the Figure 5a distribution);
    // IoT-style periodic callers use their rate directly.
    const Duration period =
        trigger == TriggerType::kTimer
            ? SnapToTimerPeriod(rate_per_day)
            : Duration::FromMinutesF(
                  std::max(1.0, 1440.0 / std::max(rate_per_day, 1e-3)));
    // Timers fire exactly on schedule; external periodic callers drift a
    // little, spreading their IAT CVs over (0, ~0.3] as in Figure 6.
    // The power bias concentrates mass near zero jitter, so a visible
    // fraction of external periodic callers is indistinguishable from a
    // timer (CV ~ 0) while the rest spread over CV in (0, ~0.35).
    const double jitter =
        trigger == TriggerType::kTimer
            ? 0.0
            : config_.periodic_jitter_max *
                  std::pow(rng.NextDouble(), 1.5);
    return GeneratePeriodicArrivals(period, horizon, rng, jitter);
  }
  if (u < mix.periodic + mix.poisson) {
    return GeneratePoissonArrivals(rate_per_day, horizon, profile, rng);
  }
  // Bursty: vary the burst size and intra-burst spacing per function so the
  // CV spectrum is a spread rather than a spike.
  const double events_per_burst = rng.UniformDouble(3.0, 16.0);
  const Duration intra_iat =
      Duration::FromSecondsF(rng.UniformDouble(5.0, 120.0));
  return GenerateBurstyArrivals(rate_per_day, horizon, profile, rng,
                                events_per_burst, intra_iat);
}

ExecutionStats WorkloadGenerator::SampleExecutionStats(TriggerType trigger,
                                                       int64_t invocations,
                                                       Rng& rng) const {
  // Average execution time: log-normal in seconds, scaled per trigger.
  const double multiplier =
      config_.exec_median_multiplier[static_cast<size_t>(trigger)];
  const double avg_seconds =
      rng.NextLogNormal(config_.exec_lognormal_mu + std::log(multiplier),
                        config_.exec_lognormal_sigma);
  double avg_ms = std::clamp(avg_seconds * 1000.0, config_.exec_min_ms,
                             config_.exec_max_ms);
  // Per-invocation spread: minimum a uniform fraction below the average,
  // maximum a log-normal factor above it (50% of functions have max < ~3s
  // when the median average is ~0.7s).
  const double min_ms = avg_ms * rng.UniformDouble(0.2, 0.9);
  const double max_factor = 1.0 + rng.NextLogNormal(0.3, 0.8);
  const double max_ms =
      std::min(avg_ms * max_factor, config_.exec_max_ms * 4.0);
  ExecutionStats stats;
  stats.average_ms = avg_ms;
  stats.minimum_ms = min_ms;
  stats.maximum_ms = std::max(max_ms, avg_ms);
  stats.count = invocations;
  return stats;
}

MemoryStats WorkloadGenerator::SampleMemoryStats(Rng& rng) const {
  const BurrXiiDistribution burr(config_.memory_burr_c, config_.memory_burr_k,
                                 config_.memory_burr_lambda);
  const double average = std::clamp(burr.Sample(rng), config_.memory_min_mb,
                                    config_.memory_max_mb);
  MemoryStats stats;
  stats.average_mb = average;
  stats.percentile1_mb = average * rng.UniformDouble(0.70, 0.95);
  stats.maximum_mb =
      std::min(average * rng.UniformDouble(1.05, 1.6), config_.memory_max_mb * 2.0);
  stats.sample_count = 0;  // Filled by the caller from invocation volume.
  return stats;
}

void WorkloadGenerator::PreparePlans() {
  std::call_once(plans_once_, [this] {
    // Pass 1: sample each app's structure, then assign the sampled rates so
    // that apps whose trigger combos have high invocation intensity (Event,
    // Queue) preferentially receive the high rates.  The weighted-ranking-key
    // trick (rank by u^(1/w)) preserves the marginal rate distribution
    // exactly while inducing the correlation Figure 2 requires: 2.2% of
    // functions (Event) carry 24.7% of invocations only if Event apps sit in
    // the popularity tail.  Rates are sorted *globally*, which is why pass 1
    // always covers the whole population even when only one shard will be
    // materialised.
    plans_.reserve(static_cast<size_t>(config_.num_apps));
    std::vector<double> ranking_keys(static_cast<size_t>(config_.num_apps));
    std::vector<double> rates(static_cast<size_t>(config_.num_apps));
    for (int app_index = 0; app_index < config_.num_apps; ++app_index) {
      AppPlan plan{root_rng_.Fork(), {}, 0.0, false};
      plan.one_shot = plan.rng.Bernoulli(config_.frac_one_shot_apps);
      const int num_functions = SampleFunctionsPerApp(plan.rng);
      const std::vector<TriggerType> combo =
          SampleTriggerCombo(num_functions, plan.rng);
      plan.triggers = AssignFunctionTriggers(combo, num_functions, plan.rng);

      double intensity = 0.0;
      for (TriggerType trigger : combo) {
        intensity = std::max(
            intensity,
            config_.invocation_intensity_by_trigger[static_cast<size_t>(
                trigger)]);
      }
      // Clamp from below at neutral: the correlation only PULLS Event/Queue
      // apps into the popularity tail; it must not shove timer-/HTTP-only
      // apps to the rate floor.  Timer apps get a mild boost of their own —
      // real cron schedules cluster in the 1-60 minute band (95% of timer
      // functions fire at most once per minute, Section 3.2, i.e. the mode
      // sits just below that bound), so timer apps should concentrate
      // mid-range rather than follow the extreme low tail.
      intensity = std::max(intensity, 1.0);
      for (TriggerType trigger : combo) {
        if (trigger == TriggerType::kTimer) {
          intensity = std::max(intensity, 1.3);
          break;
        }
      }
      // Blend toward weight 1 (no correlation) per the config knob.
      const double weight =
          1.0 + config_.rate_intensity_correlation * (intensity - 1.0);
      const double u = plan.rng.NextDouble();
      ranking_keys[static_cast<size_t>(app_index)] =
          std::pow(std::max(u, 1e-300), 1.0 / std::max(weight, 1e-3));
      rates[static_cast<size_t>(app_index)] =
          rate_model_.SampleCappedDailyRate(plan.rng);
      plans_.push_back(std::move(plan));
    }
    // Highest keys get the highest rates.
    std::vector<size_t> order(plans_.size());
    for (size_t i = 0; i < order.size(); ++i) {
      order[i] = i;
    }
    std::sort(order.begin(), order.end(),
              [&ranking_keys](size_t a, size_t b) {
                return ranking_keys[a] > ranking_keys[b];
              });
    std::sort(rates.begin(), rates.end(), std::greater<>());
    for (size_t rank = 0; rank < order.size(); ++rank) {
      plans_[order[rank]].rate = rates[rank];
    }
  });
}

std::optional<AppTrace> WorkloadGenerator::MaterializeApp(
    int app_index) const {
  const AppPlan& plan = plans_[static_cast<size_t>(app_index)];
  // Pass 2 continues the app's pass-1 RNG stream from a *copy*, so the same
  // app materialises identically no matter how many times, in what order, or
  // on which thread shards are generated.
  Rng app_rng = plan.rng;
  AppTrace app;
  app.owner_id = MakeId("owner", app_index / 4);  // ~4 apps per owner.
  app.app_id = MakeId("app", app_index);

  if (plan.one_shot) {
    // A single invocation at a uniformly random instant.
    FunctionTrace function;
    function.function_id = MakeId("fn", 0);
    function.trigger = plan.triggers[0];
    function.invocations.emplace_back(static_cast<int64_t>(
        app_rng.NextDouble() *
        static_cast<double>(config_.Horizon().millis())));
    function.execution = SampleExecutionStats(function.trigger, 1, app_rng);
    app.functions.push_back(std::move(function));
    app.memory = SampleMemoryStats(app_rng);
    app.memory.sample_count = 1;
    return app;
  }

  const int num_functions = static_cast<int>(plan.triggers.size());
  const std::vector<TriggerType>& triggers = plan.triggers;
  const double app_rate = plan.rate;

  // Split the app's rate across functions: Zipf-ish rank weight times the
  // trigger intensity factor (Event/Queue functions carry more traffic).
  std::vector<double> weights(static_cast<size_t>(num_functions));
  for (int f = 0; f < num_functions; ++f) {
    const double rank_weight = 1.0 / static_cast<double>(f + 1);
    const double intensity =
        config_.invocation_intensity_by_trigger[static_cast<size_t>(
            triggers[static_cast<size_t>(f)])];
    weights[static_cast<size_t>(f)] = rank_weight * intensity;
  }
  double weight_total = 0.0;
  for (double w : weights) {
    weight_total += w;
  }

  const bool pattern_change =
      app_rng.Bernoulli(config_.pattern_change_fraction);
  for (int f = 0; f < num_functions; ++f) {
    FunctionTrace function;
    function.function_id = MakeId("fn", f);
    function.trigger = triggers[static_cast<size_t>(f)];
    const double function_rate =
        app_rate * weights[static_cast<size_t>(f)] / weight_total;
    function.invocations =
        pattern_change
            ? GenerateInvocationsWithPatternChange(function.trigger,
                                                   function_rate, app_rng)
            : GenerateInvocations(function.trigger, function_rate,
                                  config_.Horizon(), app_rng);
    if (function.invocations.empty()) {
      continue;  // Functions that never fired are absent from the dataset.
    }
    function.execution = SampleExecutionStats(
        function.trigger, function.InvocationCount(), app_rng);
    app.functions.push_back(std::move(function));
  }
  if (app.functions.empty()) {
    return std::nullopt;  // App never invoked during the horizon.
  }
  app.memory = SampleMemoryStats(app_rng);
  // Memory is sampled every 5 seconds while the app is resident; use the
  // invocation count as a cheap proxy for the sample volume.
  app.memory.sample_count = std::max<int64_t>(app.TotalInvocations(), 1);
  return app;
}

Trace WorkloadGenerator::Generate() {
  PreparePlans();
  Trace trace;
  trace.horizon = config_.Horizon();
  trace.apps.reserve(static_cast<size_t>(config_.num_apps));
  for (int app_index = 0; app_index < config_.num_apps; ++app_index) {
    if (std::optional<AppTrace> app = MaterializeApp(app_index)) {
      trace.apps.push_back(std::move(*app));
    }
  }
  // Flash-crowd overlay, after every app's own stream is materialised so
  // the per-app forks above are untouched.  Gated on the knob: a zero count
  // forks no RNG stream and leaves the trace bit-identical.  The fork comes
  // from a copy of the post-pass-1 root state so Generate() stays idempotent.
  if (config_.flash_crowd_count > 0) {
    FlashCrowdSpec spec;
    spec.count = config_.flash_crowd_count;
    spec.duration = config_.flash_crowd_duration;
    spec.fraction = config_.flash_crowd_fraction;
    spec.events_per_function = config_.flash_crowd_events_per_function;
    Rng root_copy = root_rng_;
    Rng crowd_rng = root_copy.Fork();
    ApplyFlashCrowd(trace, spec, crowd_rng);
  }

  trace.entities = EntityIndex::Build(trace);
  return trace;
}

Trace WorkloadGenerator::GenerateShard(int begin, int end) {
  FAAS_CHECK(begin >= 0 && begin <= end && end <= config_.num_apps)
      << "shard range [" << begin << ", " << end << ") out of [0, "
      << config_.num_apps << ")";
  FAAS_CHECK(config_.flash_crowd_count == 0)
      << "flash crowds are a global overlay; shard-addressable generation "
         "requires flash_crowd_count == 0";
  PreparePlans();
  Trace trace;
  trace.horizon = config_.Horizon();
  trace.apps.reserve(static_cast<size_t>(end - begin));
  for (int app_index = begin; app_index < end; ++app_index) {
    if (std::optional<AppTrace> app = MaterializeApp(app_index)) {
      trace.apps.push_back(std::move(*app));
    }
  }
  trace.entities = EntityIndex::Build(trace);
  return trace;
}

}  // namespace faas
