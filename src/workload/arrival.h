// Arrival-process generators for synthetic invocation streams.
//
// Three behaviours cover the IAT-variability spectrum the paper measures
// (Figure 6): periodic streams (timers and IoT-style callers, CV ~ 0),
// diurnal-modulated Poisson streams (human traffic, CV ~ 1), and bursty
// on/off-modulated Poisson streams (queue drains and event batches, CV > 1).
// The diurnal profile reproduces the platform-wide hourly shape of Figure 4:
// a constant baseline around 50% of peak plus daily and weekly swings.

#ifndef SRC_WORKLOAD_ARRIVAL_H_
#define SRC_WORKLOAD_ARRIVAL_H_

#include <vector>

#include "src/common/rng.h"
#include "src/common/time.h"
#include "src/workload/config.h"

namespace faas {

// Platform load multiplier over time, normalised so the PEAK is 1.0.
class DiurnalProfile {
 public:
  explicit DiurnalProfile(const GeneratorConfig& config);

  // Multiplier in (0, 1] at an instant (day 0 = Monday by convention; the
  // paper's trace starts Monday July 15th, 2019).
  double MultiplierAt(TimePoint t) const;

  double baseline() const { return baseline_; }

 private:
  double baseline_;
  double weekend_dampening_;
  double peak_hour_;
};

// Periodic arrivals: period `period`, phase uniform in [0, period), plus an
// optional per-event jitter (fraction of the period; 0 = strictly periodic).
std::vector<TimePoint> GeneratePeriodicArrivals(Duration period,
                                                Duration horizon, Rng& rng,
                                                double jitter_fraction = 0.0);

// Non-homogeneous Poisson arrivals via Lewis-Shedler thinning against the
// diurnal profile.  `mean_rate_per_day` is the time-averaged rate; the
// instantaneous rate is scaled so the average over the horizon matches.
std::vector<TimePoint> GeneratePoissonArrivals(double mean_rate_per_day,
                                               Duration horizon,
                                               const DiurnalProfile& profile,
                                               Rng& rng);

// Bursty arrivals: a Poisson cluster (Neyman-Scott) process.  Burst epochs
// arrive as a diurnal-modulated Poisson stream with rate
// `mean_rate_per_day / events_per_burst`; each burst carries
// 1 + Poisson(events_per_burst - 1) events whose intra-burst inter-arrival
// times are exponential with mean `intra_burst_iat`.  Crucially the
// intra-burst spacing is independent of how rare the app is — matching the
// production observation that even infrequently-invoked applications see
// tight clumps of invocations — and IAT CVs land well above 1.
std::vector<TimePoint> GenerateBurstyArrivals(
    double mean_rate_per_day, Duration horizon, const DiurnalProfile& profile,
    Rng& rng, double events_per_burst = 8.0,
    Duration intra_burst_iat = Duration::Seconds(45));

// Picks the timer period (a "cron-like" round value) whose firing rate best
// matches the requested daily rate.  95% of timer functions fire at most
// once per minute, so the grid starts at one minute.
Duration SnapToTimerPeriod(double desired_rate_per_day);

// Flash-crowd overlay: synchronized bursts stacked on top of an existing
// trace's arrival streams.  Each burst is an epoch at which a Bernoulli
// `fraction` of apps simultaneously receive a clump of extra invocations,
// front-loaded inside [epoch, epoch + duration) — the coordinated spike
// (marketing push, incident storm, thundering-herd retry) that saturates a
// cluster provisioned for the diurnal average and that the overload control
// plane exists to absorb.  A default spec (count == 0) leaves the trace
// untouched and draws no random numbers.
struct FlashCrowdSpec {
  // Number of burst epochs, placed uniformly in the middle 70% of the
  // horizon so warm-up and drain-out do not mask the spike.
  int count = 0;
  // Width of each burst window; extra arrivals decay exponentially with
  // mean duration/4, so most of the clump lands in the window's first half.
  Duration duration = Duration::Minutes(10);
  // Probability that a given app participates in a given burst.
  double fraction = 0.3;
  // Mean extra invocations per participating function per burst (Poisson).
  double events_per_function = 80.0;

  bool enabled() const { return count > 0; }
};

// Injects the spec's bursts into `trace` in place: participating functions
// gain sorted extra invocation instants and their execution/memory sample
// counts are refreshed.  Deterministic given (`trace`, `spec`, `rng` state);
// apps consume independent forked streams, so per-app draws do not depend
// on how many events earlier apps received.
void ApplyFlashCrowd(Trace& trace, const FlashCrowdSpec& spec, Rng& rng);

}  // namespace faas

#endif  // SRC_WORKLOAD_ARRIVAL_H_
