// Range-limited fixed-width histogram.
//
// This is the centerpiece data structure of the hybrid policy (Section 4.2):
// one instance per application tracks the distribution of idle times (ITs) in
// 1-minute bins up to a configurable range (default 4 hours = 240 bins).
// Values at or beyond the range are counted as out-of-bounds (OOB) and drive
// the ARIMA fallback.  The bin-count coefficient of variation, maintained
// online with Welford's algorithm, drives the representativeness check.

#ifndef SRC_STATS_HISTOGRAM_H_
#define SRC_STATS_HISTOGRAM_H_

#include <cstdint>
#include <vector>

#include "src/common/time.h"
#include "src/stats/welford.h"

namespace faas {

class RangeLimitedHistogram {
 public:
  // `bin_width` must be positive; `num_bins` >= 1.  The representable range
  // is [0, bin_width * num_bins).
  RangeLimitedHistogram(Duration bin_width, int num_bins);

  // Adds one observation.  Negative values clamp to the first bin; values at
  // or beyond the range increment the OOB counter instead of a bin.
  void Add(Duration value);

  Duration bin_width() const { return bin_width_; }
  int num_bins() const { return static_cast<int>(bins_.size()); }
  Duration range() const { return bin_width_ * static_cast<int64_t>(bins_.size()); }

  int64_t in_bounds_count() const { return in_bounds_count_; }
  int64_t oob_count() const { return oob_count_; }
  int64_t total_count() const { return in_bounds_count_ + oob_count_; }
  // Fraction of all observations that fell out of bounds (0 when empty).
  double OutOfBoundsFraction() const;

  const std::vector<int64_t>& bins() const { return bins_; }

  // Percentile of the in-bounds distribution, `pct` in [0, 100].
  // The paper rounds the head percentile down to the bin's lower edge and the
  // tail percentile up to the bin's upper edge, hence two accessors.
  // Both require in_bounds_count() > 0.
  Duration PercentileLowerEdge(double pct) const;
  Duration PercentileUpperEdge(double pct) const;

  // Coefficient of variation of the bin counts (population stddev / mean),
  // maintained online.  High CV = mass concentrated in few bins = the
  // histogram is representative; CV near 0 = flat/uninformative.
  double BinCountCv() const { return bin_count_stats_.CoefficientOfVariation(); }

  // Merges another histogram with identical geometry (used by the production
  // implementation's daily-histogram aggregation, Section 6).
  void MergeFrom(const RangeLimitedHistogram& other);

  void Reset();

  // Approximate in-memory footprint in bytes (the paper stresses the
  // per-application metadata cost: 240 integers = 960 bytes in production).
  size_t ApproximateSizeBytes() const;

 private:
  int BinIndexFor(Duration value) const;
  // Index of the first bin whose cumulative count reaches `target`.
  int CumulativeSearch(int64_t target) const;

  Duration bin_width_;
  std::vector<int64_t> bins_;
  int64_t in_bounds_count_ = 0;
  int64_t oob_count_ = 0;
  WelfordAccumulator bin_count_stats_;
};

}  // namespace faas

#endif  // SRC_STATS_HISTOGRAM_H_
