// Empirical cumulative distribution function.
//
// The characterization pipeline reports nearly everything as CDFs (Figures 1,
// 5, 6, 7, 8, 14, 16-18, 20).  Ecdf owns a sorted copy of its samples and
// answers F(x) and quantile queries; KsDistance is used by the tests and the
// benches to compare the synthetic workload against the paper's analytic
// fits.

#ifndef SRC_STATS_ECDF_H_
#define SRC_STATS_ECDF_H_

#include <functional>
#include <span>
#include <vector>

namespace faas {

class Ecdf {
 public:
  Ecdf() = default;
  explicit Ecdf(std::vector<double> samples);

  bool empty() const { return sorted_.empty(); }
  size_t size() const { return sorted_.size(); }

  // F(x) = fraction of samples <= x.
  double FractionAtOrBelow(double x) const;
  // Inverse: smallest sample value v with F(v) >= p, p in [0, 1].
  // Requires a non-empty ECDF.
  double Quantile(double p) const;

  double MinValue() const;
  double MaxValue() const;

  const std::vector<double>& sorted_samples() const { return sorted_; }

  // Evaluation grid for plotting: `points` (x, F(x)) pairs spanning the
  // sample range, geometric spacing when log_scale is set (useful for the
  // 8-orders-of-magnitude rate CDFs).
  std::vector<std::pair<double, double>> Curve(int points,
                                               bool log_scale = false) const;

 private:
  std::vector<double> sorted_;
};

// Two-sample Kolmogorov-Smirnov statistic: sup_x |F1(x) - F2(x)|.
double KsDistance(const Ecdf& a, const Ecdf& b);

// One-sample KS statistic against a theoretical CDF.
double KsDistance(const Ecdf& a, const std::function<double(double)>& cdf);

}  // namespace faas

#endif  // SRC_STATS_ECDF_H_
