#include "src/stats/welford.h"

#include <cmath>

namespace faas {

void WelfordAccumulator::Add(double value) {
  ++count_;
  const double delta = value - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (value - mean_);
}

void WelfordAccumulator::Replace(double old_value, double new_value) {
  // Derivation: with fixed n, mean' = mean + (new - old)/n and
  // M2' = M2 + (new - old) * (new - mean' + old - mean).
  if (count_ == 0) {
    return;
  }
  const double n = static_cast<double>(count_);
  const double delta = new_value - old_value;
  const double new_mean = mean_ + delta / n;
  m2_ += delta * (new_value - new_mean + old_value - mean_);
  mean_ = new_mean;
  if (m2_ < 0.0) {
    m2_ = 0.0;  // Guard against tiny negative drift from cancellation.
  }
}

double WelfordAccumulator::PopulationVariance() const {
  return count_ > 0 ? m2_ / static_cast<double>(count_) : 0.0;
}

double WelfordAccumulator::SampleVariance() const {
  return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
}

double WelfordAccumulator::PopulationStdDev() const {
  return std::sqrt(PopulationVariance());
}

double WelfordAccumulator::SampleStdDev() const {
  return std::sqrt(SampleVariance());
}

double WelfordAccumulator::CoefficientOfVariation() const {
  if (count_ == 0 || mean_ == 0.0) {
    return 0.0;
  }
  return PopulationStdDev() / mean_;
}

void WelfordAccumulator::Reset() {
  count_ = 0;
  mean_ = 0.0;
  m2_ = 0.0;
}

}  // namespace faas
