#include "src/stats/ecdf.h"

#include <algorithm>
#include <cmath>

#include "src/common/logging.h"

namespace faas {

Ecdf::Ecdf(std::vector<double> samples) : sorted_(std::move(samples)) {
  std::sort(sorted_.begin(), sorted_.end());
}

double Ecdf::FractionAtOrBelow(double x) const {
  if (sorted_.empty()) {
    return 0.0;
  }
  const auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
  return static_cast<double>(it - sorted_.begin()) /
         static_cast<double>(sorted_.size());
}

double Ecdf::Quantile(double p) const {
  FAAS_CHECK(!sorted_.empty()) << "quantile of empty ECDF";
  const double clamped = std::clamp(p, 0.0, 1.0);
  size_t rank = static_cast<size_t>(
      std::ceil(clamped * static_cast<double>(sorted_.size())));
  if (rank == 0) {
    rank = 1;
  }
  return sorted_[rank - 1];
}

double Ecdf::MinValue() const {
  FAAS_CHECK(!sorted_.empty()) << "min of empty ECDF";
  return sorted_.front();
}

double Ecdf::MaxValue() const {
  FAAS_CHECK(!sorted_.empty()) << "max of empty ECDF";
  return sorted_.back();
}

std::vector<std::pair<double, double>> Ecdf::Curve(int points,
                                                   bool log_scale) const {
  std::vector<std::pair<double, double>> curve;
  if (sorted_.empty() || points < 2) {
    return curve;
  }
  curve.reserve(static_cast<size_t>(points));
  const double lo = sorted_.front();
  const double hi = sorted_.back();
  for (int i = 0; i < points; ++i) {
    const double t = static_cast<double>(i) / static_cast<double>(points - 1);
    double x;
    if (log_scale && lo > 0.0 && hi > lo) {
      x = lo * std::pow(hi / lo, t);
    } else {
      x = lo + (hi - lo) * t;
    }
    curve.emplace_back(x, FractionAtOrBelow(x));
  }
  return curve;
}

double KsDistance(const Ecdf& a, const Ecdf& b) {
  FAAS_CHECK(!a.empty() && !b.empty()) << "KS of empty ECDF";
  // Walk the merged sorted samples; the supremum is attained at a sample.
  const auto& sa = a.sorted_samples();
  const auto& sb = b.sorted_samples();
  double max_diff = 0.0;
  size_t ia = 0;
  size_t ib = 0;
  const double na = static_cast<double>(sa.size());
  const double nb = static_cast<double>(sb.size());
  while (ia < sa.size() && ib < sb.size()) {
    const double x = std::min(sa[ia], sb[ib]);
    while (ia < sa.size() && sa[ia] <= x) {
      ++ia;
    }
    while (ib < sb.size() && sb[ib] <= x) {
      ++ib;
    }
    const double diff =
        std::fabs(static_cast<double>(ia) / na - static_cast<double>(ib) / nb);
    max_diff = std::max(max_diff, diff);
  }
  return max_diff;
}

double KsDistance(const Ecdf& a, const std::function<double(double)>& cdf) {
  FAAS_CHECK(!a.empty()) << "KS of empty ECDF";
  const auto& samples = a.sorted_samples();
  const double n = static_cast<double>(samples.size());
  double max_diff = 0.0;
  for (size_t i = 0; i < samples.size(); ++i) {
    const double theoretical = cdf(samples[i]);
    const double below = static_cast<double>(i) / n;
    const double at_or_below = static_cast<double>(i + 1) / n;
    max_diff = std::max(max_diff, std::fabs(theoretical - below));
    max_diff = std::max(max_diff, std::fabs(theoretical - at_or_below));
  }
  return max_diff;
}

}  // namespace faas
