#include "src/stats/fitting.h"

#include <cmath>
#include <limits>
#include <vector>

#include "src/common/logging.h"
#include "src/stats/descriptive.h"
#include "src/stats/nelder_mead.h"

namespace faas {

namespace {

std::vector<double> PositiveSamples(std::span<const double> samples) {
  std::vector<double> positive;
  positive.reserve(samples.size());
  for (double s : samples) {
    if (s > 0.0) {
      positive.push_back(s);
    }
  }
  return positive;
}

}  // namespace

LogNormalFit FitLogNormalMle(std::span<const double> samples) {
  const std::vector<double> positive = PositiveSamples(samples);
  FAAS_CHECK(positive.size() >= 2) << "log-normal MLE needs >= 2 positive samples";

  const double n = static_cast<double>(positive.size());
  double log_sum = 0.0;
  for (double s : positive) {
    log_sum += std::log(s);
  }
  const double mu = log_sum / n;
  double sq = 0.0;
  for (double s : positive) {
    const double d = std::log(s) - mu;
    sq += d * d;
  }
  // MLE uses the population (1/n) variance of the logs.
  const double sigma = std::sqrt(sq / n);

  LogNormalFit fit;
  fit.mu = mu;
  fit.sigma = sigma > 0.0 ? sigma : 1e-9;
  const LogNormalDistribution dist(fit.mu, fit.sigma);
  double ll = 0.0;
  for (double s : positive) {
    ll += std::log(dist.Pdf(s));
  }
  fit.log_likelihood = ll;
  return fit;
}

BurrXiiFit FitBurrXiiMle(std::span<const double> samples) {
  const std::vector<double> positive = PositiveSamples(samples);
  FAAS_CHECK(positive.size() >= 3) << "Burr MLE needs >= 3 positive samples";
  const double median = Median(positive);
  return FitBurrXiiMle(samples, BurrXiiDistribution(2.0, 1.0, median));
}

BurrXiiFit FitBurrXiiMle(std::span<const double> samples,
                         const BurrXiiDistribution& initial) {
  const std::vector<double> positive = PositiveSamples(samples);
  FAAS_CHECK(positive.size() >= 3) << "Burr MLE needs >= 3 positive samples";

  // Optimise in log-space so c, k, lambda stay positive.
  const auto negative_ll = [&positive](const std::vector<double>& params) {
    const double c = std::exp(params[0]);
    const double k = std::exp(params[1]);
    const double lambda = std::exp(params[2]);
    if (!std::isfinite(c) || !std::isfinite(k) || !std::isfinite(lambda) ||
        c > 1e4 || k > 1e4 || lambda > 1e12) {
      return std::numeric_limits<double>::infinity();
    }
    // log pdf = log c + log k - log lambda + (c-1) log(x/lambda)
    //           - (k+1) log(1 + (x/lambda)^c)
    double ll = 0.0;
    const double log_ck_over_lambda =
        std::log(c) + std::log(k) - std::log(lambda);
    for (double x : positive) {
      const double log_t = std::log(x / lambda);
      const double t_pow_c = std::exp(c * log_t);
      if (!std::isfinite(t_pow_c)) {
        return std::numeric_limits<double>::infinity();
      }
      ll += log_ck_over_lambda + (c - 1.0) * log_t -
            (k + 1.0) * std::log1p(t_pow_c);
    }
    if (!std::isfinite(ll)) {
      return std::numeric_limits<double>::infinity();
    }
    return -ll;
  };

  NelderMeadOptions options;
  options.max_iterations = 5000;
  options.relative_step = 0.1;
  const std::vector<double> start = {std::log(initial.c()),
                                     std::log(initial.k()),
                                     std::log(initial.lambda())};
  const NelderMeadResult opt = NelderMeadMinimize(negative_ll, start, options);

  BurrXiiFit fit;
  fit.c = std::exp(opt.x[0]);
  fit.k = std::exp(opt.x[1]);
  fit.lambda = std::exp(opt.x[2]);
  fit.log_likelihood = -opt.f;
  fit.converged = opt.converged;
  return fit;
}

double FitExponentialRateMle(std::span<const double> samples) {
  const std::vector<double> positive = PositiveSamples(samples);
  FAAS_CHECK(!positive.empty()) << "exponential MLE needs positive samples";
  return 1.0 / Mean(positive);
}

}  // namespace faas
