// Analytic probability distributions.
//
// The paper fits two families to its workload: a log-normal to function
// execution times (log mean -0.38, sigma 2.36; Figure 7) and a Burr XII to
// per-application allocated memory (c = 11.652, k = 0.221, lambda = 107.083;
// Figure 8).  The synthetic workload generator samples from these, plus Zipf
// for popularity skew and exponential/Pareto for arrival modelling.

#ifndef SRC_STATS_DISTRIBUTIONS_H_
#define SRC_STATS_DISTRIBUTIONS_H_

#include <cstdint>
#include <vector>

#include "src/common/rng.h"

namespace faas {

// Phi(x): standard normal CDF.
double StandardNormalCdf(double x);
// Phi^-1(p): Acklam's rational approximation (|relative error| < 1.15e-9).
double StandardNormalQuantile(double p);

// X = exp(N(mu, sigma^2)).
class LogNormalDistribution {
 public:
  LogNormalDistribution(double mu, double sigma);

  double mu() const { return mu_; }
  double sigma() const { return sigma_; }

  double Pdf(double x) const;
  double Cdf(double x) const;
  double Quantile(double p) const;
  double Mean() const;
  double Median() const;
  double Sample(Rng& rng) const;

 private:
  double mu_;
  double sigma_;
};

// Burr type XII with shape parameters c, k and scale lambda:
//   CDF(x) = 1 - (1 + (x/lambda)^c)^(-k).
class BurrXiiDistribution {
 public:
  BurrXiiDistribution(double c, double k, double lambda);

  double c() const { return c_; }
  double k() const { return k_; }
  double lambda() const { return lambda_; }

  double Pdf(double x) const;
  double Cdf(double x) const;
  double Quantile(double p) const;
  double Median() const;
  double Sample(Rng& rng) const;

 private:
  double c_;
  double k_;
  double lambda_;
};

// Zipf over ranks {1..n} with exponent s: P(rank) proportional to rank^-s.
// Sampling precomputes the cumulative mass (O(n) memory, O(log n) draw),
// which is ample for app-population sizes in the tens of thousands.
class ZipfDistribution {
 public:
  ZipfDistribution(uint64_t n, double s);

  uint64_t n() const { return n_; }
  double s() const { return s_; }

  // Probability mass of a given rank in [1, n].
  double Pmf(uint64_t rank) const;
  // Samples a rank in [1, n].
  uint64_t Sample(Rng& rng) const;

 private:
  uint64_t n_;
  double s_;
  std::vector<double> cumulative_;
};

class ExponentialDistribution {
 public:
  explicit ExponentialDistribution(double rate);

  double rate() const { return rate_; }
  double Pdf(double x) const;
  double Cdf(double x) const;
  double Quantile(double p) const;
  double Mean() const { return 1.0 / rate_; }
  double Sample(Rng& rng) const;

 private:
  double rate_;
};

// Pareto (type I): CDF(x) = 1 - (xm/x)^alpha for x >= xm.
class ParetoDistribution {
 public:
  ParetoDistribution(double xm, double alpha);

  double xm() const { return xm_; }
  double alpha() const { return alpha_; }
  double Pdf(double x) const;
  double Cdf(double x) const;
  double Quantile(double p) const;
  double Sample(Rng& rng) const;

 private:
  double xm_;
  double alpha_;
};

}  // namespace faas

#endif  // SRC_STATS_DISTRIBUTIONS_H_
