// Descriptive statistics over in-memory samples.
//
// Batch helpers used throughout the characterization pipeline and the
// benchmark harnesses.  Percentiles use linear interpolation between order
// statistics (the "type 7" estimator, matching numpy's default) so the
// reproduced CDF anchor points are comparable to the paper's plots.

#ifndef SRC_STATS_DESCRIPTIVE_H_
#define SRC_STATS_DESCRIPTIVE_H_

#include <span>
#include <vector>

namespace faas {

double Mean(std::span<const double> values);
// Sample standard deviation (n-1 denominator); 0 for fewer than 2 samples.
double SampleStdDev(std::span<const double> values);
// Coefficient of variation = sample stddev / mean; 0 when the mean is 0.
double CoefficientOfVariation(std::span<const double> values);

// Percentile in [0, 100] of an UNSORTED input (copies and sorts internally).
// Requires a non-empty input.
double Percentile(std::span<const double> values, double pct);
// Percentile of an already ascending-sorted input (no copy).
double PercentileSorted(std::span<const double> sorted, double pct);

double Min(std::span<const double> values);
double Max(std::span<const double> values);
double Median(std::span<const double> values);

// A (value, weight) sample; the paper's duration/memory traces expose
// per-interval averages with sample counts, which are treated as `count`
// replicas of the average when computing percentiles (Section 3.1).
struct WeightedSample {
  double value = 0.0;
  double weight = 0.0;
};

// Weighted percentile: conceptually replicates each value `weight` times.
// Requires a non-empty input with positive total weight.
double WeightedPercentile(std::vector<WeightedSample> samples, double pct);

// Weighted mean.
double WeightedMean(std::span<const WeightedSample> samples);

}  // namespace faas

#endif  // SRC_STATS_DESCRIPTIVE_H_
