#include "src/stats/distributions.h"

#include <algorithm>
#include <cmath>

#include "src/common/logging.h"

namespace faas {

double StandardNormalCdf(double x) {
  return 0.5 * std::erfc(-x / std::sqrt(2.0));
}

double StandardNormalQuantile(double p) {
  FAAS_CHECK(p > 0.0 && p < 1.0) << "normal quantile needs p in (0,1), got " << p;
  // Peter Acklam's rational approximation with the usual three regions.
  static constexpr double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                                 -2.759285104469687e+02, 1.383577518672690e+02,
                                 -3.066479806614716e+01, 2.506628277459239e+00};
  static constexpr double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                                 -1.556989798598866e+02, 6.680131188771972e+01,
                                 -1.328068155288572e+01};
  static constexpr double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                                 -2.400758277161838e+00, -2.549732539343734e+00,
                                 4.374664141464968e+00,  2.938163982698783e+00};
  static constexpr double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                                 2.445134137142996e+00, 3.754408661907416e+00};
  static constexpr double p_low = 0.02425;
  static constexpr double p_high = 1.0 - p_low;

  if (p < p_low) {
    const double q = std::sqrt(-2.0 * std::log(p));
    return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  if (p <= p_high) {
    const double q = p - 0.5;
    const double r = q * q;
    return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) *
           q /
           (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
  }
  const double q = std::sqrt(-2.0 * std::log(1.0 - p));
  return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
         ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
}

LogNormalDistribution::LogNormalDistribution(double mu, double sigma)
    : mu_(mu), sigma_(sigma) {
  FAAS_CHECK(sigma > 0.0) << "log-normal sigma must be positive";
}

double LogNormalDistribution::Pdf(double x) const {
  if (x <= 0.0) {
    return 0.0;
  }
  const double z = (std::log(x) - mu_) / sigma_;
  return std::exp(-0.5 * z * z) / (x * sigma_ * std::sqrt(2.0 * M_PI));
}

double LogNormalDistribution::Cdf(double x) const {
  if (x <= 0.0) {
    return 0.0;
  }
  return StandardNormalCdf((std::log(x) - mu_) / sigma_);
}

double LogNormalDistribution::Quantile(double p) const {
  return std::exp(mu_ + sigma_ * StandardNormalQuantile(p));
}

double LogNormalDistribution::Mean() const {
  return std::exp(mu_ + 0.5 * sigma_ * sigma_);
}

double LogNormalDistribution::Median() const { return std::exp(mu_); }

double LogNormalDistribution::Sample(Rng& rng) const {
  return rng.NextLogNormal(mu_, sigma_);
}

BurrXiiDistribution::BurrXiiDistribution(double c, double k, double lambda)
    : c_(c), k_(k), lambda_(lambda) {
  FAAS_CHECK(c > 0.0 && k > 0.0 && lambda > 0.0)
      << "Burr XII parameters must be positive";
}

double BurrXiiDistribution::Pdf(double x) const {
  if (x <= 0.0) {
    return 0.0;
  }
  const double t = x / lambda_;
  return (c_ * k_ / lambda_) * std::pow(t, c_ - 1.0) *
         std::pow(1.0 + std::pow(t, c_), -k_ - 1.0);
}

double BurrXiiDistribution::Cdf(double x) const {
  if (x <= 0.0) {
    return 0.0;
  }
  const double t = x / lambda_;
  return 1.0 - std::pow(1.0 + std::pow(t, c_), -k_);
}

double BurrXiiDistribution::Quantile(double p) const {
  FAAS_CHECK(p >= 0.0 && p < 1.0) << "Burr quantile needs p in [0,1)";
  return lambda_ * std::pow(std::pow(1.0 - p, -1.0 / k_) - 1.0, 1.0 / c_);
}

double BurrXiiDistribution::Median() const { return Quantile(0.5); }

double BurrXiiDistribution::Sample(Rng& rng) const {
  return Quantile(rng.NextDouble());
}

ZipfDistribution::ZipfDistribution(uint64_t n, double s) : n_(n), s_(s) {
  FAAS_CHECK(n >= 1) << "Zipf needs at least one rank";
  cumulative_.reserve(n);
  double total = 0.0;
  for (uint64_t rank = 1; rank <= n; ++rank) {
    total += std::pow(static_cast<double>(rank), -s_);
    cumulative_.push_back(total);
  }
  for (double& c : cumulative_) {
    c /= total;
  }
}

double ZipfDistribution::Pmf(uint64_t rank) const {
  FAAS_CHECK(rank >= 1 && rank <= n_) << "Zipf rank out of range";
  const size_t i = static_cast<size_t>(rank - 1);
  const double below = i == 0 ? 0.0 : cumulative_[i - 1];
  return cumulative_[i] - below;
}

uint64_t ZipfDistribution::Sample(Rng& rng) const {
  const double u = rng.NextDouble();
  const auto it = std::lower_bound(cumulative_.begin(), cumulative_.end(), u);
  return static_cast<uint64_t>(it - cumulative_.begin()) + 1;
}

ExponentialDistribution::ExponentialDistribution(double rate) : rate_(rate) {
  FAAS_CHECK(rate > 0.0) << "exponential rate must be positive";
}

double ExponentialDistribution::Pdf(double x) const {
  return x < 0.0 ? 0.0 : rate_ * std::exp(-rate_ * x);
}

double ExponentialDistribution::Cdf(double x) const {
  return x < 0.0 ? 0.0 : 1.0 - std::exp(-rate_ * x);
}

double ExponentialDistribution::Quantile(double p) const {
  FAAS_CHECK(p >= 0.0 && p < 1.0) << "exponential quantile needs p in [0,1)";
  return -std::log(1.0 - p) / rate_;
}

double ExponentialDistribution::Sample(Rng& rng) const {
  return rng.NextExponential(rate_);
}

ParetoDistribution::ParetoDistribution(double xm, double alpha)
    : xm_(xm), alpha_(alpha) {
  FAAS_CHECK(xm > 0.0 && alpha > 0.0) << "Pareto parameters must be positive";
}

double ParetoDistribution::Pdf(double x) const {
  if (x < xm_) {
    return 0.0;
  }
  return alpha_ * std::pow(xm_, alpha_) / std::pow(x, alpha_ + 1.0);
}

double ParetoDistribution::Cdf(double x) const {
  if (x < xm_) {
    return 0.0;
  }
  return 1.0 - std::pow(xm_ / x, alpha_);
}

double ParetoDistribution::Quantile(double p) const {
  FAAS_CHECK(p >= 0.0 && p < 1.0) << "Pareto quantile needs p in [0,1)";
  return xm_ / std::pow(1.0 - p, 1.0 / alpha_);
}

double ParetoDistribution::Sample(Rng& rng) const {
  return Quantile(rng.NextDouble());
}

}  // namespace faas
