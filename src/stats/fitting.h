// Distribution fitting (maximum likelihood).
//
// Figure 7 fits a log-normal to average execution times via MLE; Figure 8
// fits a Burr XII to allocated memory.  The log-normal MLE is closed form;
// the Burr fit maximises the log-likelihood with Nelder-Mead in a
// log-parameterisation that keeps all three parameters positive.

#ifndef SRC_STATS_FITTING_H_
#define SRC_STATS_FITTING_H_

#include <span>

#include "src/stats/distributions.h"

namespace faas {

struct LogNormalFit {
  double mu = 0.0;
  double sigma = 1.0;
  double log_likelihood = 0.0;

  LogNormalDistribution ToDistribution() const {
    return LogNormalDistribution(mu, sigma);
  }
};

// MLE over strictly positive samples (non-positive samples are skipped; at
// least two positive samples are required).
LogNormalFit FitLogNormalMle(std::span<const double> samples);

struct BurrXiiFit {
  double c = 1.0;
  double k = 1.0;
  double lambda = 1.0;
  double log_likelihood = 0.0;
  bool converged = false;

  BurrXiiDistribution ToDistribution() const {
    return BurrXiiDistribution(c, k, lambda);
  }
};

// MLE via Nelder-Mead; non-positive samples are skipped.  `initial` seeds the
// search (a decent default is c=2, k=1, lambda=median(samples)).
BurrXiiFit FitBurrXiiMle(std::span<const double> samples);
BurrXiiFit FitBurrXiiMle(std::span<const double> samples,
                         const BurrXiiDistribution& initial);

// Closed-form exponential MLE (rate = 1/mean) over positive samples.
double FitExponentialRateMle(std::span<const double> samples);

}  // namespace faas

#endif  // SRC_STATS_FITTING_H_
