// P-square (P²) streaming quantile estimator (Jain & Chlamtac, 1985).
//
// Estimates a single quantile of a stream in O(1) memory — five markers —
// without storing observations.  The cluster simulator uses it to report
// tail latencies on replays too large to buffer, and it is generally useful
// wherever the histogram's fixed range does not fit (latencies span six
// orders of magnitude).

#ifndef SRC_STATS_P2_QUANTILE_H_
#define SRC_STATS_P2_QUANTILE_H_

#include <array>
#include <cstdint>

namespace faas {

class P2Quantile {
 public:
  // `quantile` in (0, 1), e.g. 0.99 for the p99.
  explicit P2Quantile(double quantile);

  void Add(double value);

  int64_t count() const { return count_; }
  // Current estimate; exact while fewer than 5 observations were seen.
  // Requires count() > 0.
  double Value() const;

 private:
  void AdjustMarkers();
  // Piecewise-parabolic (P²) update of marker `i`'s height toward the
  // desired position, falling back to linear when the parabola would leave
  // the bracket.
  void MoveMarker(int i, int direction);

  double quantile_;
  int64_t count_ = 0;
  // Marker heights (estimates) and integer positions, plus desired
  // positions and their per-observation increments.
  std::array<double, 5> heights_ = {};
  std::array<double, 5> positions_ = {};
  std::array<double, 5> desired_ = {};
  std::array<double, 5> desired_increment_ = {};
};

}  // namespace faas

#endif  // SRC_STATS_P2_QUANTILE_H_
