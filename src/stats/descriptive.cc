#include "src/stats/descriptive.h"

#include <algorithm>
#include <cmath>

#include "src/common/logging.h"

namespace faas {

double Mean(std::span<const double> values) {
  if (values.empty()) {
    return 0.0;
  }
  double sum = 0.0;
  for (double v : values) {
    sum += v;
  }
  return sum / static_cast<double>(values.size());
}

double SampleStdDev(std::span<const double> values) {
  if (values.size() < 2) {
    return 0.0;
  }
  const double mean = Mean(values);
  double m2 = 0.0;
  for (double v : values) {
    const double d = v - mean;
    m2 += d * d;
  }
  return std::sqrt(m2 / static_cast<double>(values.size() - 1));
}

double CoefficientOfVariation(std::span<const double> values) {
  const double mean = Mean(values);
  if (mean == 0.0) {
    return 0.0;
  }
  return SampleStdDev(values) / mean;
}

double PercentileSorted(std::span<const double> sorted, double pct) {
  FAAS_CHECK(!sorted.empty()) << "percentile of empty span";
  if (sorted.size() == 1) {
    return sorted[0];
  }
  const double clamped = std::clamp(pct, 0.0, 100.0);
  const double rank = clamped / 100.0 * static_cast<double>(sorted.size() - 1);
  const size_t lo = static_cast<size_t>(std::floor(rank));
  const size_t hi = static_cast<size_t>(std::ceil(rank));
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

double Percentile(std::span<const double> values, double pct) {
  FAAS_CHECK(!values.empty()) << "percentile of empty span";
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  return PercentileSorted(sorted, pct);
}

double Min(std::span<const double> values) {
  FAAS_CHECK(!values.empty()) << "min of empty span";
  return *std::min_element(values.begin(), values.end());
}

double Max(std::span<const double> values) {
  FAAS_CHECK(!values.empty()) << "max of empty span";
  return *std::max_element(values.begin(), values.end());
}

double Median(std::span<const double> values) {
  return Percentile(values, 50.0);
}

double WeightedPercentile(std::vector<WeightedSample> samples, double pct) {
  FAAS_CHECK(!samples.empty()) << "weighted percentile of empty input";
  std::sort(samples.begin(), samples.end(),
            [](const WeightedSample& a, const WeightedSample& b) {
              return a.value < b.value;
            });
  double total = 0.0;
  for (const auto& s : samples) {
    FAAS_CHECK(s.weight >= 0.0) << "negative weight";
    total += s.weight;
  }
  FAAS_CHECK(total > 0.0) << "non-positive total weight";
  const double target = std::clamp(pct, 0.0, 100.0) / 100.0 * total;
  double cumulative = 0.0;
  for (const auto& s : samples) {
    cumulative += s.weight;
    if (cumulative >= target) {
      return s.value;
    }
  }
  return samples.back().value;
}

double WeightedMean(std::span<const WeightedSample> samples) {
  double total_weight = 0.0;
  double weighted_sum = 0.0;
  for (const auto& s : samples) {
    total_weight += s.weight;
    weighted_sum += s.value * s.weight;
  }
  if (total_weight == 0.0) {
    return 0.0;
  }
  return weighted_sum / total_weight;
}

}  // namespace faas
