// Derivative-free Nelder-Mead simplex minimiser.
//
// Used for maximum-likelihood fits with no closed form (Burr XII memory fit,
// Figure 8) and for the conditional-sum-of-squares refinement inside the
// ARIMA fitter.  The implementation is the standard adaptive simplex with
// reflection / expansion / contraction / shrink steps.

#ifndef SRC_STATS_NELDER_MEAD_H_
#define SRC_STATS_NELDER_MEAD_H_

#include <functional>
#include <vector>

namespace faas {

struct NelderMeadOptions {
  int max_iterations = 2000;
  // Convergence: stop when the simplex's function-value spread falls below
  // `f_tolerance` AND its coordinate diameter falls below `x_tolerance`
  // (both required, so a simplex straddling the optimum keeps contracting).
  double f_tolerance = 1e-10;
  double x_tolerance = 1e-7;
  // Initial simplex edge length relative to each coordinate (absolute step
  // `initial_step` is used for coordinates near zero).
  double relative_step = 0.05;
  double initial_step = 0.00025;
};

struct NelderMeadResult {
  std::vector<double> x;
  double f = 0.0;
  int iterations = 0;
  bool converged = false;
};

// Minimises `objective` starting from `initial`.  The objective may return
// +infinity to reject infeasible points (used to enforce parameter bounds).
NelderMeadResult NelderMeadMinimize(
    const std::function<double(const std::vector<double>&)>& objective,
    const std::vector<double>& initial, const NelderMeadOptions& options = {});

}  // namespace faas

#endif  // SRC_STATS_NELDER_MEAD_H_
