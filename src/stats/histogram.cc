#include "src/stats/histogram.h"

#include <cmath>

#include "src/common/logging.h"

namespace faas {

RangeLimitedHistogram::RangeLimitedHistogram(Duration bin_width, int num_bins)
    : bin_width_(bin_width), bins_(static_cast<size_t>(num_bins), 0) {
  FAAS_CHECK(bin_width.millis() > 0) << "bin width must be positive";
  FAAS_CHECK(num_bins >= 1) << "need at least one bin";
  // Seed the Welford population with the (all-zero) bin counts so that
  // Replace() keeps it consistent from the first Add().
  for (int i = 0; i < num_bins; ++i) {
    bin_count_stats_.Add(0.0);
  }
}

int RangeLimitedHistogram::BinIndexFor(Duration value) const {
  if (value.IsNegative()) {
    return 0;
  }
  const int64_t index = value.millis() / bin_width_.millis();
  if (index >= static_cast<int64_t>(bins_.size())) {
    return -1;  // Out of bounds.
  }
  return static_cast<int>(index);
}

void RangeLimitedHistogram::Add(Duration value) {
  const int index = BinIndexFor(value);
  if (index < 0) {
    ++oob_count_;
    return;
  }
  const int64_t old_count = bins_[static_cast<size_t>(index)];
  bins_[static_cast<size_t>(index)] = old_count + 1;
  ++in_bounds_count_;
  bin_count_stats_.Replace(static_cast<double>(old_count),
                           static_cast<double>(old_count + 1));
}

double RangeLimitedHistogram::OutOfBoundsFraction() const {
  const int64_t total = total_count();
  if (total == 0) {
    return 0.0;
  }
  return static_cast<double>(oob_count_) / static_cast<double>(total);
}

int RangeLimitedHistogram::CumulativeSearch(int64_t target) const {
  int64_t cumulative = 0;
  for (size_t i = 0; i < bins_.size(); ++i) {
    cumulative += bins_[i];
    if (cumulative >= target) {
      return static_cast<int>(i);
    }
  }
  return static_cast<int>(bins_.size()) - 1;
}

Duration RangeLimitedHistogram::PercentileLowerEdge(double pct) const {
  FAAS_CHECK(in_bounds_count_ > 0) << "percentile of empty histogram";
  // Smallest bin index at which the cumulative fraction reaches pct/100.
  const double fraction = pct / 100.0;
  int64_t target = static_cast<int64_t>(
      std::ceil(fraction * static_cast<double>(in_bounds_count_)));
  if (target < 1) {
    target = 1;
  }
  const int bin = CumulativeSearch(target);
  return bin_width_ * static_cast<int64_t>(bin);
}

Duration RangeLimitedHistogram::PercentileUpperEdge(double pct) const {
  FAAS_CHECK(in_bounds_count_ > 0) << "percentile of empty histogram";
  const double fraction = pct / 100.0;
  int64_t target = static_cast<int64_t>(
      std::ceil(fraction * static_cast<double>(in_bounds_count_)));
  if (target < 1) {
    target = 1;
  }
  const int bin = CumulativeSearch(target);
  return bin_width_ * static_cast<int64_t>(bin + 1);
}

void RangeLimitedHistogram::MergeFrom(const RangeLimitedHistogram& other) {
  FAAS_CHECK(other.bin_width_ == bin_width_ && other.bins_.size() == bins_.size())
      << "histogram geometry mismatch";
  for (size_t i = 0; i < bins_.size(); ++i) {
    const int64_t old_count = bins_[i];
    bins_[i] += other.bins_[i];
    bin_count_stats_.Replace(static_cast<double>(old_count),
                             static_cast<double>(bins_[i]));
  }
  in_bounds_count_ += other.in_bounds_count_;
  oob_count_ += other.oob_count_;
}

void RangeLimitedHistogram::Reset() {
  std::fill(bins_.begin(), bins_.end(), 0);
  in_bounds_count_ = 0;
  oob_count_ = 0;
  bin_count_stats_.Reset();
  for (size_t i = 0; i < bins_.size(); ++i) {
    bin_count_stats_.Add(0.0);
  }
}

size_t RangeLimitedHistogram::ApproximateSizeBytes() const {
  return sizeof(*this) + bins_.capacity() * sizeof(int64_t);
}

}  // namespace faas
