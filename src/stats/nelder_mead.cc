#include "src/stats/nelder_mead.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "src/common/logging.h"

namespace faas {

namespace {

// One simplex vertex and its objective value.
struct Vertex {
  std::vector<double> x;
  double f = 0.0;
};

std::vector<double> Centroid(const std::vector<Vertex>& simplex,
                             size_t exclude) {
  const size_t dim = simplex[0].x.size();
  std::vector<double> centroid(dim, 0.0);
  for (size_t i = 0; i < simplex.size(); ++i) {
    if (i == exclude) {
      continue;
    }
    for (size_t d = 0; d < dim; ++d) {
      centroid[d] += simplex[i].x[d];
    }
  }
  const double inv = 1.0 / static_cast<double>(simplex.size() - 1);
  for (double& c : centroid) {
    c *= inv;
  }
  return centroid;
}

std::vector<double> AffineCombination(const std::vector<double>& base,
                                      const std::vector<double>& direction,
                                      double t) {
  std::vector<double> out(base.size());
  for (size_t d = 0; d < base.size(); ++d) {
    out[d] = base[d] + t * (direction[d] - base[d]);
  }
  return out;
}

}  // namespace

NelderMeadResult NelderMeadMinimize(
    const std::function<double(const std::vector<double>&)>& objective,
    const std::vector<double>& initial, const NelderMeadOptions& options) {
  FAAS_CHECK(!initial.empty()) << "Nelder-Mead needs at least one dimension";
  const size_t dim = initial.size();

  // Standard coefficients.
  constexpr double kReflect = 1.0;
  constexpr double kExpand = 2.0;
  constexpr double kContract = 0.5;
  constexpr double kShrink = 0.5;

  std::vector<Vertex> simplex(dim + 1);
  simplex[0] = {initial, objective(initial)};
  for (size_t i = 0; i < dim; ++i) {
    std::vector<double> x = initial;
    if (std::fabs(x[i]) > 1e-8) {
      x[i] *= 1.0 + options.relative_step;
    } else {
      x[i] += options.initial_step;
    }
    simplex[i + 1] = {x, objective(x)};
  }

  NelderMeadResult result;
  int iteration = 0;
  for (; iteration < options.max_iterations; ++iteration) {
    std::sort(simplex.begin(), simplex.end(),
              [](const Vertex& a, const Vertex& b) { return a.f < b.f; });

    const double spread = std::fabs(simplex.back().f - simplex.front().f);
    double diameter = 0.0;
    for (size_t i = 1; i < simplex.size(); ++i) {
      for (size_t d = 0; d < dim; ++d) {
        diameter = std::max(diameter,
                            std::fabs(simplex[i].x[d] - simplex[0].x[d]));
      }
    }
    if (spread < options.f_tolerance && diameter < options.x_tolerance &&
        std::isfinite(simplex.front().f)) {
      result.converged = true;
      break;
    }

    const size_t worst = simplex.size() - 1;
    const std::vector<double> centroid = Centroid(simplex, worst);

    // Reflection: x_r = centroid + alpha * (centroid - worst).
    std::vector<double> reflected =
        AffineCombination(centroid, simplex[worst].x, -kReflect);
    const double f_reflected = objective(reflected);

    if (f_reflected < simplex[0].f) {
      // Expansion.
      std::vector<double> expanded =
          AffineCombination(centroid, simplex[worst].x, -kExpand);
      const double f_expanded = objective(expanded);
      if (f_expanded < f_reflected) {
        simplex[worst] = {std::move(expanded), f_expanded};
      } else {
        simplex[worst] = {std::move(reflected), f_reflected};
      }
      continue;
    }
    if (f_reflected < simplex[worst - 1].f) {
      simplex[worst] = {std::move(reflected), f_reflected};
      continue;
    }
    // Contraction (toward the better of worst/reflected).
    if (f_reflected < simplex[worst].f) {
      // Outside contraction.
      std::vector<double> contracted =
          AffineCombination(centroid, reflected, kContract);
      const double f_contracted = objective(contracted);
      if (f_contracted <= f_reflected) {
        simplex[worst] = {std::move(contracted), f_contracted};
        continue;
      }
    } else {
      // Inside contraction.
      std::vector<double> contracted =
          AffineCombination(centroid, simplex[worst].x, kContract);
      const double f_contracted = objective(contracted);
      if (f_contracted < simplex[worst].f) {
        simplex[worst] = {std::move(contracted), f_contracted};
        continue;
      }
    }
    // Shrink everything toward the best vertex.
    for (size_t i = 1; i < simplex.size(); ++i) {
      simplex[i].x = AffineCombination(simplex[0].x, simplex[i].x, kShrink);
      simplex[i].f = objective(simplex[i].x);
    }
  }

  std::sort(simplex.begin(), simplex.end(),
            [](const Vertex& a, const Vertex& b) { return a.f < b.f; });
  result.x = simplex[0].x;
  result.f = simplex[0].f;
  result.iterations = iteration;
  return result;
}

}  // namespace faas
