#include "src/stats/p2_quantile.h"

#include <algorithm>
#include <cmath>

#include "src/common/logging.h"

namespace faas {

P2Quantile::P2Quantile(double quantile) : quantile_(quantile) {
  FAAS_CHECK(quantile > 0.0 && quantile < 1.0)
      << "quantile must be in (0, 1)";
  desired_increment_ = {0.0, quantile_ / 2.0, quantile_,
                        (1.0 + quantile_) / 2.0, 1.0};
}

void P2Quantile::Add(double value) {
  if (count_ < 5) {
    heights_[static_cast<size_t>(count_)] = value;
    ++count_;
    if (count_ == 5) {
      std::sort(heights_.begin(), heights_.end());
      for (int i = 0; i < 5; ++i) {
        positions_[static_cast<size_t>(i)] = static_cast<double>(i + 1);
      }
      desired_ = {1.0, 1.0 + 2.0 * quantile_, 1.0 + 4.0 * quantile_,
                  3.0 + 2.0 * quantile_, 5.0};
    }
    return;
  }

  // Locate the cell containing the new observation and update extremes.
  int cell;
  if (value < heights_[0]) {
    heights_[0] = value;
    cell = 0;
  } else if (value >= heights_[4]) {
    heights_[4] = std::max(heights_[4], value);
    cell = 3;
  } else {
    cell = 0;
    while (cell < 3 && value >= heights_[static_cast<size_t>(cell + 1)]) {
      ++cell;
    }
  }

  for (int i = cell + 1; i < 5; ++i) {
    positions_[static_cast<size_t>(i)] += 1.0;
  }
  for (int i = 0; i < 5; ++i) {
    desired_[static_cast<size_t>(i)] +=
        desired_increment_[static_cast<size_t>(i)];
  }
  ++count_;
  AdjustMarkers();
}

void P2Quantile::AdjustMarkers() {
  for (int i = 1; i <= 3; ++i) {
    const double gap = desired_[static_cast<size_t>(i)] -
                       positions_[static_cast<size_t>(i)];
    const double gap_right = positions_[static_cast<size_t>(i + 1)] -
                             positions_[static_cast<size_t>(i)];
    const double gap_left = positions_[static_cast<size_t>(i - 1)] -
                            positions_[static_cast<size_t>(i)];
    if ((gap >= 1.0 && gap_right > 1.0) || (gap <= -1.0 && gap_left < -1.0)) {
      MoveMarker(i, gap >= 1.0 ? 1 : -1);
    }
  }
}

void P2Quantile::MoveMarker(int i, int direction) {
  const auto idx = static_cast<size_t>(i);
  const double d = direction;
  const double q = heights_[idx];
  const double q_prev = heights_[idx - 1];
  const double q_next = heights_[idx + 1];
  const double n = positions_[idx];
  const double n_prev = positions_[idx - 1];
  const double n_next = positions_[idx + 1];

  // Piecewise-parabolic prediction.
  double candidate =
      q + d / (n_next - n_prev) *
              ((n - n_prev + d) * (q_next - q) / (n_next - n) +
               (n_next - n - d) * (q - q_prev) / (n - n_prev));
  if (candidate <= q_prev || candidate >= q_next) {
    // Linear fallback keeps the markers ordered.
    const double neighbour = direction > 0 ? q_next : q_prev;
    const double neighbour_pos = direction > 0 ? n_next : n_prev;
    candidate = q + d * (neighbour - q) / (neighbour_pos - n);
  }
  heights_[idx] = candidate;
  positions_[idx] += d;
}

double P2Quantile::Value() const {
  FAAS_CHECK(count_ > 0) << "quantile of empty stream";
  if (count_ < 5) {
    // Exact: sort the few observations we have.
    std::array<double, 5> copy = heights_;
    std::sort(copy.begin(), copy.begin() + count_);
    const auto rank = static_cast<int64_t>(
        std::ceil(quantile_ * static_cast<double>(count_)));
    return copy[static_cast<size_t>(std::clamp<int64_t>(rank, 1, count_) - 1)];
  }
  return heights_[2];
}

}  // namespace faas
