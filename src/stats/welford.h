// Welford's online algorithm for streaming mean/variance.
//
// The paper (Section 4.2) tracks the coefficient of variation of the
// histogram bin counts with Welford's method so the representativeness check
// is O(1) per update and needs no second pass over the bins.

#ifndef SRC_STATS_WELFORD_H_
#define SRC_STATS_WELFORD_H_

#include <cstdint>

namespace faas {

class WelfordAccumulator {
 public:
  // Adds one observation.
  void Add(double value);
  // Replaces a previously added observation with a new value, keeping the
  // count unchanged.  This is what lets the histogram CV track bin-count
  // changes in O(1): incrementing a bin replaces `old_count` with
  // `old_count + 1` in the population of bin counts.
  void Replace(double old_value, double new_value);

  int64_t count() const { return count_; }
  double mean() const { return count_ > 0 ? mean_ : 0.0; }
  // Population variance (divide by n); the CV check treats the bins as the
  // full population, not a sample.
  double PopulationVariance() const;
  // Sample variance (divide by n-1).
  double SampleVariance() const;
  double PopulationStdDev() const;
  double SampleStdDev() const;
  // Coefficient of variation = population stddev / mean.  Returns 0 when the
  // mean is 0 (an all-empty histogram is maximally uninformative, which the
  // policy treats as "not representative", consistent with CV = 0).
  double CoefficientOfVariation() const;

  void Reset();

 private:
  int64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;  // Sum of squared deviations from the running mean.
};

}  // namespace faas

#endif  // SRC_STATS_WELFORD_H_
