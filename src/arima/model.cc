#include "src/arima/model.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>

#include "src/arima/series.h"
#include "src/common/logging.h"
#include "src/stats/descriptive.h"
#include "src/stats/nelder_mead.h"

namespace faas {

namespace {

// Computes CSS residuals for a zero-mean ARMA(p, q) on `w` (already
// mean-adjusted).  Pre-sample values and residuals are treated as zero.
void ComputeResiduals(std::span<const double> w, std::span<const double> ar,
                      std::span<const double> ma,
                      std::vector<double>& residuals) {
  const size_t n = w.size();
  residuals.assign(n, 0.0);
  const size_t p = ar.size();
  const size_t q = ma.size();
  for (size_t t = 0; t < n; ++t) {
    double prediction = 0.0;
    for (size_t i = 0; i < p; ++i) {
      if (t > i) {
        prediction += ar[i] * w[t - i - 1];
      }
    }
    for (size_t j = 0; j < q; ++j) {
      if (t > j) {
        prediction += ma[j] * residuals[t - j - 1];
      }
    }
    residuals[t] = w[t] - prediction;
  }
}

double SumOfSquares(std::span<const double> values) {
  double total = 0.0;
  for (double v : values) {
    total += v * v;
  }
  return total;
}

// Hannan-Rissanen step: long-AR residuals, then OLS of w_t on
// (w_{t-1}..w_{t-p}, e_{t-1}..e_{t-q}).  Solves the normal equations by
// Gaussian elimination with partial pivoting (the system is tiny: p+q <= 10).
struct HannanRissanenEstimate {
  std::vector<double> ar;
  std::vector<double> ma;
  bool ok = false;
};

bool SolveLinearSystem(std::vector<std::vector<double>>& a,
                       std::vector<double>& b) {
  const size_t n = b.size();
  for (size_t col = 0; col < n; ++col) {
    size_t pivot = col;
    for (size_t row = col + 1; row < n; ++row) {
      if (std::fabs(a[row][col]) > std::fabs(a[pivot][col])) {
        pivot = row;
      }
    }
    if (std::fabs(a[pivot][col]) < 1e-12) {
      return false;
    }
    std::swap(a[col], a[pivot]);
    std::swap(b[col], b[pivot]);
    for (size_t row = col + 1; row < n; ++row) {
      const double factor = a[row][col] / a[col][col];
      for (size_t k = col; k < n; ++k) {
        a[row][k] -= factor * a[col][k];
      }
      b[row] -= factor * b[col];
    }
  }
  for (size_t row = n; row-- > 0;) {
    double acc = b[row];
    for (size_t k = row + 1; k < n; ++k) {
      acc -= a[row][k] * b[k];
    }
    b[row] = acc / a[row][row];
  }
  return true;
}

HannanRissanenEstimate HannanRissanen(std::span<const double> w, int p, int q) {
  HannanRissanenEstimate est;
  est.ar.assign(static_cast<size_t>(p), 0.0);
  est.ma.assign(static_cast<size_t>(q), 0.0);
  const size_t n = w.size();
  if (p == 0 && q == 0) {
    est.ok = true;
    return est;
  }

  // Stage 1: long AR to proxy the innovations.
  const int long_order = std::min<int>(
      static_cast<int>(n) / 4,
      std::max(8, 2 * std::max(p, q)));
  std::vector<double> proxy_residuals(n, 0.0);
  if (q > 0 && long_order >= 1 && n > static_cast<size_t>(long_order) + 1) {
    const std::vector<double> long_ar = YuleWalkerAr(w, long_order);
    for (size_t t = 0; t < n; ++t) {
      double prediction = 0.0;
      for (size_t i = 0; i < long_ar.size(); ++i) {
        if (t > i) {
          prediction += long_ar[i] * w[t - i - 1];
        }
      }
      proxy_residuals[t] = w[t] - prediction;
    }
  }

  // Stage 2: OLS of w_t on lagged w and lagged proxy residuals.
  const size_t start = static_cast<size_t>(std::max(p, q));
  const size_t dim = static_cast<size_t>(p + q);
  if (n <= start + dim) {
    // Not enough data for the regression; fall back to Yule-Walker AR only.
    if (p > 0 && n > static_cast<size_t>(p) + 1) {
      est.ar = YuleWalkerAr(w, p);
    }
    est.ok = true;
    return est;
  }
  std::vector<std::vector<double>> xtx(dim, std::vector<double>(dim, 0.0));
  std::vector<double> xty(dim, 0.0);
  std::vector<double> row(dim, 0.0);
  for (size_t t = start; t < n; ++t) {
    for (int i = 0; i < p; ++i) {
      row[static_cast<size_t>(i)] = w[t - static_cast<size_t>(i) - 1];
    }
    for (int j = 0; j < q; ++j) {
      row[static_cast<size_t>(p + j)] =
          proxy_residuals[t - static_cast<size_t>(j) - 1];
    }
    for (size_t a = 0; a < dim; ++a) {
      xty[a] += row[a] * w[t];
      for (size_t b = 0; b < dim; ++b) {
        xtx[a][b] += row[a] * row[b];
      }
    }
  }
  // Ridge-regularise slightly for numerical safety.
  for (size_t a = 0; a < dim; ++a) {
    xtx[a][a] += 1e-8;
  }
  if (!SolveLinearSystem(xtx, xty)) {
    if (p > 0 && n > static_cast<size_t>(p) + 1) {
      est.ar = YuleWalkerAr(w, p);
    }
    est.ok = true;
    return est;
  }
  for (int i = 0; i < p; ++i) {
    est.ar[static_cast<size_t>(i)] = xty[static_cast<size_t>(i)];
  }
  for (int j = 0; j < q; ++j) {
    est.ma[static_cast<size_t>(j)] = xty[static_cast<size_t>(p + j)];
  }
  est.ok = true;
  return est;
}

// Shrinks a coefficient vector toward zero until the implied polynomial has
// all roots outside the unit circle.
void ForceToStableRegion(std::vector<double>& coefficients) {
  double scale = 1.0;
  for (int attempt = 0; attempt < 32; ++attempt) {
    std::vector<double> scaled(coefficients.size());
    for (size_t i = 0; i < coefficients.size(); ++i) {
      scaled[i] = coefficients[i] * scale;
    }
    if (RootsOutsideUnitCircle(scaled)) {
      coefficients = std::move(scaled);
      return;
    }
    scale *= 0.85;
  }
  std::fill(coefficients.begin(), coefficients.end(), 0.0);
}

}  // namespace

std::string ArimaOrder::ToString() const {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "ARIMA(%d,%d,%d)", p, d, q);
  return buf;
}

bool ArimaModel::CanFit(size_t series_length, const ArimaOrder& order) {
  const size_t needed = static_cast<size_t>(order.d) +
                        static_cast<size_t>(std::max(order.p, order.q)) + 2;
  return series_length >= std::max<size_t>(needed, 4);
}

ArimaModel ArimaModel::Fit(std::span<const double> series,
                           const ArimaOrder& order, bool with_mean) {
  FAAS_CHECK(order.p >= 0 && order.d >= 0 && order.q >= 0)
      << "negative ARIMA order";
  FAAS_CHECK(order.p <= 8 && order.q <= 8) << "ARIMA order too large";
  FAAS_CHECK(CanFit(series.size(), order))
      << "series of length " << series.size() << " too short for "
      << order.ToString();

  ArimaModel model;
  model.order_ = order;
  model.with_mean_ = with_mean && order.d == 0;
  model.differencing_tails_ = DifferencingTails(series, order.d);
  model.differenced_ = Difference(series, order.d);

  const size_t n = model.differenced_.size();
  model.mean_ = model.with_mean_ ? Mean(model.differenced_) : 0.0;

  // Mean-adjusted working series.
  std::vector<double> w(n);
  for (size_t t = 0; t < n; ++t) {
    w[t] = model.differenced_[t] - model.mean_;
  }

  // Initial estimates.
  HannanRissanenEstimate init = HannanRissanen(w, order.p, order.q);
  ForceToStableRegion(init.ar);
  ForceToStableRegion(init.ma);

  std::vector<double> ar = init.ar;
  std::vector<double> ma = init.ma;

  const size_t dim = static_cast<size_t>(order.p + order.q);
  std::vector<double> residuals;
  if (dim > 0) {
    // CSS refinement.  The objective rejects non-stationary/non-invertible
    // parameter vectors outright.
    const auto objective = [&](const std::vector<double>& params) {
      std::vector<double> cand_ar(params.begin(),
                                  params.begin() + order.p);
      std::vector<double> cand_ma(params.begin() + order.p, params.end());
      if (!RootsOutsideUnitCircle(cand_ar) ||
          !RootsOutsideUnitCircle(cand_ma)) {
        return std::numeric_limits<double>::infinity();
      }
      std::vector<double> res;
      ComputeResiduals(w, cand_ar, cand_ma, res);
      const double css = SumOfSquares(res);
      return std::isfinite(css) ? css
                                : std::numeric_limits<double>::infinity();
    };

    std::vector<double> start;
    start.insert(start.end(), ar.begin(), ar.end());
    start.insert(start.end(), ma.begin(), ma.end());

    NelderMeadOptions options;
    options.max_iterations = 800;
    options.relative_step = 0.1;
    options.initial_step = 0.05;
    options.f_tolerance = 1e-9;
    const NelderMeadResult opt = NelderMeadMinimize(objective, start, options);
    if (std::isfinite(opt.f)) {
      ar.assign(opt.x.begin(), opt.x.begin() + order.p);
      ma.assign(opt.x.begin() + order.p, opt.x.end());
    }
  }

  ComputeResiduals(w, ar, ma, residuals);
  const double css = SumOfSquares(residuals);
  const double dn = static_cast<double>(n);
  model.sigma2_ = n > 0 ? css / dn : 0.0;
  if (model.sigma2_ < 1e-300) {
    model.sigma2_ = 1e-300;
  }
  // Gaussian log-likelihood implied by the CSS variance.
  model.log_likelihood_ =
      -0.5 * dn * (std::log(2.0 * M_PI * model.sigma2_) + 1.0);
  model.ar_ = std::move(ar);
  model.ma_ = std::move(ma);
  model.residuals_ = std::move(residuals);
  return model;
}

int ArimaModel::NumParameters() const {
  return order_.p + order_.q + (with_mean_ ? 1 : 0) + 1;  // +1 for sigma^2.
}

double ArimaModel::Aic() const {
  return -2.0 * log_likelihood_ + 2.0 * static_cast<double>(NumParameters());
}

std::vector<double> ArimaModel::Forecast(int steps) const {
  FAAS_CHECK(steps >= 1) << "forecast horizon must be >= 1";
  const size_t n = differenced_.size();
  const size_t p = ar_.size();
  const size_t q = ma_.size();

  // Extend the mean-adjusted series and residuals with forecasts; future
  // residuals are zero in expectation.
  std::vector<double> w(n);
  for (size_t t = 0; t < n; ++t) {
    w[t] = differenced_[t] - mean_;
  }
  std::vector<double> extended_res = residuals_;
  std::vector<double> diff_forecast;
  diff_forecast.reserve(static_cast<size_t>(steps));
  for (int h = 0; h < steps; ++h) {
    const size_t t = n + static_cast<size_t>(h);
    double prediction = 0.0;
    for (size_t i = 0; i < p; ++i) {
      if (t > i) {
        prediction += ar_[i] * w[t - i - 1];
      }
    }
    for (size_t j = 0; j < q; ++j) {
      if (t > j && t - j - 1 < extended_res.size()) {
        prediction += ma_[j] * extended_res[t - j - 1];
      }
    }
    w.push_back(prediction);
    diff_forecast.push_back(prediction + mean_);
  }
  return IntegrateForecast(diff_forecast, differencing_tails_);
}

double ArimaModel::ForecastOne() const { return Forecast(1)[0]; }

std::vector<ArimaModel::ForecastInterval> ArimaModel::ForecastWithErrors(
    int steps) const {
  const std::vector<double> means = Forecast(steps);

  // psi-weight recursion for the INTEGRATED process: the AR polynomial of
  // the original series is phi(B) * (1-B)^d.  Expand that product into
  // "big phi" coefficients, then psi_j = theta_j + sum_i bigphi_i psi_{j-i}
  // (theta_0 = psi_0 = 1).
  std::vector<double> big_phi(ar_.begin(), ar_.end());
  for (int round = 0; round < order_.d; ++round) {
    // Multiply (1 - sum big_phi_i B^i) by (1 - B):
    // new_0 = old_0 + 1, new_i = old_i - old_{i-1}, new_last = -old_last.
    std::vector<double> next(big_phi.size() + 1, 0.0);
    for (size_t i = 0; i < big_phi.size(); ++i) {
      next[i] += big_phi[i];
      next[i + 1] -= big_phi[i];
    }
    next[0] += 1.0;
    big_phi = std::move(next);
  }

  std::vector<double> psi(static_cast<size_t>(steps), 0.0);
  psi[0] = 1.0;
  for (int j = 1; j < steps; ++j) {
    double value = static_cast<size_t>(j) <= ma_.size()
                       ? ma_[static_cast<size_t>(j - 1)]
                       : 0.0;
    for (size_t i = 1; i <= big_phi.size() && static_cast<int>(i) <= j; ++i) {
      value += big_phi[i - 1] * psi[static_cast<size_t>(j) - i];
    }
    psi[static_cast<size_t>(j)] = value;
  }

  std::vector<ForecastInterval> intervals(static_cast<size_t>(steps));
  double cumulative_psi_sq = 0.0;
  for (int h = 0; h < steps; ++h) {
    cumulative_psi_sq += psi[static_cast<size_t>(h)] * psi[static_cast<size_t>(h)];
    intervals[static_cast<size_t>(h)].mean = means[static_cast<size_t>(h)];
    intervals[static_cast<size_t>(h)].stderr_ =
        std::sqrt(sigma2_ * cumulative_psi_sq);
  }
  return intervals;
}

}  // namespace faas
