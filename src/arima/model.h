// ARIMA(p, d, q) model: fitting by conditional sum of squares and
// multi-step forecasting.
//
// Fitting pipeline (mirroring what pmdarima does at a high level):
//   1. difference the series d times;
//   2. Hannan-Rissanen initial estimates: long-AR residual proxy, then OLS
//      of the series on its own lags and lagged residuals;
//   3. Nelder-Mead refinement of the conditional sum of squares, with
//      stationarity/invertibility enforced through root checks;
//   4. Gaussian log-likelihood / AIC from the CSS residual variance.

#ifndef SRC_ARIMA_MODEL_H_
#define SRC_ARIMA_MODEL_H_

#include <span>
#include <string>
#include <vector>

namespace faas {

struct ArimaOrder {
  int p = 0;
  int d = 0;
  int q = 0;

  bool operator==(const ArimaOrder&) const = default;
  std::string ToString() const;
};

class ArimaModel {
 public:
  // Fits an ARIMA(order) model to `series` by CSS.  Requires
  // series.size() > order.d + max(order.p, order.q) + 1.
  // `with_mean` fits an intercept on the differenced series (forced off when
  // d > 0, matching common practice).
  static ArimaModel Fit(std::span<const double> series, const ArimaOrder& order,
                        bool with_mean = true);

  // True when the series is long enough for Fit() to succeed.
  static bool CanFit(size_t series_length, const ArimaOrder& order);

  const ArimaOrder& order() const { return order_; }
  const std::vector<double>& ar() const { return ar_; }
  const std::vector<double>& ma() const { return ma_; }
  double mean() const { return mean_; }
  double sigma2() const { return sigma2_; }
  double log_likelihood() const { return log_likelihood_; }
  double Aic() const;
  // Number of estimated parameters (AR + MA + intercept + sigma^2).
  int NumParameters() const;

  // In-sample one-step-ahead residuals of the differenced series.
  const std::vector<double>& residuals() const { return residuals_; }

  // Forecasts `steps` future values of the ORIGINAL (undifferenced) series.
  std::vector<double> Forecast(int steps) const;
  // Convenience: one-step-ahead point forecast.
  double ForecastOne() const;

  // Point forecasts with standard errors.  Errors follow the psi-weight
  // (MA-infinity) expansion of the ARIMA process: the h-step variance is
  // sigma^2 * sum_{j<h} psi_j^2, with the psi recursion run on the
  // integrated (ARIMA, not just ARMA) polynomial so differencing's error
  // accumulation is included.
  struct ForecastInterval {
    double mean = 0.0;
    double stderr_ = 0.0;  // Standard error of the h-step forecast.

    double Lower(double z = 1.96) const { return mean - z * stderr_; }
    double Upper(double z = 1.96) const { return mean + z * stderr_; }
  };
  std::vector<ForecastInterval> ForecastWithErrors(int steps) const;

 private:
  ArimaModel() = default;

  ArimaOrder order_;
  std::vector<double> ar_;
  std::vector<double> ma_;
  double mean_ = 0.0;
  double sigma2_ = 0.0;
  double log_likelihood_ = 0.0;
  bool with_mean_ = false;

  // State captured at fit time, needed for forecasting.
  std::vector<double> differenced_;        // The d-times differenced series.
  std::vector<double> residuals_;          // CSS residuals, same length.
  std::vector<double> differencing_tails_; // For re-integration.
};

}  // namespace faas

#endif  // SRC_ARIMA_MODEL_H_
