// auto_arima: order selection by AIC grid search.
//
// Replaces the paper's use of pmdarima.auto_arima.  The differencing order d
// comes from repeated KPSS tests (pmdarima's default "ndiffs"); p and q are
// then selected by fitting every combination up to (max_p, max_q) and
// keeping the lowest-AIC model.  The grid is small (default 4x4 = 16 fits)
// because the policy's IT series are short.

#ifndef SRC_ARIMA_AUTO_ARIMA_H_
#define SRC_ARIMA_AUTO_ARIMA_H_

#include <optional>
#include <span>

#include "src/arima/model.h"

namespace faas {

struct AutoArimaOptions {
  int max_p = 3;
  int max_q = 3;
  int max_d = 2;
  bool with_mean = true;
  // Stepwise search (Hyndman-Khandakar neighbourhood walk) instead of the
  // full grid; ~3x fewer fits with nearly identical selections.
  bool stepwise = false;
};

// Returns nullopt when the series is too short to fit even ARIMA(0, d, 0).
std::optional<ArimaModel> AutoArima(std::span<const double> series,
                                    const AutoArimaOptions& options = {});

}  // namespace faas

#endif  // SRC_ARIMA_AUTO_ARIMA_H_
