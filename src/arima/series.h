// Time-series primitives: differencing, autocorrelation, partial
// autocorrelation, stationarity testing, and polynomial root checks.
//
// These are the building blocks of the ARIMA fitter that replaces the
// paper's use of pmdarima.auto_arima for applications whose idle times
// exceed the histogram range (Section 4.2, "Time-series analysis when
// histogram is not large enough").

#ifndef SRC_ARIMA_SERIES_H_
#define SRC_ARIMA_SERIES_H_

#include <span>
#include <vector>

namespace faas {

// d-th order differencing: returns x[t] - x[t-1] applied `d` times.
// The result has size max(0, n - d).
std::vector<double> Difference(std::span<const double> series, int d);

// Inverts one differencing step given the last observation of the original
// series at each level; `tails[i]` is the final value of the i-times
// differenced series.  Used to turn forecasts of the differenced series back
// into forecasts of the original.
std::vector<double> IntegrateForecast(std::span<const double> diff_forecast,
                                      std::span<const double> tails);

// Returns the last observation of each differencing level 0..d-1, i.e. the
// state needed by IntegrateForecast.
std::vector<double> DifferencingTails(std::span<const double> series, int d);

// Sample autocorrelation function for lags 0..max_lag (acf[0] == 1).
std::vector<double> Acf(std::span<const double> series, int max_lag);

// Partial autocorrelation via Durbin-Levinson for lags 1..max_lag.
std::vector<double> Pacf(std::span<const double> series, int max_lag);

// Yule-Walker AR(p) coefficient estimates.
std::vector<double> YuleWalkerAr(std::span<const double> series, int p);

// KPSS level-stationarity statistic with a Bartlett-window long-run variance
// (lag truncation = floor(4 * (n/100)^0.25), the standard choice).
double KpssStatistic(std::span<const double> series);

// True if the series passes the KPSS test at the 5% level (statistic below
// the 0.463 critical value), i.e. we fail to reject stationarity.
bool IsLevelStationaryKpss(std::span<const double> series);

// Smallest d in [0, max_d] whose d-times differenced series passes KPSS;
// returns max_d if none does.  Mirrors pmdarima's ndiffs(test="kpss").
int EstimateDifferencingOrder(std::span<const double> series, int max_d);

// True if all roots of 1 - c1*z - c2*z^2 - ... - cp*z^p lie strictly outside
// the unit circle (stationarity for AR coefficients, invertibility for
// negated MA coefficients).  Uses Durand-Kerner iteration; degree <= 8.
bool RootsOutsideUnitCircle(std::span<const double> coefficients);

}  // namespace faas

#endif  // SRC_ARIMA_SERIES_H_
