#include "src/arima/series.h"

#include <cmath>
#include <complex>

#include "src/common/logging.h"
#include "src/stats/descriptive.h"

namespace faas {

std::vector<double> Difference(std::span<const double> series, int d) {
  FAAS_CHECK(d >= 0) << "differencing order must be non-negative";
  std::vector<double> current(series.begin(), series.end());
  for (int round = 0; round < d; ++round) {
    if (current.size() <= 1) {
      return {};
    }
    std::vector<double> next(current.size() - 1);
    for (size_t i = 1; i < current.size(); ++i) {
      next[i - 1] = current[i] - current[i - 1];
    }
    current = std::move(next);
  }
  return current;
}

std::vector<double> DifferencingTails(std::span<const double> series, int d) {
  std::vector<double> tails;
  tails.reserve(static_cast<size_t>(d));
  std::vector<double> current(series.begin(), series.end());
  for (int level = 0; level < d; ++level) {
    FAAS_CHECK(!current.empty()) << "series too short for differencing order";
    tails.push_back(current.back());
    std::vector<double> next;
    next.reserve(current.size() > 0 ? current.size() - 1 : 0);
    for (size_t i = 1; i < current.size(); ++i) {
      next.push_back(current[i] - current[i - 1]);
    }
    current = std::move(next);
  }
  return tails;
}

std::vector<double> IntegrateForecast(std::span<const double> diff_forecast,
                                      std::span<const double> tails) {
  // tails[0] is the last value of the original series, tails[1] the last of
  // the once-differenced series, etc.  Invert from the deepest level up.
  std::vector<double> current(diff_forecast.begin(), diff_forecast.end());
  for (size_t level = tails.size(); level-- > 0;) {
    double previous = tails[level];
    for (double& value : current) {
      value += previous;
      previous = value;
    }
  }
  return current;
}

std::vector<double> Acf(std::span<const double> series, int max_lag) {
  const size_t n = series.size();
  FAAS_CHECK(n >= 2) << "ACF needs at least two points";
  const double mean = Mean(series);
  double denom = 0.0;
  for (double v : series) {
    const double d = v - mean;
    denom += d * d;
  }
  std::vector<double> acf(static_cast<size_t>(max_lag) + 1, 0.0);
  acf[0] = 1.0;
  if (denom == 0.0) {
    return acf;  // Constant series: define rho_k = 0 for k > 0.
  }
  for (int lag = 1; lag <= max_lag; ++lag) {
    if (static_cast<size_t>(lag) >= n) {
      break;
    }
    double num = 0.0;
    for (size_t t = static_cast<size_t>(lag); t < n; ++t) {
      num += (series[t] - mean) * (series[t - static_cast<size_t>(lag)] - mean);
    }
    acf[static_cast<size_t>(lag)] = num / denom;
  }
  return acf;
}

std::vector<double> Pacf(std::span<const double> series, int max_lag) {
  // Durbin-Levinson recursion on the sample ACF.
  const std::vector<double> rho = Acf(series, max_lag);
  std::vector<double> pacf(static_cast<size_t>(max_lag) + 1, 0.0);
  if (max_lag == 0) {
    return pacf;
  }
  std::vector<double> phi_prev(static_cast<size_t>(max_lag) + 1, 0.0);
  std::vector<double> phi_curr(static_cast<size_t>(max_lag) + 1, 0.0);
  pacf[0] = 1.0;
  phi_prev[1] = rho[1];
  pacf[1] = rho[1];
  double v = 1.0 - rho[1] * rho[1];
  for (int k = 2; k <= max_lag; ++k) {
    double num = rho[static_cast<size_t>(k)];
    for (int j = 1; j < k; ++j) {
      num -= phi_prev[static_cast<size_t>(j)] *
             rho[static_cast<size_t>(k - j)];
    }
    const double phi_kk = v > 1e-12 ? num / v : 0.0;
    for (int j = 1; j < k; ++j) {
      phi_curr[static_cast<size_t>(j)] =
          phi_prev[static_cast<size_t>(j)] -
          phi_kk * phi_prev[static_cast<size_t>(k - j)];
    }
    phi_curr[static_cast<size_t>(k)] = phi_kk;
    pacf[static_cast<size_t>(k)] = phi_kk;
    v *= (1.0 - phi_kk * phi_kk);
    std::swap(phi_prev, phi_curr);
  }
  return pacf;
}

std::vector<double> YuleWalkerAr(std::span<const double> series, int p) {
  FAAS_CHECK(p >= 0) << "AR order must be non-negative";
  if (p == 0) {
    return {};
  }
  const std::vector<double> rho = Acf(series, p);
  // Solve the Toeplitz system via Durbin-Levinson.
  std::vector<double> phi(static_cast<size_t>(p), 0.0);
  std::vector<double> prev(static_cast<size_t>(p), 0.0);
  phi[0] = rho[1];
  double v = 1.0 - rho[1] * rho[1];
  for (int k = 2; k <= p; ++k) {
    prev.assign(phi.begin(), phi.end());
    double num = rho[static_cast<size_t>(k)];
    for (int j = 1; j < k; ++j) {
      num -= prev[static_cast<size_t>(j - 1)] * rho[static_cast<size_t>(k - j)];
    }
    const double phi_kk = v > 1e-12 ? num / v : 0.0;
    for (int j = 1; j < k; ++j) {
      phi[static_cast<size_t>(j - 1)] =
          prev[static_cast<size_t>(j - 1)] -
          phi_kk * prev[static_cast<size_t>(k - j - 1)];
    }
    phi[static_cast<size_t>(k - 1)] = phi_kk;
    v *= (1.0 - phi_kk * phi_kk);
  }
  return phi;
}

double KpssStatistic(std::span<const double> series) {
  const size_t n = series.size();
  FAAS_CHECK(n >= 4) << "KPSS needs at least four points";
  const double mean = Mean(series);

  // Partial sums of demeaned residuals.
  std::vector<double> residuals(n);
  for (size_t t = 0; t < n; ++t) {
    residuals[t] = series[t] - mean;
  }
  double partial = 0.0;
  double sum_sq_partial = 0.0;
  for (size_t t = 0; t < n; ++t) {
    partial += residuals[t];
    sum_sq_partial += partial * partial;
  }

  // Long-run variance with a Bartlett kernel.
  const int lags = static_cast<int>(
      std::floor(4.0 * std::pow(static_cast<double>(n) / 100.0, 0.25)));
  double s2 = 0.0;
  for (size_t t = 0; t < n; ++t) {
    s2 += residuals[t] * residuals[t];
  }
  for (int lag = 1; lag <= lags; ++lag) {
    double gamma = 0.0;
    for (size_t t = static_cast<size_t>(lag); t < n; ++t) {
      gamma += residuals[t] * residuals[t - static_cast<size_t>(lag)];
    }
    const double weight =
        1.0 - static_cast<double>(lag) / (static_cast<double>(lags) + 1.0);
    s2 += 2.0 * weight * gamma;
  }
  s2 /= static_cast<double>(n);
  if (s2 <= 1e-300) {
    return 0.0;  // Constant series: trivially stationary.
  }
  return sum_sq_partial / (static_cast<double>(n) * static_cast<double>(n) * s2);
}

bool IsLevelStationaryKpss(std::span<const double> series) {
  // 5% critical value for the level-stationarity KPSS test.
  constexpr double kCriticalValue = 0.463;
  return KpssStatistic(series) < kCriticalValue;
}

int EstimateDifferencingOrder(std::span<const double> series, int max_d) {
  std::vector<double> current(series.begin(), series.end());
  for (int d = 0; d <= max_d; ++d) {
    if (current.size() < 4 || IsLevelStationaryKpss(current)) {
      return d;
    }
    current = Difference(current, 1);
  }
  return max_d;
}

bool RootsOutsideUnitCircle(std::span<const double> coefficients) {
  // Polynomial: 1 - c1 z - ... - cp z^p.  Strip trailing zeros.
  size_t degree = coefficients.size();
  while (degree > 0 && std::fabs(coefficients[degree - 1]) < 1e-12) {
    --degree;
  }
  if (degree == 0) {
    return true;
  }
  FAAS_CHECK(degree <= 8) << "root check limited to degree 8";

  // Monic form: z^p - (c1/cp... ) -- easier to run Durand-Kerner on
  // p(z) = -c_p z^p - ... - c_1 z + 1 normalised by the leading coefficient.
  std::vector<std::complex<double>> poly(degree + 1);
  poly[0] = std::complex<double>(1.0, 0.0);
  for (size_t i = 1; i <= degree; ++i) {
    poly[i] = std::complex<double>(-coefficients[i - 1], 0.0);
  }
  const std::complex<double> lead = poly[degree];
  for (auto& c : poly) {
    c /= lead;
  }

  const auto eval = [&poly, degree](std::complex<double> z) {
    std::complex<double> acc(0.0, 0.0);
    for (size_t i = degree + 1; i-- > 0;) {
      acc = acc * z + poly[i];
    }
    return acc;
  };

  // Durand-Kerner iteration from the standard (0.4 + 0.9i)^k seeds.
  std::vector<std::complex<double>> roots(degree);
  const std::complex<double> seed(0.4, 0.9);
  std::complex<double> power(1.0, 0.0);
  for (size_t i = 0; i < degree; ++i) {
    power *= seed;
    roots[i] = power;
  }
  for (int iter = 0; iter < 200; ++iter) {
    double max_step = 0.0;
    for (size_t i = 0; i < degree; ++i) {
      std::complex<double> denom(1.0, 0.0);
      for (size_t j = 0; j < degree; ++j) {
        if (j != i) {
          denom *= roots[i] - roots[j];
        }
      }
      if (std::abs(denom) < 1e-300) {
        denom = std::complex<double>(1e-300, 0.0);
      }
      const std::complex<double> step = eval(roots[i]) / denom;
      roots[i] -= step;
      max_step = std::max(max_step, std::abs(step));
    }
    if (max_step < 1e-12) {
      break;
    }
  }

  for (const auto& root : roots) {
    if (std::abs(root) <= 1.0 + 1e-8) {
      return false;
    }
  }
  return true;
}

}  // namespace faas
