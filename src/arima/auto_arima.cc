#include "src/arima/auto_arima.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <utility>
#include <vector>

#include "src/arima/series.h"
#include "src/common/logging.h"

namespace faas {

namespace {

std::optional<ArimaModel> TryFit(std::span<const double> series,
                                 const ArimaOrder& order, bool with_mean) {
  if (!ArimaModel::CanFit(series.size(), order)) {
    return std::nullopt;
  }
  ArimaModel model = ArimaModel::Fit(series, order, with_mean);
  if (!std::isfinite(model.Aic())) {
    return std::nullopt;
  }
  return model;
}

std::optional<ArimaModel> GridSearch(std::span<const double> series, int d,
                                     const AutoArimaOptions& options) {
  std::optional<ArimaModel> best;
  for (int p = 0; p <= options.max_p; ++p) {
    for (int q = 0; q <= options.max_q; ++q) {
      auto candidate = TryFit(series, {p, d, q}, options.with_mean);
      if (candidate.has_value() &&
          (!best.has_value() || candidate->Aic() < best->Aic())) {
        best = std::move(candidate);
      }
    }
  }
  return best;
}

std::optional<ArimaModel> StepwiseSearch(std::span<const double> series, int d,
                                         const AutoArimaOptions& options) {
  // Hyndman-Khandakar-style neighbourhood walk from standard starting points.
  std::set<std::pair<int, int>> visited;
  std::optional<ArimaModel> best;

  const auto consider = [&](int p, int q) {
    if (p < 0 || q < 0 || p > options.max_p || q > options.max_q) {
      return;
    }
    if (!visited.insert({p, q}).second) {
      return;
    }
    auto candidate = TryFit(series, {p, d, q}, options.with_mean);
    if (candidate.has_value() &&
        (!best.has_value() || candidate->Aic() < best->Aic())) {
      best = std::move(candidate);
    }
  };

  consider(0, 0);
  consider(1, 0);
  consider(0, 1);
  consider(2, 2);

  for (int round = 0; round < 16 && best.has_value(); ++round) {
    const int p = best->order().p;
    const int q = best->order().q;
    const double before = best->Aic();
    consider(p + 1, q);
    consider(p - 1, q);
    consider(p, q + 1);
    consider(p, q - 1);
    consider(p + 1, q + 1);
    consider(p - 1, q - 1);
    if (best->Aic() >= before) {
      break;  // No neighbour improved.
    }
  }
  return best;
}

}  // namespace

std::optional<ArimaModel> AutoArima(std::span<const double> series,
                                    const AutoArimaOptions& options) {
  if (series.size() < 4) {
    return std::nullopt;
  }
  int d = EstimateDifferencingOrder(series, options.max_d);
  // Ensure the differenced series leaves room to fit something.
  while (d > 0 && series.size() <= static_cast<size_t>(d) + 4) {
    --d;
  }

  std::optional<ArimaModel> best =
      options.stepwise ? StepwiseSearch(series, d, options)
                       : GridSearch(series, d, options);
  if (!best.has_value()) {
    // Last resort: random-walk-style mean model.
    best = TryFit(series, {0, 0, 0}, /*with_mean=*/true);
  }
  return best;
}

}  // namespace faas
