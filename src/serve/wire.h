// Wire protocol for the real-time serving front-end.
//
// The serving subsystem (src/serve/server.h) speaks a compact binary
// protocol over TCP: every message is a fixed 24-byte little-endian header,
// requests optionally followed by an opaque payload.  The header carries
// exactly what the admission path needs — function id, payload size, and a
// relative deadline — and the reply carries exactly what a load generator
// needs to account an outcome: status, latency class (warm / cold /
// queued), and the server-side latency in microseconds.  request_id is
// opaque to the server and echoed verbatim; the bundled load generators
// stamp it with the sender's monotonic nanosecond clock so end-to-end
// latency needs no per-request lookup table on the client.
//
// FrameDecoder turns an arbitrary byte stream back into frames without
// copying complete frames: bytes are pushed in whatever chunks the socket
// produced, frames wholly inside one chunk are parsed in place, and only a
// frame split across reads is reassembled through a small stash buffer.
// Malformed input (bad magic/version/type, payload above the cap) is a
// terminal protocol error: the decoder latches the error and the server
// closes the connection.

#ifndef SRC_SERVE_WIRE_H_
#define SRC_SERVE_WIRE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace faas {

inline constexpr uint16_t kWireMagic = 0xFA5C;
inline constexpr uint8_t kWireVersion = 1;
// Both frame kinds are 24 bytes on the wire (requests add payload_size
// bytes of opaque payload after the header).
inline constexpr size_t kWireHeaderSize = 24;
// Requests advertising a larger payload are a protocol error, not a
// buffering problem: the cap bounds decoder stash growth per connection.
inline constexpr uint32_t kMaxPayloadBytes = 64 * 1024;

enum class FrameType : uint8_t {
  kRequest = 1,
  kReply = 2,
};

// How the admission bridge disposed of a request.
enum class ReplyStatus : uint8_t {
  kOk = 0,              // Executed (warm or cold).
  kShedQueueFull = 1,   // Admission queue at capacity.
  kShedDeadline = 2,    // CoDel age bound or the request's own deadline.
  kShedShutdown = 3,    // Still queued when the server drained.
  kRejected = 4,        // No queue configured and no executor had a slot.
  kFailed = 5,          // Execution killed by an executor crash/restart.
  kShedDegraded = 6,    // Shed by a graceful-degradation tier.
};

// A retriable outcome: safe (and expected) for the client to resend the
// same request id.  kOk replies to a resent id are served from the
// bridge's dedupe cache, so retries never double-execute.
inline constexpr bool IsRetriableStatus(ReplyStatus status) {
  return status != ReplyStatus::kOk;
}

// Container temperature of a served request (kUnknown for non-kOk replies).
enum class LatencyClass : uint8_t {
  kUnknown = 0,
  kWarm = 1,
  kCold = 2,
};

// High bit of the wire deadline field marks a retry of an earlier send of
// the same request_id.  Deadlines are relative microseconds, so bit 31
// (~36 minutes) was never a meaningful deadline; reusing it keeps the
// header at 24 bytes and old clients bit-compatible.
inline constexpr uint32_t kWireRetryFlag = 0x8000'0000u;

struct RequestFrame {
  uint64_t request_id = 0;
  uint32_t function_id = 0;
  uint32_t payload_size = 0;
  // Relative deadline in microseconds from arrival; 0 = none.  Checked
  // lazily at dispatch time, so a request that out-queues its deadline is
  // shed instead of executed.  Capped below kWireRetryFlag on the wire.
  uint32_t deadline_us = 0;
  // This send is a retry of an earlier send of the same request_id.
  // Carried as kWireRetryFlag on the deadline field; degradation tiers
  // keep admitting retries after they start shedding fresh traffic.
  bool retry = false;
};

struct ReplyFrame {
  uint64_t request_id = 0;
  uint32_t latency_us = 0;  // Server-side: arrival to reply enqueue.
  ReplyStatus status = ReplyStatus::kOk;
  LatencyClass latency_class = LatencyClass::kUnknown;
};

// Appends the encoded frame to `out` (requests: header only; the caller
// appends payload_size further bytes itself).
void EncodeRequest(const RequestFrame& frame, std::vector<uint8_t>& out);
void EncodeReply(const ReplyFrame& frame, std::vector<uint8_t>& out);
// Fixed-size encode into a raw buffer of at least kWireHeaderSize bytes;
// returns kWireHeaderSize.  The hot path for batched senders.
size_t EncodeRequestTo(const RequestFrame& frame, uint8_t* out);
size_t EncodeReplyTo(const ReplyFrame& frame, uint8_t* out);

// One decoded frame.  `payload` points either into the pushed chunk or into
// the decoder's stash; it is valid only until the next Next()/Push() call.
struct DecodedFrame {
  FrameType type = FrameType::kRequest;
  RequestFrame request;  // Valid when type == kRequest.
  ReplyFrame reply;      // Valid when type == kReply.
  const uint8_t* payload = nullptr;
  size_t payload_size = 0;
};

class FrameDecoder {
 public:
  enum class Result {
    kFrame,     // `out` holds the next frame.
    kNeedMore,  // Chunk exhausted; push more bytes.
    kError,     // Protocol violation; the stream is unrecoverable.
  };
  enum class Error {
    kNone,
    kBadMagic,
    kBadVersion,
    kBadType,
    kOversizedPayload,
  };

  explicit FrameDecoder(uint32_t max_payload = kMaxPayloadBytes)
      : max_payload_(max_payload) {}

  // Hands the decoder the next chunk of the stream.  The previous chunk
  // must be fully consumed (Next() returned kNeedMore or kError); the
  // decoder stashes any partial trailing frame itself.
  void Push(const uint8_t* data, size_t size);

  // Produces the next complete frame from the current chunk + stash.
  Result Next(DecodedFrame* out);

  Error error() const { return error_; }
  // Bytes currently stashed for a frame straddling chunk boundaries.
  size_t stashed_bytes() const { return stash_.size(); }

 private:
  Result Fail(Error error) {
    error_ = error;
    return Result::kError;
  }
  // Parses the 24-byte header at `header` and validates it; on success
  // fills `out` (payload not yet attached) and sets *payload_size.
  Result ParseHeader(const uint8_t* header, DecodedFrame* out,
                     size_t* payload_size);

  uint32_t max_payload_;
  const uint8_t* chunk_ = nullptr;
  size_t chunk_size_ = 0;
  size_t chunk_pos_ = 0;
  // Prefix of a frame whose remainder has not arrived yet (header bytes
  // and, once the header is complete, payload bytes).
  std::vector<uint8_t> stash_;
  // The stash holds an already-emitted frame whose payload pointer the
  // caller may still be reading; cleared lazily on the next Next()/Push().
  bool stash_consumed_ = false;
  Error error_ = Error::kNone;
};

const char* ReplyStatusName(ReplyStatus status);
const char* LatencyClassName(LatencyClass latency_class);

}  // namespace faas

#endif  // SRC_SERVE_WIRE_H_
