#include "src/serve/chaos.h"

#include <algorithm>

#include "src/common/strings.h"
#include "src/faults/spec_grammar.h"

namespace faas::serve {

double ServeChaosPlan::ConnResetProbabilityAtNs(int64_t offset_ns) const {
  double probability = 0.0;
  for (const ConnResetWindow& window : reset_windows) {
    if (window.CoversNs(offset_ns)) {
      probability = std::max(probability, window.probability);
    }
  }
  return probability;
}

double ServeChaosPlan::LatencyMultiplierAtNs(int64_t offset_ns) const {
  double multiplier = 1.0;
  for (const ServeLatencySpike& spike : spikes) {
    if (spike.CoversNs(offset_ns)) {
      multiplier *= spike.multiplier;
    }
  }
  return multiplier;
}

std::string ServeChaosPlan::Validate(int num_executors) const {
  for (const ExecCrashEvent& crash : crashes) {
    if (crash.executor < 0 || crash.executor >= num_executors) {
      return "crash targets executor " + std::to_string(crash.executor) +
             " with " + std::to_string(num_executors) + " shards";
    }
    if (crash.at.IsNegative() || crash.downtime.IsNegative()) {
      return "crash with negative offset or downtime";
    }
  }
  for (const ExecStallEvent& stall : stalls) {
    if (stall.executor < 0 || stall.executor >= num_executors) {
      return "stall targets executor " + std::to_string(stall.executor) +
             " with " + std::to_string(num_executors) + " shards";
    }
    if (stall.at.IsNegative() || stall.duration.IsNegative()) {
      return "stall with negative offset or duration";
    }
  }
  for (const ConnResetWindow& window : reset_windows) {
    if (window.probability < 0.0 || window.probability > 1.0) {
      return "connreset probability outside [0, 1]";
    }
    if (window.at.IsNegative() || window.duration.IsNegative()) {
      return "connreset window with negative offset or duration";
    }
  }
  for (const ServeLatencySpike& spike : spikes) {
    if (spike.multiplier < 1.0) {
      return "spike multiplier below 1";
    }
    if (spike.at.IsNegative() || spike.duration.IsNegative()) {
      return "spike with negative offset or duration";
    }
  }
  return "";
}

std::optional<ServeChaosPlan> ServeChaosPlan::Parse(std::string_view spec,
                                                    std::string* error) {
  using spec::GetDouble;
  using spec::GetDuration;
  using spec::GetInt;
  using spec::ParseArgs;
  std::string local_error;
  if (error == nullptr) {
    error = &local_error;
  }
  ServeChaosPlan plan;
  for (std::string_view clause : SplitString(spec, ';')) {
    clause = StripWhitespace(clause);
    if (clause.empty()) {
      continue;
    }
    const size_t colon = clause.find(':');
    const std::string_view kind = StripWhitespace(clause.substr(0, colon));
    const std::string_view body = colon == std::string_view::npos
                                      ? std::string_view{}
                                      : clause.substr(colon + 1);
    const auto args = ParseArgs(body, error, clause);
    if (!args.has_value()) {
      return std::nullopt;
    }
    if (kind == "crash") {
      const auto executor = GetInt(*args, "executor", error, clause);
      const auto at = GetDuration(*args, "at", error, clause);
      const auto down = GetDuration(*args, "down", error, clause);
      if (!executor.has_value() || !at.has_value() || !down.has_value()) {
        return std::nullopt;
      }
      plan.crashes.push_back({static_cast<int>(*executor), *at, *down});
    } else if (kind == "stall") {
      const auto executor = GetInt(*args, "executor", error, clause);
      const auto at = GetDuration(*args, "at", error, clause);
      const auto duration = GetDuration(*args, "for", error, clause);
      if (!executor.has_value() || !at.has_value() || !duration.has_value()) {
        return std::nullopt;
      }
      plan.stalls.push_back({static_cast<int>(*executor), *at, *duration});
    } else if (kind == "connreset") {
      const auto at = GetDuration(*args, "at", error, clause);
      const auto duration = GetDuration(*args, "for", error, clause);
      const auto p = GetDouble(*args, "p", error, clause);
      if (!at.has_value() || !duration.has_value() || !p.has_value()) {
        return std::nullopt;
      }
      plan.reset_windows.push_back({*at, *duration, *p});
    } else if (kind == "spike") {
      const auto at = GetDuration(*args, "at", error, clause);
      const auto duration = GetDuration(*args, "for", error, clause);
      const auto x = GetDouble(*args, "x", error, clause);
      if (!at.has_value() || !duration.has_value() || !x.has_value()) {
        return std::nullopt;
      }
      plan.spikes.push_back({*at, *duration, *x});
    } else {
      *error = "unknown serve chaos clause '" + std::string(kind) +
               "' (expected crash/stall/connreset/spike)";
      return std::nullopt;
    }
  }
  return plan;
}

}  // namespace faas::serve
