#include "src/serve/timer_wheel.h"

namespace faas {
namespace {

size_t RoundUpPow2(size_t v) {
  size_t p = 1;
  while (p < v) {
    p <<= 1;
  }
  return p;
}

}  // namespace

TimerWheel::TimerWheel(int64_t tick_ns, size_t num_slots)
    : tick_ns_(tick_ns > 0 ? tick_ns : 1),
      slot_mask_(RoundUpPow2(num_slots < 2 ? 2 : num_slots) - 1),
      slots_(slot_mask_ + 1) {}

void TimerWheel::Schedule(int64_t deadline_ns, Callback fn, void* ctx,
                          uint64_t data) {
  int64_t tick = deadline_ns / tick_ns_;
  // A deadline at or before the tick currently processed would only be seen
  // again after a full rotation; park it in the next tick instead (the due
  // check compares deadlines, not slots, so it still fires "late" exactly
  // once the cursor reaches that tick).
  if (tick <= current_tick_) {
    tick = current_tick_ + 1;
  }
  slots_[static_cast<size_t>(tick) & slot_mask_].push_back(
      Timer{deadline_ns, data, fn, ctx});
  ++pending_;
}

void TimerWheel::Advance(int64_t now_ns) {
  // Only fully elapsed ticks are processed: tick t covers
  // [t*tick, (t+1)*tick), so every timer in a tick below now/tick has
  // deadline <= now and nothing ever fires early.  Timers in the current
  // partial tick wait for it to complete (late by < one tick, the wheel's
  // granularity).
  const int64_t target_tick = now_ns / tick_ns_ - 1;
  if (target_tick <= current_tick_) {
    return;
  }
  // A jump of a full rotation or more (including the very first Advance on
  // a monotonic clock) visits every slot exactly once instead of stepping
  // tick by tick.
  if (target_tick - current_tick_ >= static_cast<int64_t>(slots_.size())) {
    current_tick_ = target_tick;
    for (std::vector<Timer>& slot : slots_) {
      if (slot.empty()) {
        continue;
      }
      firing_.clear();
      size_t keep = 0;
      for (const Timer& timer : slot) {
        if (timer.deadline_ns <= now_ns) {
          firing_.push_back(timer);
        } else {
          slot[keep++] = timer;
        }
      }
      slot.resize(keep);
      pending_ -= firing_.size();
      for (const Timer& timer : firing_) {
        timer.fn(timer.ctx, timer.data);
      }
    }
    return;
  }
  while (current_tick_ < target_tick) {
    ++current_tick_;
    std::vector<Timer>& slot =
        slots_[static_cast<size_t>(current_tick_) & slot_mask_];
    if (slot.empty()) {
      continue;
    }
    firing_.clear();
    size_t keep = 0;
    for (const Timer& timer : slot) {
      if (timer.deadline_ns / tick_ns_ <= current_tick_) {
        firing_.push_back(timer);
      } else {
        slot[keep++] = timer;
      }
    }
    slot.resize(keep);
    pending_ -= firing_.size();
    for (const Timer& timer : firing_) {
      timer.fn(timer.ctx, timer.data);
    }
  }
}

int64_t TimerWheel::NextDeadlineNs() const {
  if (pending_ == 0) {
    return -1;
  }
  // Global minimum over every slot: with rounds, the slot nearest the
  // cursor may hold a later deadline than a slot further away.  Only called
  // when the event loop is about to sleep, so O(slots + pending) is fine.
  int64_t best = -1;
  for (const std::vector<Timer>& slot : slots_) {
    for (const Timer& timer : slot) {
      if (best < 0 || timer.deadline_ns < best) {
        best = timer.deadline_ns;
      }
    }
  }
  // Report when the timer will actually fire — the end of its tick — so a
  // caller sleeping until this instant wakes into an Advance that fires it.
  return (best / tick_ns_ + 1) * tick_ns_;
}

}  // namespace faas
