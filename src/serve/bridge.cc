#include "src/serve/bridge.h"

#include <algorithm>

#include "src/serve/clock.h"

namespace faas {
namespace {

// Queue sweep cadence while requests are parked: bounds how stale a CoDel
// age shed or a per-request deadline shed can be when no completion drains
// the queue (1 ms against sojourn bounds that are tens of ms and up).
constexpr int64_t kQueueSweepIntervalNs = 1'000'000;

// Packs a pending-table key: slot index in the low 32 bits, generation in
// the high 32 (generation 0 never issued, so key 0 means "none").
uint64_t PackKey(uint32_t index, uint32_t generation) {
  return (static_cast<uint64_t>(generation) << 32) | index;
}

}  // namespace

AdmissionBridge::AdmissionBridge(const AdmissionBridgeConfig& config,
                                 TimerWheel* wheel, ReplyFn reply_fn,
                                 void* reply_ctx, LatencyRecorder* latency)
    : config_(config),
      wheel_(wheel),
      reply_fn_(reply_fn),
      reply_ctx_(reply_ctx),
      latency_(latency),
      executors_(std::max(config.num_executors, 1)),
      pool_stride_(std::max<uint32_t>(config.num_functions_hint, 1)),
      hedge_latency_ms_(config.overload.hedge.latency_percentile > 0.0
                            ? config.overload.hedge.latency_percentile / 100.0
                            : 0.99),
      service_ns_(static_cast<int64_t>(config.service_time_us) * 1'000),
      cold_ns_(static_cast<int64_t>(config.cold_start_us) * 1'000),
      keep_alive_ns_(config.keep_alive_ms * 1'000'000),
      memory_mb_(config.container_memory_mb),
      stall_threshold_ns_(config.watchdog.stall_threshold.millis() *
                          1'000'000),
      watchdog_interval_ns_(config.watchdog.interval.millis() * 1'000'000),
      degrade_min_dwell_ns_(config.degrade.min_dwell.millis() * 1'000'000) {
  pools_.resize(executors_.size() * pool_stride_);
  if (config_.overload.breaker.enabled) {
    for (Executor& e : executors_) {
      e.outcomes.assign(std::max(config_.overload.breaker.window, 1), 0);
    }
  }
}

void AdmissionBridge::StartClock(int64_t now_ns) {
  chaos_start_ns_ = now_ns;
  tier_since_ns_ = now_ns;
  for (size_t i = 0; i < config_.chaos.crashes.size(); ++i) {
    wheel_->Schedule(now_ns + config_.chaos.crashes[i].at.millis() * 1'000'000,
                     &AdmissionBridge::ChaosCrashTimer, this, i);
  }
  for (size_t i = 0; i < config_.chaos.stalls.size(); ++i) {
    wheel_->Schedule(now_ns + config_.chaos.stalls[i].at.millis() * 1'000'000,
                     &AdmissionBridge::ChaosStallTimer, this, i);
  }
  if (config_.watchdog.enabled) {
    wheel_->Schedule(now_ns + watchdog_interval_ns_,
                     &AdmissionBridge::WatchdogTimer, this, 0);
  }
}

AdmissionBridge::FunctionPool& AdmissionBridge::PoolFor(int executor,
                                                        uint32_t function_id) {
  if (function_id >= pool_stride_) {
    // Rare resize: re-stride the pool matrix for the larger function space.
    uint32_t stride = pool_stride_;
    while (function_id >= stride) {
      stride *= 2;
    }
    std::vector<FunctionPool> grown(executors_.size() * stride);
    for (size_t e = 0; e < executors_.size(); ++e) {
      for (uint32_t f = 0; f < pool_stride_; ++f) {
        grown[e * stride + f] = std::move(pools_[e * pool_stride_ + f]);
      }
    }
    pools_ = std::move(grown);
    pool_stride_ = stride;
  }
  return pools_[static_cast<size_t>(executor) * pool_stride_ + function_id];
}

uint64_t AdmissionBridge::AllocPending(const Pending& pending) {
  uint32_t index;
  if (!free_pending_.empty()) {
    index = free_pending_.back();
    free_pending_.pop_back();
  } else {
    index = static_cast<uint32_t>(pending_.size());
    pending_.emplace_back();
  }
  const uint32_t generation = pending_[index].generation + 1;
  pending_[index] = pending;
  pending_[index].generation = generation == 0 ? 1 : generation;
  return PackKey(index, pending_[index].generation);
}

AdmissionBridge::Pending* AdmissionBridge::LookupPending(uint64_t key) {
  const uint32_t index = static_cast<uint32_t>(key);
  const uint32_t generation = static_cast<uint32_t>(key >> 32);
  if (index >= pending_.size() || pending_[index].generation != generation ||
      pending_[index].executor < 0) {
    return nullptr;
  }
  return &pending_[index];
}

void AdmissionBridge::FreePending(uint64_t key) {
  const uint32_t index = static_cast<uint32_t>(key);
  pending_[index].executor = -1;  // Marks the slot dead for LookupPending.
  free_pending_.push_back(index);
}

void AdmissionBridge::EmitReply(uint64_t conn_token, uint64_t request_id,
                                ReplyStatus status, LatencyClass latency_class,
                                int64_t arrival_ns, int64_t now_ns) {
  ReplyFrame reply;
  reply.request_id = request_id;
  reply.status = status;
  reply.latency_class = latency_class;
  const int64_t us = (now_ns - arrival_ns) / 1'000;
  reply.latency_us = us > 0 ? static_cast<uint32_t>(us) : 0;
  if (config_.dedupe != nullptr) {
    if (status == ReplyStatus::kOk) {
      // Cache the success so a retry of this id re-emits instead of
      // re-executing.
      config_.dedupe->Done(request_id, reply, now_ns);
    } else {
      // Retriable outcome: release the claim so the retry re-attempts.
      config_.dedupe->Forget(request_id);
    }
  }
  reply_fn_(reply_ctx_, conn_token, reply);
}

void AdmissionBridge::OnRequest(uint64_t conn_token, const RequestFrame& frame,
                                int64_t now_ns) {
  ++stats_.requests;
  last_now_ns_ = now_ns;
  if (config_.dedupe != nullptr) {
    ReplyFrame cached;
    switch (config_.dedupe->Begin(frame.request_id, now_ns, &cached)) {
      case serve::IdempotencyIndex::Claim::kDone:
        // The original already succeeded: re-emit its reply, never
        // re-execute.
        ++recovery_.retries_deduped;
        reply_fn_(reply_ctx_, conn_token, cached);
        return;
      case serve::IdempotencyIndex::Claim::kInflight:
        // Original still running (likely replying toward a dead conn).  No
        // reply; the client's next retry lands after Done() caches it.
        ++recovery_.dupes_inflight;
        return;
      case serve::IdempotencyIndex::Claim::kFresh:
        break;
    }
    ++recovery_.executions;
  }
  if (config_.degrade.enabled) {
    UpdateDegrade(now_ns);
    if (degrade_tier_ >= 2 && !frame.retry) {
      bool shed = degrade_tier_ >= 3;
      if (!shed) {
        // Tier 2 sheds fresh traffic that would cold-start.  Cheap probe:
        // the home shard's pool; a live entry there means a warm path
        // plausibly exists.
        const int home = static_cast<int>(
            frame.function_id % static_cast<uint32_t>(executors_.size()));
        FunctionPool& pool = PoolFor(home, frame.function_id);
        shed = pool.idle_expiry_ns.empty() ||
               pool.idle_expiry_ns.back() <= now_ns;
      }
      if (shed) {
        ++recovery_.shed_degraded;
        EmitReply(conn_token, frame.request_id, ReplyStatus::kShedDegraded,
                  LatencyClass::kUnknown, now_ns, now_ns);
        return;
      }
    }
  }
  const int executor = PickExecutor(frame.function_id, -1);
  if (executor >= 0) {
    Execute(executor, conn_token, frame, now_ns, now_ns, false, 0);
    return;
  }
  if (config_.overload.admission.enabled()) {
    Enqueue(conn_token, frame, now_ns);
    return;
  }
  ++stats_.rejected;
  EmitReply(conn_token, frame.request_id, ReplyStatus::kRejected,
            LatencyClass::kUnknown, now_ns, now_ns);
}

int AdmissionBridge::PickExecutor(uint32_t function_id, int exclude) {
  const int n = static_cast<int>(executors_.size());
  const int cap = config_.overload.invoker_concurrency_cap;
  const bool breakers = config_.overload.breaker.enabled;
  const int home = static_cast<int>(function_id % static_cast<uint32_t>(n));
  for (int k = 0; k < n; ++k) {
    const int ex = home + k < n ? home + k : home + k - n;
    if (ex == exclude) {
      continue;
    }
    Executor& e = executors_[ex];
    if (e.health != ExecHealth::kUp) {
      // Crashed shards have no slots; stalled shards would strand the
      // execution until the watchdog notices.
      ++recovery_.unhealthy_skips;
      continue;
    }
    if (breakers && !BreakerAdmits(e)) {
      ++ledger_.breaker_rejections;
      continue;
    }
    if (cap > 0 && e.inflight >= cap) {
      ++ledger_.cap_rejections;
      continue;
    }
    return ex;
  }
  return -1;
}

void AdmissionBridge::Execute(int executor, uint64_t conn_token,
                              const RequestFrame& frame, int64_t arrival_ns,
                              int64_t now_ns, bool is_hedge,
                              uint64_t primary_key) {
  Executor& e = executors_[executor];
  ++e.inflight;
  ++inflight_;
  bool probe = false;
  if (config_.overload.breaker.enabled && e.mode == BreakerMode::kHalfOpen) {
    ++e.half_open_inflight;
    probe = true;
  }

  // Warm-pool lookup.  Idle expiries are pushed in completion order, so the
  // deque is ascending: trim expired containers off the cold end, then any
  // survivor is warm.
  FunctionPool& pool = PoolFor(executor, frame.function_id);
  while (!pool.idle_expiry_ns.empty() &&
         pool.idle_expiry_ns.front() <= now_ns) {
    pool.idle_expiry_ns.pop_front();
    ++stats_.evictions;
    // An expired entry sat idle for its whole keep-alive window.
    resources_.idle_mb_ms +=
        memory_mb_ * static_cast<double>(keep_alive_ns_) / 1e6;
    ++resources_.expirations;
  }
  bool cold = true;
  if (!pool.idle_expiry_ns.empty()) {
    const int64_t expiry_ns = pool.idle_expiry_ns.back();
    pool.idle_expiry_ns.pop_back();
    cold = false;
    // Lazy settle: the idle stretch began when the expiry was armed.
    resources_.idle_mb_ms +=
        memory_mb_ *
        static_cast<double>(now_ns - (expiry_ns - keep_alive_ns_)) / 1e6;
    ++resources_.warm_hits;
  } else {
    ++resources_.cold_loads;
  }

  int64_t total_ns = service_ns_ + (cold ? cold_ns_ : 0);
  if (!config_.chaos.spikes.empty()) {
    const double multiplier =
        config_.chaos.LatencyMultiplierAtNs(now_ns - chaos_start_ns_);
    if (multiplier != 1.0) {
      total_ns =
          static_cast<int64_t>(static_cast<double>(total_ns) * multiplier);
    }
  }
  ++resources_.invocations;
  const double exec_ms = static_cast<double>(total_ns) / 1e6;
  resources_.cpu_ms += exec_ms;
  resources_.busy_mb_ms += memory_mb_ * exec_ms;
  if (total_ns == 0) {
    // Inline completion: the request never outlives this call.
    --e.inflight;
    --inflight_;
    if (keep_alive_ns_ > 0) {
      pool.idle_expiry_ns.push_back(now_ns + keep_alive_ns_);
    }
    if (cold) {
      ++stats_.served_cold;
    } else {
      ++stats_.served_warm;
    }
    const double latency_ms =
        static_cast<double>(now_ns - arrival_ns) / 1e6;
    if (config_.overload.breaker.enabled) {
      const double threshold = config_.overload.breaker.latency_threshold_ms;
      RecordOutcome(executor, threshold > 0.0 && latency_ms > threshold,
                    probe, now_ns);
    }
    if (config_.overload.hedge.enabled()) {
      hedge_latency_ms_.Add(latency_ms);
    }
    if (latency_ != nullptr) {
      latency_->Record(now_ns - arrival_ns);
    }
    EmitReply(conn_token, frame.request_id, ReplyStatus::kOk,
              cold ? LatencyClass::kCold : LatencyClass::kWarm, arrival_ns,
              now_ns);
    if (!queue_.empty() && !in_drain_) {
      DrainQueue(now_ns);
    }
    return;
  }

  Pending pending;
  pending.conn_token = conn_token;
  pending.request_id = frame.request_id;
  pending.function_id = frame.function_id;
  pending.arrival_ns = arrival_ns;
  pending.executor = executor;
  pending.cold = cold;
  pending.is_hedge = is_hedge;
  pending.half_open_probe = probe;
  pending.deadline_us = frame.deadline_us;
  pending.complete_ns = now_ns + total_ns;
  const uint64_t key = AllocPending(pending);
  if (is_hedge && primary_key != 0) {
    pending_[static_cast<uint32_t>(key)].partner = primary_key;
    if (Pending* primary = LookupPending(primary_key)) {
      primary->partner = key;
    }
  }
  wheel_->Schedule(now_ns + total_ns, &AdmissionBridge::CompletionTimer, this,
                   key);
  if (!is_hedge && cold && config_.overload.hedge.enabled() &&
      executors_.size() > 1) {
    if (config_.degrade.enabled && degrade_tier_ >= 1) {
      // Tier 1: hedging is the first load we shed.
      ++recovery_.hedges_suppressed;
    } else {
      wheel_->Schedule(now_ns + HedgeDelayNs(), &AdmissionBridge::HedgeTimer,
                       this, key);
    }
  }
}

void AdmissionBridge::CompletionTimer(void* ctx, uint64_t data) {
  auto* bridge = static_cast<AdmissionBridge*>(ctx);
  bridge->Complete(data, MonotonicNowNs());
}

void AdmissionBridge::Complete(uint64_t key, int64_t now_ns) {
  Pending* p = LookupPending(key);
  if (p == nullptr) {
    return;
  }
  last_now_ns_ = now_ns;
  Executor& e = executors_[p->executor];
  if (e.health == ExecHealth::kStalled && !draining_) {
    // The shard is wedged: the execution hangs (still holding its slot)
    // until an unstall releases it or a watchdog restart fails it.
    e.frozen.push_back(key);
    return;
  }
  --e.inflight;
  --inflight_;
  if (keep_alive_ns_ > 0) {
    PoolFor(p->executor, p->function_id)
        .idle_expiry_ns.push_back(now_ns + keep_alive_ns_);
  }

  if (p->dead) {
    // Lost the hedge race: the execution ran to completion as a zombie and
    // only now returns its slot and container (controller semantics).
    ++stats_.hedge_zombies;
    if (p->half_open_probe && config_.overload.breaker.enabled) {
      --e.half_open_inflight;
    }
    FreePending(key);
    if (!queue_.empty() && !in_drain_) {
      DrainQueue(now_ns);
    }
    return;
  }

  if (p->partner != 0) {
    if (Pending* partner = LookupPending(p->partner)) {
      partner->dead = true;
      partner->partner = 0;
    }
    if (p->is_hedge) {
      ++ledger_.hedge_wins;
    } else {
      ++ledger_.hedge_primary_wins;
    }
  }

  if (p->cold) {
    ++stats_.served_cold;
  } else {
    ++stats_.served_warm;
  }
  const double latency_ms = static_cast<double>(now_ns - p->arrival_ns) / 1e6;
  if (config_.overload.breaker.enabled) {
    const double threshold = config_.overload.breaker.latency_threshold_ms;
    RecordOutcome(p->executor, threshold > 0.0 && latency_ms > threshold,
                  p->half_open_probe, now_ns);
  }
  if (config_.overload.hedge.enabled()) {
    hedge_latency_ms_.Add(latency_ms);
  }
  if (latency_ != nullptr) {
    latency_->Record(now_ns - p->arrival_ns);
  }
  EmitReply(p->conn_token, p->request_id, ReplyStatus::kOk,
            p->cold ? LatencyClass::kCold : LatencyClass::kWarm,
            p->arrival_ns, now_ns);
  FreePending(key);
  if (!queue_.empty() && !in_drain_) {
    DrainQueue(now_ns);
  }
}

void AdmissionBridge::HedgeTimer(void* ctx, uint64_t data) {
  auto* bridge = static_cast<AdmissionBridge*>(ctx);
  bridge->LaunchHedge(data, MonotonicNowNs());
}

void AdmissionBridge::LaunchHedge(uint64_t key, int64_t now_ns) {
  Pending* p = LookupPending(key);
  if (p == nullptr || p->dead || p->partner != 0 || draining_) {
    return;
  }
  if (config_.degrade.enabled && degrade_tier_ >= 1) {
    // Escalated after this hedge was armed.
    ++recovery_.hedges_suppressed;
    return;
  }
  const int executor = PickExecutor(p->function_id, p->executor);
  if (executor < 0) {
    ++ledger_.hedges_unplaced;
    return;
  }
  ++ledger_.hedges_launched;
  RequestFrame frame;
  frame.request_id = p->request_id;
  frame.function_id = p->function_id;
  frame.deadline_us = p->deadline_us;
  const int64_t arrival_ns = p->arrival_ns;
  const uint64_t conn_token = p->conn_token;
  // Execute() may grow pending_, invalidating `p` — copied what we need.
  Execute(executor, conn_token, frame, arrival_ns, now_ns, true, key);
}

int64_t AdmissionBridge::HedgeDelayNs() {
  const HedgeConfig& hedge = config_.overload.hedge;
  const int64_t min_after_ns = hedge.min_after.millis() * 1'000'000;
  if (hedge.latency_percentile > 0.0 && hedge_latency_ms_.count() >= 32) {
    const auto estimate_ns =
        static_cast<int64_t>(hedge_latency_ms_.Value() * 1e6);
    return std::max(min_after_ns, estimate_ns);
  }
  if (hedge.after > Duration::Zero()) {
    return hedge.after.millis() * 1'000'000;
  }
  return min_after_ns;
}

void AdmissionBridge::Enqueue(uint64_t conn_token, const RequestFrame& frame,
                              int64_t now_ns) {
  const AdmissionQueueConfig& adm = config_.overload.admission;
  if (queue_.size() >= static_cast<size_t>(adm.capacity)) {
    if (adm.discipline == AdmissionDiscipline::kLifo) {
      // LIFO sheds the OLDEST queued request to admit the newcomer.
      const QueuedRequest old = queue_.front();
      queue_.pop_front();
      ++ledger_.shed_queue_full;
      EmitReply(old.conn_token, old.request_id, ReplyStatus::kShedQueueFull,
                LatencyClass::kUnknown, old.arrival_ns, now_ns);
    } else {
      ++ledger_.shed_queue_full;
      EmitReply(conn_token, frame.request_id, ReplyStatus::kShedQueueFull,
                LatencyClass::kUnknown, now_ns, now_ns);
      return;
    }
  }
  queue_.push_back(QueuedRequest{conn_token, frame.request_id,
                                 frame.function_id, frame.deadline_us,
                                 now_ns});
  ++ledger_.queued;
  ArmQueueSweep(now_ns);
}

void AdmissionBridge::DrainQueue(int64_t now_ns) {
  const AdmissionQueueConfig& adm = config_.overload.admission;
  const bool lifo = adm.discipline == AdmissionDiscipline::kLifo;
  const bool codel = adm.discipline == AdmissionDiscipline::kCoDel;
  const int64_t max_wait_ns = adm.max_wait.millis() * 1'000'000;
  in_drain_ = true;
  while (!queue_.empty()) {
    QueuedRequest& head = lifo ? queue_.back() : queue_.front();
    const int64_t age_ns = now_ns - head.arrival_ns;
    ReplyStatus shed = ReplyStatus::kOk;
    if (codel && age_ns > max_wait_ns) {
      shed = ReplyStatus::kShedDeadline;
    } else if (head.deadline_us > 0 &&
               age_ns > static_cast<int64_t>(head.deadline_us) * 1'000) {
      shed = ReplyStatus::kShedDeadline;
    }
    if (shed != ReplyStatus::kOk) {
      ++ledger_.shed_deadline;
      EmitReply(head.conn_token, head.request_id, shed,
                LatencyClass::kUnknown, head.arrival_ns, now_ns);
      if (lifo) {
        queue_.pop_back();
      } else {
        queue_.pop_front();
      }
      continue;
    }
    const int executor = PickExecutor(head.function_id, -1);
    if (executor < 0) {
      break;
    }
    const QueuedRequest req = head;
    if (lifo) {
      queue_.pop_back();
    } else {
      queue_.pop_front();
    }
    ++ledger_.drained;
    const double wait_ms = static_cast<double>(age_ns) / 1e6;
    ledger_.total_queue_wait_ms += wait_ms;
    ledger_.max_queue_wait_ms = std::max(ledger_.max_queue_wait_ms, wait_ms);
    RequestFrame frame;
    frame.request_id = req.request_id;
    frame.function_id = req.function_id;
    frame.deadline_us = req.deadline_us;
    Execute(executor, req.conn_token, frame, req.arrival_ns, now_ns, false, 0);
  }
  in_drain_ = false;
}

void AdmissionBridge::ArmQueueSweep(int64_t now_ns) {
  if (queue_sweep_armed_ || queue_.empty() || draining_) {
    return;
  }
  queue_sweep_armed_ = true;
  wheel_->Schedule(now_ns + kQueueSweepIntervalNs,
                   &AdmissionBridge::QueueSweepTimer, this, 0);
}

void AdmissionBridge::QueueSweepTimer(void* ctx, uint64_t /*data*/) {
  auto* bridge = static_cast<AdmissionBridge*>(ctx);
  bridge->queue_sweep_armed_ = false;
  if (bridge->draining_) {
    return;
  }
  const int64_t now_ns = MonotonicNowNs();
  bridge->last_now_ns_ = now_ns;
  if (!bridge->in_drain_) {
    bridge->DrainQueue(now_ns);
  }
  bridge->ArmQueueSweep(now_ns);
}

bool AdmissionBridge::BreakerAdmits(const Executor& e) const {
  switch (e.mode) {
    case BreakerMode::kClosed:
      return true;
    case BreakerMode::kOpen:
      return false;
    case BreakerMode::kHalfOpen:
      return e.half_open_inflight < config_.overload.breaker.half_open_probes;
  }
  return true;
}

void AdmissionBridge::RecordOutcome(int executor, bool bad,
                                    bool was_half_open_probe, int64_t now_ns) {
  Executor& e = executors_[executor];
  const CircuitBreakerConfig& cfg = config_.overload.breaker;
  if (was_half_open_probe) {
    --e.half_open_inflight;
    if (e.mode == BreakerMode::kHalfOpen) {
      if (bad) {
        OpenBreaker(executor, now_ns);
      } else if (++e.half_open_good >= cfg.half_open_probes) {
        CloseBreaker(executor, now_ns);
      }
    }
    return;
  }
  if (e.mode != BreakerMode::kClosed) {
    return;  // Straggler outcome while open/half-open: not part of a window.
  }
  const int8_t value = bad ? 1 : 0;
  if (e.window_count == static_cast<int>(e.outcomes.size())) {
    e.bad_count -= e.outcomes[e.window_pos];
  } else {
    ++e.window_count;
  }
  e.outcomes[e.window_pos] = value;
  e.bad_count += value;
  e.window_pos = (e.window_pos + 1) % static_cast<int>(e.outcomes.size());
  if (e.window_count >= cfg.min_samples &&
      static_cast<double>(e.bad_count) >=
          cfg.failure_threshold * static_cast<double>(e.window_count)) {
    OpenBreaker(executor, now_ns);
  }
}

void AdmissionBridge::OpenBreaker(int executor, int64_t now_ns) {
  Executor& e = executors_[executor];
  if (e.mode != BreakerMode::kOpen) {
    ++open_breakers_;
  }
  e.mode = BreakerMode::kOpen;
  ++e.breaker_epoch;
  e.half_open_inflight = 0;
  e.half_open_good = 0;
  ++ledger_.breaker_opens;
  if (!e.degraded) {
    e.degraded = true;
    e.degraded_since_ns = now_ns;
  }
  const int64_t open_ns =
      config_.overload.breaker.open_duration.millis() * 1'000'000;
  wheel_->Schedule(now_ns + open_ns, &AdmissionBridge::BreakerTimer, this,
                   PackKey(static_cast<uint32_t>(executor), e.breaker_epoch));
}

void AdmissionBridge::BreakerTimer(void* ctx, uint64_t data) {
  auto* bridge = static_cast<AdmissionBridge*>(ctx);
  const auto executor = static_cast<int>(static_cast<uint32_t>(data));
  const auto epoch = static_cast<uint32_t>(data >> 32);
  Executor& e = bridge->executors_[executor];
  // A re-open since this timer was armed mints a new epoch; stale timers
  // must not half-open the newer open interval early.
  if (e.breaker_epoch != epoch || e.mode != BreakerMode::kOpen) {
    return;
  }
  bridge->HalfOpenBreaker(executor, MonotonicNowNs());
}

void AdmissionBridge::HalfOpenBreaker(int executor, int64_t now_ns) {
  Executor& e = executors_[executor];
  if (e.mode == BreakerMode::kOpen) {
    --open_breakers_;
  }
  e.mode = BreakerMode::kHalfOpen;
  e.half_open_inflight = 0;
  e.half_open_good = 0;
  ++ledger_.breaker_half_opens;
  last_now_ns_ = now_ns;
  // Probes arrive via normal dispatch; the queue may hold candidates.
  if (!queue_.empty() && !in_drain_) {
    DrainQueue(now_ns);
  }
}

void AdmissionBridge::CloseBreaker(int executor, int64_t now_ns) {
  Executor& e = executors_[executor];
  e.mode = BreakerMode::kClosed;
  std::fill(e.outcomes.begin(), e.outcomes.end(), 0);
  e.window_pos = 0;
  e.window_count = 0;
  e.bad_count = 0;
  ++ledger_.breaker_closes;
  if (e.degraded) {
    const double open_ms =
        static_cast<double>(now_ns - e.degraded_since_ns) / 1e6;
    ++ledger_.breaker_open_intervals;
    ledger_.total_breaker_open_ms += open_ms;
    ledger_.max_breaker_open_ms =
        std::max(ledger_.max_breaker_open_ms, open_ms);
    e.degraded = false;
  }
}

void AdmissionBridge::ChaosCrashTimer(void* ctx, uint64_t data) {
  auto* bridge = static_cast<AdmissionBridge*>(ctx);
  if (bridge->draining_) {
    return;
  }
  const serve::ExecCrashEvent& event = bridge->config_.chaos.crashes[data];
  const int64_t now_ns = MonotonicNowNs();
  bridge->CrashExecutor(event.executor, now_ns);
  // Heal keyed by the post-crash epoch: a watchdog rebuild in between
  // bumps it and this heal becomes a no-op.
  bridge->wheel_->Schedule(
      now_ns + event.downtime.millis() * 1'000'000,
      &AdmissionBridge::ChaosHealTimer, bridge,
      PackKey(static_cast<uint32_t>(event.executor),
              bridge->executors_[event.executor].health_epoch));
}

void AdmissionBridge::ChaosHealTimer(void* ctx, uint64_t data) {
  auto* bridge = static_cast<AdmissionBridge*>(ctx);
  if (bridge->draining_) {
    return;
  }
  const auto executor = static_cast<int>(static_cast<uint32_t>(data));
  const auto epoch = static_cast<uint32_t>(data >> 32);
  Executor& e = bridge->executors_[executor];
  if (e.health != ExecHealth::kCrashed || e.health_epoch != epoch) {
    return;
  }
  bridge->RestartExecutor(executor, MonotonicNowNs(), false);
}

void AdmissionBridge::ChaosStallTimer(void* ctx, uint64_t data) {
  auto* bridge = static_cast<AdmissionBridge*>(ctx);
  if (bridge->draining_) {
    return;
  }
  const serve::ExecStallEvent& event = bridge->config_.chaos.stalls[data];
  const int64_t now_ns = MonotonicNowNs();
  bridge->StallExecutor(event.executor, now_ns);
  bridge->wheel_->Schedule(
      now_ns + event.duration.millis() * 1'000'000,
      &AdmissionBridge::ChaosUnstallTimer, bridge,
      PackKey(static_cast<uint32_t>(event.executor),
              bridge->executors_[event.executor].health_epoch));
}

void AdmissionBridge::ChaosUnstallTimer(void* ctx, uint64_t data) {
  auto* bridge = static_cast<AdmissionBridge*>(ctx);
  if (bridge->draining_) {
    return;
  }
  const auto executor = static_cast<int>(static_cast<uint32_t>(data));
  const auto epoch = static_cast<uint32_t>(data >> 32);
  Executor& e = bridge->executors_[executor];
  if (e.health != ExecHealth::kStalled || e.health_epoch != epoch) {
    return;  // The watchdog already rebuilt the shard.
  }
  bridge->UnstallExecutor(executor, MonotonicNowNs());
}

void AdmissionBridge::WatchdogTimer(void* ctx, uint64_t /*data*/) {
  auto* bridge = static_cast<AdmissionBridge*>(ctx);
  if (bridge->draining_) {
    return;
  }
  bridge->WatchdogScan(MonotonicNowNs());
}

void AdmissionBridge::CrashExecutor(int executor, int64_t now_ns) {
  Executor& e = executors_[executor];
  if (e.health == ExecHealth::kCrashed) {
    return;
  }
  if (e.health == ExecHealth::kUp) {
    ++unhealthy_;
    e.down_since_ns = now_ns;  // A stalled shard keeps its earlier stamp.
  }
  e.health = ExecHealth::kCrashed;
  ++e.health_epoch;
  FailInflightOn(executor, now_ns);
  QuarantinePools(executor, now_ns);
  // The shard rejoins with a fresh breaker; close the books on an open
  // interval so OverloadLedger dwell accounting stays consistent.
  if (config_.overload.breaker.enabled) {
    if (e.mode == BreakerMode::kOpen) {
      --open_breakers_;
    }
    e.mode = BreakerMode::kClosed;
    std::fill(e.outcomes.begin(), e.outcomes.end(), 0);
    e.window_pos = 0;
    e.window_count = 0;
    e.bad_count = 0;
    e.half_open_inflight = 0;
    e.half_open_good = 0;
    ++e.breaker_epoch;
    if (e.degraded) {
      const double open_ms =
          static_cast<double>(now_ns - e.degraded_since_ns) / 1e6;
      ++ledger_.breaker_open_intervals;
      ledger_.total_breaker_open_ms += open_ms;
      ledger_.max_breaker_open_ms =
          std::max(ledger_.max_breaker_open_ms, open_ms);
      e.degraded = false;
    }
  }
  if (config_.degrade.enabled) {
    UpdateDegrade(now_ns);
  }
}

void AdmissionBridge::StallExecutor(int executor, int64_t now_ns) {
  Executor& e = executors_[executor];
  if (e.health != ExecHealth::kUp) {
    return;
  }
  ++unhealthy_;
  e.health = ExecHealth::kStalled;
  ++e.health_epoch;
  e.down_since_ns = now_ns;
  if (config_.degrade.enabled) {
    UpdateDegrade(now_ns);
  }
}

void AdmissionBridge::UnstallExecutor(int executor, int64_t now_ns) {
  Executor& e = executors_[executor];
  e.health = ExecHealth::kUp;
  ++e.health_epoch;
  --unhealthy_;
  ++recovery_.recoveries;
  const double mttr_ms = static_cast<double>(now_ns - e.down_since_ns) / 1e6;
  recovery_.total_mttr_ms += mttr_ms;
  recovery_.max_mttr_ms = std::max(recovery_.max_mttr_ms, mttr_ms);
  // Frozen executions thaw and complete late.
  std::vector<uint64_t> frozen = std::move(e.frozen);
  e.frozen.clear();
  for (const uint64_t key : frozen) {
    Complete(key, now_ns);
  }
  if (!queue_.empty() && !in_drain_) {
    DrainQueue(now_ns);
  }
}

void AdmissionBridge::RestartExecutor(int executor, int64_t now_ns,
                                      bool by_watchdog) {
  Executor& e = executors_[executor];
  if (by_watchdog) {
    // Rebuilding mid-outage: stranded executions fail, warm state is
    // suspect and quarantined, the breaker window restarts.
    FailInflightOn(executor, now_ns);
    QuarantinePools(executor, now_ns);
    if (config_.overload.breaker.enabled) {
      if (e.mode == BreakerMode::kOpen) {
        --open_breakers_;
      }
      e.mode = BreakerMode::kClosed;
      std::fill(e.outcomes.begin(), e.outcomes.end(), 0);
      e.window_pos = 0;
      e.window_count = 0;
      e.bad_count = 0;
      e.half_open_inflight = 0;
      e.half_open_good = 0;
      ++e.breaker_epoch;
    }
    ++recovery_.watchdog_restarts;
  } else {
    ++recovery_.crash_restarts;
  }
  if (e.health != ExecHealth::kUp) {
    --unhealthy_;
  }
  e.health = ExecHealth::kUp;
  ++e.health_epoch;
  ++recovery_.recoveries;
  const double mttr_ms = static_cast<double>(now_ns - e.down_since_ns) / 1e6;
  recovery_.total_mttr_ms += mttr_ms;
  recovery_.max_mttr_ms = std::max(recovery_.max_mttr_ms, mttr_ms);
  if (config_.degrade.enabled) {
    UpdateDegrade(now_ns);
  }
  // Fresh slots: rescue parked work instead of waiting for the sweep.
  if ((!by_watchdog || config_.watchdog.rescue_queued) && !queue_.empty() &&
      !in_drain_) {
    const int64_t drained_before = ledger_.drained;
    DrainQueue(now_ns);
    recovery_.requests_rescued += ledger_.drained - drained_before;
  }
}

void AdmissionBridge::FailInflightOn(int executor, int64_t now_ns) {
  Executor& e = executors_[executor];
  for (uint32_t index = 0; index < pending_.size(); ++index) {
    Pending& p = pending_[index];
    if (p.executor != executor) {
      continue;  // Free slots carry executor = -1.
    }
    const uint64_t key = PackKey(index, p.generation);
    --e.inflight;
    --inflight_;
    if (p.dead) {
      // Zombie: its request was already answered by the hedge winner.
      FreePending(key);
      continue;
    }
    if (p.partner != 0) {
      if (Pending* partner = LookupPending(p.partner)) {
        // The hedge partner runs on another shard and is now the sole
        // owner; it will deliver the reply.
        partner->partner = 0;
        FreePending(key);
        continue;
      }
    }
    ++recovery_.inflight_failed;
    EmitReply(p.conn_token, p.request_id, ReplyStatus::kFailed,
              LatencyClass::kUnknown, p.arrival_ns, now_ns);
    FreePending(key);
  }
  e.frozen.clear();
}

void AdmissionBridge::QuarantinePools(int executor, int64_t now_ns) {
  for (uint32_t f = 0; f < pool_stride_; ++f) {
    FunctionPool& pool =
        pools_[static_cast<size_t>(executor) * pool_stride_ + f];
    for (const int64_t expiry_ns : pool.idle_expiry_ns) {
      const int64_t idle_ns = std::clamp<int64_t>(
          now_ns - (expiry_ns - keep_alive_ns_), 0, keep_alive_ns_);
      resources_.idle_mb_ms += memory_mb_ * static_cast<double>(idle_ns) / 1e6;
      ++resources_.evictions;
      ++recovery_.warm_quarantined;
    }
    pool.idle_expiry_ns.clear();
  }
}

void AdmissionBridge::WatchdogScan(int64_t now_ns) {
  last_now_ns_ = now_ns;
  // An execution overdue past its scheduled completion by more than the
  // stall threshold means its shard stopped completing work (the wheel
  // fires never-early / at-most-one-tick-late, so a healthy shard cannot
  // trip this).
  std::vector<int64_t> oldest_due(executors_.size(), 0);
  for (const Pending& p : pending_) {
    if (p.executor < 0) {
      continue;
    }
    if (now_ns - p.complete_ns > stall_threshold_ns_) {
      int64_t& due = oldest_due[p.executor];
      due = due == 0 ? p.complete_ns : std::min(due, p.complete_ns);
    }
  }
  for (size_t ex = 0; ex < executors_.size(); ++ex) {
    if (oldest_due[ex] == 0) {
      continue;
    }
    Executor& e = executors_[ex];
    if (e.health == ExecHealth::kCrashed) {
      continue;  // The crash heal timer owns this outage.
    }
    if (e.health == ExecHealth::kUp) {
      // A stall the chaos plan never announced (or real lost work): the
      // outage began when the oldest stuck execution came due.
      ++unhealthy_;
      e.health = ExecHealth::kStalled;
      ++e.health_epoch;
      e.down_since_ns = oldest_due[ex];
    }
    RestartExecutor(static_cast<int>(ex), now_ns, true);
  }
  if (config_.dedupe != nullptr) {
    config_.dedupe->Sweep(now_ns);
  }
  if (config_.degrade.enabled) {
    UpdateDegrade(now_ns);
  }
  wheel_->Schedule(now_ns + watchdog_interval_ns_,
                   &AdmissionBridge::WatchdogTimer, this, 0);
}

double AdmissionBridge::DegradePressure() const {
  double pressure = 0.0;
  const AdmissionQueueConfig& adm = config_.overload.admission;
  if (adm.enabled() && adm.capacity > 0) {
    pressure = static_cast<double>(queue_.size()) /
               static_cast<double>(adm.capacity);
  }
  const int bad = open_breakers_ + unhealthy_;
  if (bad > 0) {
    pressure = std::max(pressure, static_cast<double>(bad) /
                                      static_cast<double>(executors_.size()));
  }
  return pressure;
}

void AdmissionBridge::UpdateDegrade(int64_t now_ns) {
  const double pressure = DegradePressure();
  int tier = degrade_tier_;
  const bool dwelt = now_ns - tier_since_ns_ >= degrade_min_dwell_ns_;
  if (pressure >= config_.degrade.enter_pressure) {
    // First escalation is immediate; further tiers require the dwell so a
    // single burst cannot slam straight to retry-only.
    if (tier < kDegradeTiers - 1 && (tier == 0 || dwelt)) {
      ++tier;
    }
  } else if (pressure <= config_.degrade.exit_pressure) {
    if (tier > 0 && dwelt) {
      --tier;
    }
  }
  if (tier == degrade_tier_) {
    return;
  }
  if (degrade_engaged_) {
    recovery_.tier_dwell_ms[degrade_tier_] +=
        static_cast<double>(now_ns - tier_since_ns_) / 1e6;
  }
  if (tier > degrade_tier_) {
    ++recovery_.degrade_escalations;
    degrade_engaged_ = true;
  } else {
    ++recovery_.degrade_recoveries;
  }
  recovery_.degrade_max_tier =
      std::max(recovery_.degrade_max_tier, static_cast<int64_t>(tier));
  degrade_tier_ = tier;
  tier_since_ns_ = now_ns;
}

void AdmissionBridge::Drain(int64_t now_ns) {
  draining_ = true;
  // Executions stranded on crashed/stalled shards cannot complete before
  // the drain deadline; fail them now so every accepted request still gets
  // exactly one reply.
  for (size_t ex = 0; ex < executors_.size(); ++ex) {
    if (executors_[ex].health != ExecHealth::kUp) {
      FailInflightOn(static_cast<int>(ex), now_ns);
    }
  }
  if (config_.degrade.enabled && degrade_engaged_) {
    recovery_.tier_dwell_ms[degrade_tier_] +=
        static_cast<double>(now_ns - tier_since_ns_) / 1e6;
    tier_since_ns_ = now_ns;
  }
  for (const QueuedRequest& req : queue_) {
    ++ledger_.shed_at_shutdown;
    EmitReply(req.conn_token, req.request_id, ReplyStatus::kShedShutdown,
              LatencyClass::kUnknown, req.arrival_ns, now_ns);
  }
  queue_.clear();
  // Settle warm-pool idle time not yet observed by a trim or a warm hit.
  // Entries pushed by completions after this point charge nothing.
  for (FunctionPool& pool : pools_) {
    for (const int64_t expiry_ns : pool.idle_expiry_ns) {
      const int64_t idle_ns = std::clamp<int64_t>(
          now_ns - (expiry_ns - keep_alive_ns_), 0, keep_alive_ns_);
      resources_.idle_mb_ms += memory_mb_ * static_cast<double>(idle_ns) / 1e6;
      if (expiry_ns <= now_ns) {
        ++resources_.expirations;
      }
    }
    pool.idle_expiry_ns.clear();
  }
  // Close the books on breakers still degraded at shutdown.
  for (Executor& e : executors_) {
    if (e.degraded) {
      const double open_ms =
          static_cast<double>(now_ns - e.degraded_since_ns) / 1e6;
      ++ledger_.breaker_open_intervals;
      ledger_.total_breaker_open_ms += open_ms;
      ledger_.max_breaker_open_ms =
          std::max(ledger_.max_breaker_open_ms, open_ms);
      e.degraded = false;
    }
  }
}

}  // namespace faas
