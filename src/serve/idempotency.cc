#include "src/serve/idempotency.h"

namespace faas::serve {

IdempotencyIndex::IdempotencyIndex(int64_t ttl_ns, int shards)
    : ttl_ns_(ttl_ns), mask_(static_cast<uint64_t>(shards - 1)),
      shards_(static_cast<size_t>(shards)) {}

IdempotencyIndex::Claim IdempotencyIndex::Begin(uint64_t request_id,
                                                int64_t now_ns,
                                                ReplyFrame* cached) {
  (void)now_ns;
  Shard& shard = ShardFor(request_id);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto [it, inserted] = shard.entries.try_emplace(request_id);
  if (inserted) {
    return Claim::kFresh;
  }
  if (!it->second.done) {
    return Claim::kInflight;
  }
  if (cached != nullptr) {
    *cached = it->second.reply;
  }
  return Claim::kDone;
}

void IdempotencyIndex::Done(uint64_t request_id, const ReplyFrame& reply,
                            int64_t now_ns) {
  Shard& shard = ShardFor(request_id);
  std::lock_guard<std::mutex> lock(shard.mu);
  Entry& entry = shard.entries[request_id];
  entry.done = true;
  entry.done_ns = now_ns;
  entry.reply = reply;
}

void IdempotencyIndex::Forget(uint64_t request_id) {
  Shard& shard = ShardFor(request_id);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.entries.find(request_id);
  // Only release inflight claims: a concurrent retry may have completed
  // the id on another loop, and a cached success must stay cached.
  if (it != shard.entries.end() && !it->second.done) {
    shard.entries.erase(it);
  }
}

void IdempotencyIndex::Sweep(int64_t now_ns) {
  if (ttl_ns_ <= 0) {
    return;
  }
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    for (auto it = shard.entries.begin(); it != shard.entries.end();) {
      if (it->second.done && now_ns - it->second.done_ns > ttl_ns_) {
        it = shard.entries.erase(it);
      } else {
        ++it;
      }
    }
  }
}

size_t IdempotencyIndex::Size() const {
  size_t total = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    total += shard.entries.size();
  }
  return total;
}

}  // namespace faas::serve
