#include "src/serve/wire.h"

#include <algorithm>
#include <cstring>

namespace faas {
namespace {

// Little-endian scalar access through memcpy: the compilers this repo
// targets lower these to single loads/stores on x86-64 and aarch64.
void PutU16(uint8_t* p, uint16_t v) { std::memcpy(p, &v, sizeof(v)); }
void PutU32(uint8_t* p, uint32_t v) { std::memcpy(p, &v, sizeof(v)); }
void PutU64(uint8_t* p, uint64_t v) { std::memcpy(p, &v, sizeof(v)); }
uint16_t GetU16(const uint8_t* p) {
  uint16_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}
uint32_t GetU32(const uint8_t* p) {
  uint32_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}
uint64_t GetU64(const uint8_t* p) {
  uint64_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

}  // namespace

// Shared layout (offsets in bytes):
//   [0..2)   magic        [2] version      [3] type
// Request:
//   [4..8)   function_id  [8..12) payload_size  [12..16) deadline_us
//   [16..24) request_id
// Reply:
//   [4]      status       [5] latency_class    [6..8)  zero
//   [8..12)  latency_us   [12..16) zero        [16..24) request_id

size_t EncodeRequestTo(const RequestFrame& frame, uint8_t* out) {
  PutU16(out + 0, kWireMagic);
  out[2] = kWireVersion;
  out[3] = static_cast<uint8_t>(FrameType::kRequest);
  PutU32(out + 4, frame.function_id);
  PutU32(out + 8, frame.payload_size);
  PutU32(out + 12, (frame.deadline_us & ~kWireRetryFlag) |
                       (frame.retry ? kWireRetryFlag : 0));
  PutU64(out + 16, frame.request_id);
  return kWireHeaderSize;
}

size_t EncodeReplyTo(const ReplyFrame& frame, uint8_t* out) {
  PutU16(out + 0, kWireMagic);
  out[2] = kWireVersion;
  out[3] = static_cast<uint8_t>(FrameType::kReply);
  out[4] = static_cast<uint8_t>(frame.status);
  out[5] = static_cast<uint8_t>(frame.latency_class);
  PutU16(out + 6, 0);
  PutU32(out + 8, frame.latency_us);
  PutU32(out + 12, 0);
  PutU64(out + 16, frame.request_id);
  return kWireHeaderSize;
}

void EncodeRequest(const RequestFrame& frame, std::vector<uint8_t>& out) {
  const size_t at = out.size();
  out.resize(at + kWireHeaderSize);
  EncodeRequestTo(frame, out.data() + at);
}

void EncodeReply(const ReplyFrame& frame, std::vector<uint8_t>& out) {
  const size_t at = out.size();
  out.resize(at + kWireHeaderSize);
  EncodeReplyTo(frame, out.data() + at);
}

void FrameDecoder::Push(const uint8_t* data, size_t size) {
  if (stash_consumed_) {
    stash_.clear();
    stash_consumed_ = false;
  }
  chunk_ = data;
  chunk_size_ = size;
  chunk_pos_ = 0;
}

FrameDecoder::Result FrameDecoder::ParseHeader(const uint8_t* header,
                                               DecodedFrame* out,
                                               size_t* payload_size) {
  if (GetU16(header + 0) != kWireMagic) {
    return Fail(Error::kBadMagic);
  }
  if (header[2] != kWireVersion) {
    return Fail(Error::kBadVersion);
  }
  const uint8_t type = header[3];
  if (type == static_cast<uint8_t>(FrameType::kRequest)) {
    out->type = FrameType::kRequest;
    out->request.function_id = GetU32(header + 4);
    out->request.payload_size = GetU32(header + 8);
    const uint32_t deadline_raw = GetU32(header + 12);
    out->request.deadline_us = deadline_raw & ~kWireRetryFlag;
    out->request.retry = (deadline_raw & kWireRetryFlag) != 0;
    out->request.request_id = GetU64(header + 16);
    if (out->request.payload_size > max_payload_) {
      return Fail(Error::kOversizedPayload);
    }
    *payload_size = out->request.payload_size;
    return Result::kFrame;
  }
  if (type == static_cast<uint8_t>(FrameType::kReply)) {
    out->type = FrameType::kReply;
    out->reply.status = static_cast<ReplyStatus>(header[4]);
    out->reply.latency_class = static_cast<LatencyClass>(header[5]);
    out->reply.latency_us = GetU32(header + 8);
    out->reply.request_id = GetU64(header + 16);
    *payload_size = 0;
    return Result::kFrame;
  }
  return Fail(Error::kBadType);
}

FrameDecoder::Result FrameDecoder::Next(DecodedFrame* out) {
  if (error_ != Error::kNone) {
    return Result::kError;
  }
  if (stash_consumed_) {
    stash_.clear();
    stash_consumed_ = false;
  }
  out->payload = nullptr;
  out->payload_size = 0;

  // A frame is straddling chunks: finish it through the stash.
  if (!stash_.empty()) {
    // Top up to a complete header first.
    if (stash_.size() < kWireHeaderSize) {
      const size_t want = kWireHeaderSize - stash_.size();
      const size_t take = std::min(want, chunk_size_ - chunk_pos_);
      stash_.insert(stash_.end(), chunk_ + chunk_pos_,
                    chunk_ + chunk_pos_ + take);
      chunk_pos_ += take;
      if (stash_.size() < kWireHeaderSize) {
        return Result::kNeedMore;
      }
    }
    size_t payload_size = 0;
    const Result parsed = ParseHeader(stash_.data(), out, &payload_size);
    if (parsed != Result::kFrame) {
      return parsed;
    }
    const size_t frame_size = kWireHeaderSize + payload_size;
    if (stash_.size() < frame_size) {
      const size_t want = frame_size - stash_.size();
      const size_t take = std::min(want, chunk_size_ - chunk_pos_);
      stash_.insert(stash_.end(), chunk_ + chunk_pos_,
                    chunk_ + chunk_pos_ + take);
      chunk_pos_ += take;
      if (stash_.size() < frame_size) {
        return Result::kNeedMore;
      }
      // Re-parse: insert() may have reallocated the stash.
      size_t ignored = 0;
      ParseHeader(stash_.data(), out, &ignored);
    }
    out->payload = stash_.data() + kWireHeaderSize;
    out->payload_size = payload_size;
    // The stash is logically consumed by this frame; it stays allocated
    // (and its bytes valid) until the next Next()/Push() call.
    stash_consumed_ = true;
    return Result::kFrame;
  }

  const size_t avail = chunk_size_ - chunk_pos_;
  if (avail < kWireHeaderSize) {
    if (avail > 0) {
      stash_.assign(chunk_ + chunk_pos_, chunk_ + chunk_size_);
      chunk_pos_ = chunk_size_;
    }
    return Result::kNeedMore;
  }
  const uint8_t* header = chunk_ + chunk_pos_;
  size_t payload_size = 0;
  const Result parsed = ParseHeader(header, out, &payload_size);
  if (parsed != Result::kFrame) {
    return parsed;
  }
  const size_t frame_size = kWireHeaderSize + payload_size;
  if (avail < frame_size) {
    stash_.assign(chunk_ + chunk_pos_, chunk_ + chunk_size_);
    chunk_pos_ = chunk_size_;
    return Result::kNeedMore;
  }
  out->payload = header + kWireHeaderSize;
  out->payload_size = payload_size;
  chunk_pos_ += frame_size;
  return Result::kFrame;
}

const char* ReplyStatusName(ReplyStatus status) {
  switch (status) {
    case ReplyStatus::kOk:
      return "ok";
    case ReplyStatus::kShedQueueFull:
      return "shed_queue_full";
    case ReplyStatus::kShedDeadline:
      return "shed_deadline";
    case ReplyStatus::kShedShutdown:
      return "shed_shutdown";
    case ReplyStatus::kRejected:
      return "rejected";
    case ReplyStatus::kFailed:
      return "failed";
    case ReplyStatus::kShedDegraded:
      return "shed_degraded";
  }
  return "unknown";
}

const char* LatencyClassName(LatencyClass latency_class) {
  switch (latency_class) {
    case LatencyClass::kUnknown:
      return "unknown";
    case LatencyClass::kWarm:
      return "warm";
    case LatencyClass::kCold:
      return "cold";
  }
  return "unknown";
}

}  // namespace faas
