// Wall-clock source for the serving subsystem.
//
// All serving timestamps are CLOCK_MONOTONIC nanoseconds: immune to NTP
// steps, cheap to read (vDSO), and directly comparable across threads of
// one process.  The load generators also stamp request ids with this clock,
// so an end-to-end latency is one subtraction on reply receipt.

#ifndef SRC_SERVE_CLOCK_H_
#define SRC_SERVE_CLOCK_H_

#include <cstdint>
#include <ctime>

namespace faas {

inline int64_t MonotonicNowNs() {
  timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<int64_t>(ts.tv_sec) * 1'000'000'000 + ts.tv_nsec;
}

}  // namespace faas

#endif  // SRC_SERVE_CLOCK_H_
