// Wall-clock chaos plan and self-healing knobs for the serving subsystem.
//
// The simulator's FaultPlan (src/faults/fault_plan.h) perturbs virtual
// time; a ServeChaosPlan perturbs the real epoll serve path on
// CLOCK_MONOTONIC schedules, using the same textual spec grammar.  All
// offsets are relative to server start, so a plan is reproducible against
// any run.  The plan only injects server-side faults — executor-shard
// crashes and stalls, probabilistic connection resets, service-time
// spikes; client misbehavior (slowloris reads, malformed frames) is
// driven from outside by tools/serve_chaos.
//
// The empty plan is free: no chaos timers are armed, no RNG is
// constructed, and every serving code path stays byte-identical to a
// build without this header.

#ifndef SRC_SERVE_CHAOS_H_
#define SRC_SERVE_CHAOS_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/time.h"

namespace faas::serve {

// Executor shard `executor` crashes `at` after server start: every
// in-flight execution on it fails, its warm pools are quarantined, its
// breaker state resets, and it rejoins cold after `downtime`.
struct ExecCrashEvent {
  int executor = 0;
  Duration at;
  Duration downtime;

  bool operator==(const ExecCrashEvent&) const = default;
};

// Executor shard `executor` stalls for `duration` starting `at`: new
// completions on it stop firing (executions hang) until the watchdog
// restarts it or the window would have ended.  Unlike a crash the shard
// never heals itself — this is exactly the failure mode the watchdog
// exists to catch.
struct ExecStallEvent {
  int executor = 0;
  Duration at;
  Duration duration;

  bool operator==(const ExecStallEvent&) const = default;
};

// While [at, at + duration) is active, each newly accepted connection is
// reset (SO_LINGER{1,0} close → RST) with `probability`.
struct ConnResetWindow {
  Duration at;
  Duration duration;
  double probability = 0.0;

  bool CoversNs(int64_t offset_ns) const {
    const int64_t start = at.millis() * 1'000'000;
    return offset_ns >= start &&
           offset_ns < start + duration.millis() * 1'000'000;
  }
  bool operator==(const ConnResetWindow&) const = default;
};

// Service times are multiplied by `multiplier` while the window is active
// (an overloaded backend / image registry).
struct ServeLatencySpike {
  Duration at;
  Duration duration;
  double multiplier = 1.0;

  bool CoversNs(int64_t offset_ns) const {
    const int64_t start = at.millis() * 1'000'000;
    return offset_ns >= start &&
           offset_ns < start + duration.millis() * 1'000'000;
  }
  bool operator==(const ServeLatencySpike&) const = default;
};

struct ServeChaosPlan {
  std::vector<ExecCrashEvent> crashes;
  std::vector<ExecStallEvent> stalls;
  std::vector<ConnResetWindow> reset_windows;
  std::vector<ServeLatencySpike> spikes;

  bool Empty() const {
    return crashes.empty() && stalls.empty() && reset_windows.empty() &&
           spikes.empty();
  }

  // Largest reset probability active `offset_ns` after server start.
  double ConnResetProbabilityAtNs(int64_t offset_ns) const;
  // Product of active spike multipliers (1.0 when none).
  double LatencyMultiplierAtNs(int64_t offset_ns) const;

  // Empty string when well-formed for `num_executors` shards; otherwise a
  // description of the first problem.
  std::string Validate(int num_executors) const;

  // Parses a plan from the src/faults spec grammar: semicolon-separated
  //   crash:executor=E,at=D,down=D
  //   stall:executor=E,at=D,for=D
  //   connreset:at=D,for=D,p=P
  //   spike:at=D,for=D,x=M
  // where durations D accept ms/s/m/h/d suffixes (bare numbers = seconds)
  // and offsets are from server start.  Returns nullopt and sets *error on
  // malformed input.
  static std::optional<ServeChaosPlan> Parse(std::string_view spec,
                                             std::string* error);

  bool operator==(const ServeChaosPlan&) const = default;
};

// Watchdog scanning for stalled executor shards.  Disabled by default;
// when disabled no scan timer is armed (empty-plan byte-identity).
struct ServeWatchdogConfig {
  bool enabled = false;
  // How often each loop's bridge scans its in-flight table.
  Duration interval = Duration::Millis(100);
  // An execution older than this (beyond its expected service time) marks
  // its shard stalled and triggers a restart.
  Duration stall_threshold = Duration::Millis(1000);
  // Re-dispatch the restarted shard's queued work instead of shedding it.
  bool rescue_queued = true;
};

// Tiered graceful degradation driven by the breaker/queue signals the
// bridge already tracks.  Tiers (see kDegradeTiers in
// src/cluster/recovery.h):
//   0  healthy — no intervention
//   1  shed hedging (suppress hedge launches)
//   2  + shed cold-start admissions for non-retry traffic
//   3  + shed all non-retry traffic (retries still admitted)
// Escalation when max(queue occupancy fraction, open-breaker fraction)
// crosses `enter_pressure`; recovery one tier at a time once pressure
// falls below `exit_pressure` and the tier has dwelt `min_dwell`.
struct ServeDegradeConfig {
  bool enabled = false;
  double enter_pressure = 0.8;
  double exit_pressure = 0.5;
  Duration min_dwell = Duration::Millis(200);
};

}  // namespace faas::serve

#endif  // SRC_SERVE_CHAOS_H_
