// Real-time serving front-end: epoll loops over the admission bridge.
//
// This is the wall-clock counterpart of the trace replayer: instead of an
// EventQueue delivering invocations in virtual time, N event loops (one per
// core by default) each own a SO_REUSEPORT listening socket on the same
// port, an epoll instance, a TimerWheel, and an AdmissionBridge — the
// kernel's REUSEPORT hash spreads connections across loops, and everything
// a loop touches (connections, timers, admission state, ledgers, latency
// recorder) is loop-local, so the data plane takes no locks.  Loops may be
// pinned to CPUs through the same NUMA-interleaved map the ThreadPool uses
// (CpuTopology::InterleavedCpus), keeping a connection's packets, decoder
// stash, and admission state on one core.
//
// Reads are batched: one read() syscall pulls up to 256 KB, the
// FrameDecoder walks it in place, and each request frame is admitted
// inline.  Replies accumulate per connection and flush once per loop
// iteration, so a burst of B requests costs O(1) syscalls each way instead
// of O(B).  The wheel is advanced once per iteration; when idle the loop
// sleeps in epoll until the next timer deadline (epoll_pwait2 when the
// kernel has it, millisecond epoll_wait otherwise).
//
// Shutdown contract (Stop(), also used by tools/serve's SIGINT handler):
// every loop stops accepting and reading, sheds its queued requests as
// kShedShutdown, lets in-flight simulated executions complete, flushes
// outstanding reply bytes, then closes.  Stop() returns after every loop
// thread joined, so callers can scrape final stats race-free.

#ifndef SRC_SERVE_SERVER_H_
#define SRC_SERVE_SERVER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/serve/bridge.h"
#include "src/telemetry/latency_recorder.h"

namespace faas {

struct ServeConfig {
  std::string host = "127.0.0.1";
  // 0 binds an ephemeral port; the chosen port is available from port().
  uint16_t port = 0;
  // Event loops (and listening sockets); 0 = one per online CPU.
  int num_loops = 0;
  // Pin loop i to the i-th NUMA-interleaved CPU (CpuTopology), the same
  // placement scheme as ThreadPoolOptions::pin_threads.
  bool pin_loops = false;
  int listen_backlog = 1024;
  size_t read_buffer_bytes = 256 * 1024;
  // Wall-clock timer wheel granularity/rotation (see timer_wheel.h).
  int64_t wheel_tick_ns = 64 * 1024;
  size_t wheel_slots = 4096;
  // Upper bound on the graceful-drain phase of Stop().
  int64_t drain_timeout_ms = 2'000;
  // The admission path proper (shared by every loop; state is per-loop).
  AdmissionBridgeConfig bridge;
};

// Merged view over every loop's tallies.  served/shed accounting comes from
// the bridges' OverloadLedger + BridgeStats so socket-driven totals are
// directly comparable with simulated replays.
struct ServeStats {
  int64_t connections_accepted = 0;
  int64_t connections_closed = 0;
  int64_t protocol_errors = 0;
  int64_t frames_in = 0;
  int64_t replies_out = 0;
  int64_t bytes_in = 0;
  int64_t bytes_out = 0;
  BridgeStats bridge;
  OverloadLedger ledger;
  // Merged cost-accounting ledgers (lazy idle settlement; see
  // AdmissionBridge::resources for the snapshot caveat).
  ResourceLedger resources;
  // Self-healing book: watchdog restarts, MTTR, dedupe saves, degradation
  // dwell (all-zero unless the chaos/watchdog/degrade/dedupe knobs are on).
  RecoveryLedger recovery;
  LatencyRecorder latency;  // Server-side latency of served requests.

  ServeStats& operator+=(const ServeStats& other);
};

class ServeServer {
 public:
  explicit ServeServer(ServeConfig config);
  ~ServeServer();

  ServeServer(const ServeServer&) = delete;
  ServeServer& operator=(const ServeServer&) = delete;

  // Binds every loop's listening socket and launches the loop threads.
  // False (with *error set) when sockets are unavailable — callers such as
  // the loopback test use this to skip cleanly in socketless sandboxes.
  bool Start(std::string* error);

  // Graceful shutdown (idempotent): drain, flush, join.  See header.
  void Stop();

  bool running() const { return running_; }
  uint16_t port() const { return port_; }
  int num_loops() const;

  // Merged stats; callable while serving (each loop is paused for the copy
  // at an iteration boundary, never mid-frame).
  ServeStats Snapshot() const;

 private:
  class EventLoop;

  ServeConfig config_;
  std::vector<std::unique_ptr<EventLoop>> loops_;
  uint16_t port_ = 0;
  bool running_ = false;
};

}  // namespace faas

#endif  // SRC_SERVE_SERVER_H_
