#include "src/serve/server.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sched.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstring>
#include <mutex>
#include <thread>

#include "src/common/cpu_topology.h"
#include "src/common/rng.h"
#include "src/serve/clock.h"
#include "src/serve/wire.h"

namespace faas {
namespace {

// epoll_event user-data tags for the two non-connection descriptors.
constexpr uint64_t kListenTag = ~uint64_t{0};
constexpr uint64_t kWakeTag = ~uint64_t{0} - 1;

// Per-EPOLLIN read budget: keeps one firehose connection from starving the
// timer wheel.  Level-triggered epoll re-arms anything left unread.
constexpr int kMaxReadsPerEvent = 4;

// Waits for events with nanosecond precision where the kernel offers it
// (epoll_pwait2, Linux 5.11+); otherwise rounds the timeout up to whole
// milliseconds so timers never fire early.
int WaitForEvents(int epoll_fd, epoll_event* events, int max_events,
                  int64_t timeout_ns) {
#ifdef SYS_epoll_pwait2
  if (timeout_ns >= 0) {
    timespec ts;
    ts.tv_sec = timeout_ns / 1'000'000'000;
    ts.tv_nsec = timeout_ns % 1'000'000'000;
    const long n = syscall(SYS_epoll_pwait2, epoll_fd, events, max_events,
                           &ts, nullptr, 0);
    if (n >= 0) {
      return static_cast<int>(n);
    }
    if (errno == EINTR) {
      return 0;  // Signal during the wait: surface as an empty batch.
    }
    if (errno != ENOSYS) {
      return static_cast<int>(n);
    }
    // Kernel predates epoll_pwait2: fall through to epoll_wait forever.
  }
#endif
  int timeout_ms = -1;
  if (timeout_ns >= 0) {
    timeout_ms = static_cast<int>((timeout_ns + 999'999) / 1'000'000);
  }
  const int n = epoll_wait(epoll_fd, events, max_events, timeout_ms);
  if (n < 0 && errno == EINTR) {
    return 0;
  }
  return n;
}

}  // namespace

ServeStats& ServeStats::operator+=(const ServeStats& other) {
  connections_accepted += other.connections_accepted;
  connections_closed += other.connections_closed;
  protocol_errors += other.protocol_errors;
  frames_in += other.frames_in;
  replies_out += other.replies_out;
  bytes_in += other.bytes_in;
  bytes_out += other.bytes_out;
  bridge += other.bridge;
  MergeLedger(ledger, other.ledger);
  MergeLedger(resources, other.resources);
  MergeLedger(recovery, other.recovery);
  latency.Merge(other.latency);
  return *this;
}

class ServeServer::EventLoop {
 public:
  EventLoop(const ServeConfig& config, int loop_id)
      : config_(config),
        loop_id_(loop_id),
        wheel_(config.wheel_tick_ns, config.wheel_slots),
        bridge_(config.bridge, &wheel_, &EventLoop::EmitReplyThunk, this,
                &latency_),
        read_buf_(config.read_buffer_bytes) {}

  ~EventLoop() {
    Join();
    for (std::unique_ptr<Conn>& conn : conns_) {
      if (conn != nullptr && conn->fd >= 0) {
        close(conn->fd);
      }
    }
    if (listen_fd_ >= 0) {
      close(listen_fd_);
    }
    if (wake_fd_ >= 0) {
      close(wake_fd_);
    }
    if (epoll_fd_ >= 0) {
      close(epoll_fd_);
    }
  }

  // Binds the loop's SO_REUSEPORT listening socket.  *port == 0 picks an
  // ephemeral port and reports it (subsequent loops bind the same one).
  bool Init(uint16_t* port, std::string* error) {
    listen_fd_ =
        socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
    if (listen_fd_ < 0) {
      return Fail(error, "socket");
    }
    const int one = 1;
    if (setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEPORT, &one, sizeof(one)) !=
        0) {
      return Fail(error, "setsockopt(SO_REUSEPORT)");
    }
    sockaddr_in addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_port = htons(*port);
    if (inet_pton(AF_INET, config_.host.c_str(), &addr.sin_addr) != 1) {
      if (error != nullptr) {
        *error = "invalid host: " + config_.host;
      }
      return false;
    }
    if (bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
        0) {
      return Fail(error, "bind");
    }
    if (*port == 0) {
      socklen_t len = sizeof(addr);
      if (getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) !=
          0) {
        return Fail(error, "getsockname");
      }
      *port = ntohs(addr.sin_port);
    }
    if (listen(listen_fd_, config_.listen_backlog) != 0) {
      return Fail(error, "listen");
    }
    epoll_fd_ = epoll_create1(EPOLL_CLOEXEC);
    if (epoll_fd_ < 0) {
      return Fail(error, "epoll_create1");
    }
    wake_fd_ = eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
    if (wake_fd_ < 0) {
      return Fail(error, "eventfd");
    }
    epoll_event ev;
    std::memset(&ev, 0, sizeof(ev));
    ev.events = EPOLLIN;
    ev.data.u64 = kListenTag;
    if (epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev) != 0) {
      return Fail(error, "epoll_ctl(listen)");
    }
    ev.data.u64 = kWakeTag;
    if (epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev) != 0) {
      return Fail(error, "epoll_ctl(wake)");
    }
    return true;
  }

  void Launch(int cpu) { thread_ = std::thread([this, cpu] { Run(cpu); }); }

  void RequestStop() {
    stop_requested_.store(true, std::memory_order_release);
    if (wake_fd_ >= 0) {
      const uint64_t one = 1;
      ssize_t n;
      do {
        n = write(wake_fd_, &one, sizeof(one));
      } while (n < 0 && errno == EINTR);
    }
  }

  void Join() {
    if (thread_.joinable()) {
      thread_.join();
    }
  }

  ServeStats Snapshot() const {
    std::lock_guard<std::mutex> lock(mu_);
    ServeStats stats = counters_;
    stats.bridge = bridge_.stats();
    stats.ledger = bridge_.ledger();
    stats.resources = bridge_.resources();
    stats.recovery = bridge_.recovery();
    stats.recovery.conn_resets_injected += conn_resets_injected_;
    stats.latency = latency_;
    return stats;
  }

 private:
  struct Conn {
    int fd = -1;
    uint32_t generation = 0;
    bool want_write = false;
    bool dirty = false;  // In dirty_ with bytes pending encode->flush.
    FrameDecoder decoder;
    std::vector<uint8_t> out;
    size_t out_pos = 0;
  };

  bool Fail(std::string* error, const char* what) {
    if (error != nullptr) {
      *error = std::string(what) + ": " + std::strerror(errno);
    }
    return false;
  }

  static void EmitReplyThunk(void* ctx, uint64_t token,
                             const ReplyFrame& reply) {
    static_cast<EventLoop*>(ctx)->EmitReply(token, reply);
  }

  void EmitReply(uint64_t token, const ReplyFrame& reply) {
    const auto fd = static_cast<uint32_t>(token);
    const auto generation = static_cast<uint32_t>(token >> 32);
    if (fd >= conns_.size() || conns_[fd] == nullptr ||
        conns_[fd]->generation != generation) {
      return;  // Connection closed while the request was in flight.
    }
    Conn& conn = *conns_[fd];
    EncodeReply(reply, conn.out);
    ++counters_.replies_out;
    if (!conn.dirty) {
      conn.dirty = true;
      dirty_.push_back(fd);
    }
  }

  uint64_t TokenFor(const Conn& conn) const {
    return (static_cast<uint64_t>(conn.generation) << 32) |
           static_cast<uint32_t>(conn.fd);
  }

  void HandleAccept() {
    for (;;) {
      const int fd = accept4(listen_fd_, nullptr, nullptr,
                             SOCK_NONBLOCK | SOCK_CLOEXEC);
      if (fd < 0) {
        if (errno == EINTR) {
          continue;
        }
        return;  // EAGAIN or transient error; epoll will retry.
      }
      if (chaos_rng_ != nullptr) {
        const double p = config_.bridge.chaos.ConnResetProbabilityAtNs(
            MonotonicNowNs() - chaos_start_ns_);
        if (p > 0.0 && chaos_rng_->Bernoulli(p)) {
          // RST the newcomer (SO_LINGER{1,0} close): exercises the client
          // reconnect/retry path, not graceful FIN handling.
          const linger hard_close{1, 0};
          setsockopt(fd, SOL_SOCKET, SO_LINGER, &hard_close,
                     sizeof(hard_close));
          close(fd);
          ++conn_resets_injected_;
          continue;
        }
      }
      const int one = 1;
      setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      if (static_cast<size_t>(fd) >= conns_.size()) {
        conns_.resize(fd + 1);
        generations_.resize(fd + 1, 0);
      }
      auto conn = std::make_unique<Conn>();
      conn->fd = fd;
      conn->generation = ++generations_[fd];
      epoll_event ev;
      std::memset(&ev, 0, sizeof(ev));
      ev.events = EPOLLIN;
      ev.data.u64 = static_cast<uint64_t>(fd);
      if (epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
        close(fd);
        continue;
      }
      conns_[fd] = std::move(conn);
      ++counters_.connections_accepted;
    }
  }

  void CloseConn(Conn& conn) {
    const int fd = conn.fd;
    ++generations_[fd];  // Invalidates tokens of in-flight requests.
    close(fd);           // Also removes the fd from the epoll set.
    ++counters_.connections_closed;
    conns_[fd] = nullptr;
  }

  // Returns false when the connection was closed.
  bool HandleRead(Conn& conn) {
    for (int round = 0; round < kMaxReadsPerEvent; ++round) {
      const ssize_t n = read(conn.fd, read_buf_.data(), read_buf_.size());
      if (n == 0) {
        CloseConn(conn);
        return false;
      }
      if (n < 0) {
        if (errno == EINTR) {
          continue;
        }
        if (errno == EAGAIN || errno == EWOULDBLOCK) {
          return true;
        }
        CloseConn(conn);
        return false;
      }
      counters_.bytes_in += n;
      const int64_t now_ns = MonotonicNowNs();
      const uint64_t token = TokenFor(conn);
      conn.decoder.Push(read_buf_.data(), static_cast<size_t>(n));
      DecodedFrame frame;
      for (;;) {
        const FrameDecoder::Result result = conn.decoder.Next(&frame);
        if (result == FrameDecoder::Result::kNeedMore) {
          break;
        }
        if (result == FrameDecoder::Result::kError ||
            frame.type != FrameType::kRequest) {
          ++counters_.protocol_errors;
          CloseConn(conn);
          return false;
        }
        ++counters_.frames_in;
        bridge_.OnRequest(token, frame.request, now_ns);
      }
      if (static_cast<size_t>(n) < read_buf_.size()) {
        return true;  // Drained the socket; skip the EAGAIN round-trip.
      }
    }
    return true;
  }

  // Returns false when the connection was closed.
  bool FlushConn(Conn& conn) {
    while (conn.out_pos < conn.out.size()) {
      // MSG_NOSIGNAL: a peer that reset mid-reply yields EPIPE (handled
      // below as a close) instead of a process-wide SIGPIPE.
      const ssize_t n = send(conn.fd, conn.out.data() + conn.out_pos,
                             conn.out.size() - conn.out_pos, MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EINTR) {
          continue;
        }
        if (errno == EAGAIN || errno == EWOULDBLOCK) {
          if (!conn.want_write) {
            conn.want_write = true;
            epoll_event ev;
            std::memset(&ev, 0, sizeof(ev));
            ev.events = EPOLLIN | EPOLLOUT;
            ev.data.u64 = static_cast<uint64_t>(conn.fd);
            epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn.fd, &ev);
          }
          return true;
        }
        CloseConn(conn);
        return false;
      }
      counters_.bytes_out += n;
      conn.out_pos += static_cast<size_t>(n);
    }
    conn.out.clear();
    conn.out_pos = 0;
    if (conn.want_write) {
      conn.want_write = false;
      epoll_event ev;
      std::memset(&ev, 0, sizeof(ev));
      ev.events = EPOLLIN;
      ev.data.u64 = static_cast<uint64_t>(conn.fd);
      epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn.fd, &ev);
    }
    return true;
  }

  void FlushDirty() {
    for (const uint32_t fd : dirty_) {
      if (fd < conns_.size() && conns_[fd] != nullptr) {
        conns_[fd]->dirty = false;
        FlushConn(*conns_[fd]);
      }
    }
    dirty_.clear();
  }

  bool AllOutputFlushed() const {
    for (const std::unique_ptr<Conn>& conn : conns_) {
      if (conn != nullptr && conn->out_pos < conn->out.size()) {
        return false;
      }
    }
    return true;
  }

  void Run(int cpu) {
    if (cpu >= 0) {
      cpu_set_t set;
      CPU_ZERO(&set);
      CPU_SET(cpu, &set);
      sched_setaffinity(0, sizeof(set), &set);
    }
    {
      // Anchor chaos-plan offsets at loop start.  With an empty plan and
      // the watchdog off this arms nothing; the reset RNG exists (and
      // draws) only when reset windows do, keeping the default path free
      // of randomness.
      std::lock_guard<std::mutex> lock(mu_);
      chaos_start_ns_ = MonotonicNowNs();
      bridge_.StartClock(chaos_start_ns_);
      if (!config_.bridge.chaos.reset_windows.empty()) {
        chaos_rng_ = std::make_unique<Rng>(config_.bridge.chaos_seed +
                                           static_cast<uint64_t>(loop_id_));
      }
    }
    std::vector<epoll_event> events(256);
    bool draining = false;
    int64_t drain_deadline_ns = 0;
    int64_t timeout_ns = 0;
    for (;;) {
      const int num_events = WaitForEvents(epoll_fd_, events.data(),
                                           static_cast<int>(events.size()),
                                           timeout_ns);
      std::lock_guard<std::mutex> lock(mu_);
      for (int i = 0; i < num_events; ++i) {
        const uint64_t tag = events[i].data.u64;
        if (tag == kListenTag) {
          if (!draining) {
            HandleAccept();
          }
          continue;
        }
        if (tag == kWakeTag) {
          uint64_t drained;
          [[maybe_unused]] const ssize_t n =
              read(wake_fd_, &drained, sizeof(drained));
          continue;
        }
        const auto fd = static_cast<uint32_t>(tag);
        if (fd >= conns_.size() || conns_[fd] == nullptr) {
          continue;  // Closed earlier in this batch.
        }
        Conn& conn = *conns_[fd];
        if ((events[i].events & (EPOLLHUP | EPOLLERR)) != 0) {
          CloseConn(conn);
          continue;
        }
        if ((events[i].events & EPOLLOUT) != 0 && !FlushConn(conn)) {
          continue;
        }
        if ((events[i].events & EPOLLIN) != 0 && !draining &&
            !HandleRead(conn)) {
          continue;
        }
      }
      wheel_.Advance(MonotonicNowNs());
      FlushDirty();

      if (!draining && stop_requested_.load(std::memory_order_acquire)) {
        draining = true;
        epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, listen_fd_, nullptr);
        close(listen_fd_);
        listen_fd_ = -1;
        const int64_t now_ns = MonotonicNowNs();
        bridge_.Drain(now_ns);
        drain_deadline_ns = now_ns + config_.drain_timeout_ms * 1'000'000;
        FlushDirty();  // Shutdown sheds enqueued replies just now.
      }
      if (draining) {
        const int64_t now_ns = MonotonicNowNs();
        if ((bridge_.inflight() == 0 && AllOutputFlushed()) ||
            now_ns >= drain_deadline_ns) {
          for (std::unique_ptr<Conn>& conn : conns_) {
            if (conn != nullptr) {
              CloseConn(*conn);
            }
          }
          return;
        }
        timeout_ns = 1'000'000;  // Re-check the drain condition at 1 ms.
        continue;
      }
      const int64_t next_deadline_ns = wheel_.NextDeadlineNs();
      if (next_deadline_ns < 0) {
        timeout_ns = 100'000'000;  // Pure socket wait; re-check stop at 100ms.
      } else {
        timeout_ns = std::max<int64_t>(next_deadline_ns - MonotonicNowNs(), 0);
      }
    }
  }

  const ServeConfig& config_;
  const int loop_id_;
  int listen_fd_ = -1;
  int epoll_fd_ = -1;
  int wake_fd_ = -1;
  std::thread thread_;
  std::atomic<bool> stop_requested_{false};

  // Everything below is loop-owned, guarded by mu_ only so Snapshot() can
  // pause the loop at an iteration boundary (never contended per frame).
  mutable std::mutex mu_;
  TimerWheel wheel_;
  LatencyRecorder latency_;
  AdmissionBridge bridge_;
  // Chaos connection-reset state (null/zero with no reset windows).
  std::unique_ptr<Rng> chaos_rng_;
  int64_t chaos_start_ns_ = 0;
  int64_t conn_resets_injected_ = 0;
  std::vector<uint8_t> read_buf_;
  std::vector<std::unique_ptr<Conn>> conns_;  // Indexed by fd.
  std::vector<uint32_t> generations_;         // Parallel to conns_.
  std::vector<uint32_t> dirty_;               // Fds with pending replies.
  ServeStats counters_;  // Socket-level tallies (bridge merged in Snapshot).
};

ServeServer::ServeServer(ServeConfig config) : config_(std::move(config)) {}

ServeServer::~ServeServer() { Stop(); }

bool ServeServer::Start(std::string* error) {
  if (running_) {
    return true;
  }
  int num_loops = config_.num_loops;
  if (num_loops <= 0) {
    num_loops = std::max(CpuTopology::Detect().num_cpus(), 1);
  }
  port_ = config_.port;
  loops_.clear();
  for (int i = 0; i < num_loops; ++i) {
    auto loop = std::make_unique<EventLoop>(config_, i);
    if (!loop->Init(&port_, error)) {
      loops_.clear();
      return false;
    }
    loops_.push_back(std::move(loop));
  }
  std::vector<int> cpus;
  if (config_.pin_loops) {
    cpus = CpuTopology::Detect().InterleavedCpus();
  }
  for (int i = 0; i < num_loops; ++i) {
    const int cpu =
        cpus.empty() ? -1 : cpus[static_cast<size_t>(i) % cpus.size()];
    loops_[i]->Launch(cpu);
  }
  running_ = true;
  return true;
}

void ServeServer::Stop() {
  if (!running_) {
    return;
  }
  for (std::unique_ptr<EventLoop>& loop : loops_) {
    loop->RequestStop();
  }
  for (std::unique_ptr<EventLoop>& loop : loops_) {
    loop->Join();
  }
  running_ = false;
}

int ServeServer::num_loops() const { return static_cast<int>(loops_.size()); }

ServeStats ServeServer::Snapshot() const {
  ServeStats stats;
  for (const std::unique_ptr<EventLoop>& loop : loops_) {
    stats += loop->Snapshot();
  }
  return stats;
}

}  // namespace faas
