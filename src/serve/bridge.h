// AdmissionBridge: the cluster controller's admission path on a wall clock.
//
// The serving front-end (src/serve/server.h) terminates TCP and hands every
// decoded request to one of these.  The bridge is the controller's overload
// machinery — bounded admission queue with FIFO/LIFO/CoDel shedding,
// per-executor concurrency caps and circuit breakers, hedged dispatch with
// first-completion-wins — re-run against CLOCK_MONOTONIC instead of the
// simulator's virtual EventQueue.  It reuses the cluster's configuration
// and accounting types verbatim (OverloadControlConfig, AdmissionDiscipline,
// OverloadLedger from src/cluster/overload.h), so a discipline swept in the
// simulator and a discipline served over sockets are the same knobs and the
// same ledger fields; what changes is only the substrate: future work goes
// through a TimerWheel, and "executors" are concurrency shards standing in
// for invokers (execution itself is simulated as a timer at
// service_time + cold-start penalty, with a per-function warm-container
// pool under a fixed keep-alive deciding cold vs warm).
//
// One bridge per event loop, single-threaded, no locks: a request is
// admitted, queued, or shed on the loop that read it, and per-loop ledgers
// and stats merge at scrape time.  Everything here is hot path — the
// direct-dispatch case (free slot, warm container, zero service time) is a
// few array reads, one pool pop/push, and one reply callback.

#ifndef SRC_SERVE_BRIDGE_H_
#define SRC_SERVE_BRIDGE_H_

#include <cstdint>
#include <deque>
#include <vector>

#include "src/cluster/overload.h"
#include "src/cluster/recovery.h"
#include "src/common/resource_ledger.h"
#include "src/serve/chaos.h"
#include "src/serve/idempotency.h"
#include "src/serve/timer_wheel.h"
#include "src/serve/wire.h"
#include "src/stats/p2_quantile.h"
#include "src/telemetry/latency_recorder.h"

namespace faas {

struct AdmissionBridgeConfig {
  // The cluster's overload knobs, reused verbatim:
  //   overload.admission                 bounded queue + discipline
  //   overload.breaker                   per-executor circuit breakers
  //   overload.hedge                     hedged dispatch for cold requests
  //   overload.invoker_concurrency_cap   slots per executor (0 = unlimited)
  // Duration fields are interpreted as wall-clock milliseconds.
  OverloadControlConfig overload;
  // Concurrency shards standing in for invokers (>= 1; hedging needs >= 2).
  int num_executors = 2;
  // Simulated execution time per request and extra cold-start penalty.
  // 0/0 completes admitted requests inline with no timer (the pure-ingest
  // configuration for throughput benches).
  uint32_t service_time_us = 0;
  uint32_t cold_start_us = 0;
  // Fixed keep-alive for idle containers in the warm pool; 0 = every
  // request is a cold start.
  int64_t keep_alive_ms = 10'000;
  // Memory footprint charged to the resource ledger per warm container and
  // per executing request (the serve path has no per-function sizes).
  double container_memory_mb = 128.0;
  // Pre-sized per-function state (grows on demand past the hint).
  uint32_t num_functions_hint = 1024;

  // --- Chaos / self-healing (all off by default; when every knob below is
  // off the bridge arms no extra timers, draws no randomness, and serves
  // byte-identically to a build without them) ---
  // Executor crash/stall schedule plus service-time spikes, offsets from
  // StartClock().  Connection-reset windows are enforced by the server.
  serve::ServeChaosPlan chaos;
  // Seed for server-side probabilistic injections (connection resets).
  uint64_t chaos_seed = 42;
  // Stalled-shard watchdog and tiered graceful degradation.
  serve::ServeWatchdogConfig watchdog;
  serve::ServeDegradeConfig degrade;
  // Idempotent request-id dedupe, shared across every loop's bridge
  // (non-owning; nullptr = disabled).  With it on, a retried id whose
  // original succeeded is answered from cache instead of re-executed.
  serve::IdempotencyIndex* dedupe = nullptr;
};

// Per-bridge serving tallies beyond what OverloadLedger covers.
struct BridgeStats {
  int64_t requests = 0;
  int64_t served_warm = 0;
  int64_t served_cold = 0;
  int64_t rejected = 0;   // No queue configured and no executor admitted.
  int64_t evictions = 0;  // Idle containers expired by the keep-alive.
  int64_t hedge_zombies = 0;  // Cancelled-side executions run to completion.

  int64_t served() const { return served_warm + served_cold; }

  BridgeStats& operator+=(const BridgeStats& other) {
    requests += other.requests;
    served_warm += other.served_warm;
    served_cold += other.served_cold;
    rejected += other.rejected;
    evictions += other.evictions;
    hedge_zombies += other.hedge_zombies;
    return *this;
  }
};

class AdmissionBridge {
 public:
  // Emits one reply toward connection `conn_token` (a server-side handle
  // the bridge never interprets).  Called inline from OnRequest for direct
  // dispatches and sheds, and from timer context for completions.
  using ReplyFn = void (*)(void* ctx, uint64_t conn_token,
                           const ReplyFrame& reply);

  // `wheel` and `latency` are non-owning and must outlive the bridge;
  // `latency` (optional) records server-side latency of served requests in
  // nanoseconds.
  AdmissionBridge(const AdmissionBridgeConfig& config, TimerWheel* wheel,
                  ReplyFn reply_fn, void* reply_ctx,
                  LatencyRecorder* latency = nullptr);

  // Admission entry point for one decoded request at wall time `now_ns`.
  void OnRequest(uint64_t conn_token, const RequestFrame& frame,
                 int64_t now_ns);

  // Shutdown: sheds everything still queued (ShedShutdown), fails in-flight
  // executions stranded on crashed/stalled shards (kFailed), and stamps open
  // breaker intervals.  In-flight simulated executions on healthy shards
  // still complete; callers keep advancing the wheel until inflight()
  // reaches zero.
  void Drain(int64_t now_ns);

  // Anchors chaos-plan offsets and arms the chaos/watchdog timers.  Called
  // once by the owning event loop at startup; with an empty plan and the
  // watchdog off this only records the epoch (no timers, no allocation).
  void StartClock(int64_t now_ns);

  int64_t inflight() const { return inflight_; }
  size_t queue_depth() const { return queue_.size(); }
  const OverloadLedger& ledger() const { return ledger_; }
  const BridgeStats& stats() const { return stats_; }
  const RecoveryLedger& recovery() const { return recovery_; }
  int degrade_tier() const { return degrade_tier_; }
  // Cost-accounting spine (src/common/resource_ledger.h).  Warm-pool idle
  // time settles lazily — charged when a container expires off the pool, is
  // popped for a warm hit, or at Drain — so a mid-run snapshot under-reports
  // idle residency still parked in the pools; completions after Drain charge
  // no further idle time.
  const ResourceLedger& resources() const { return resources_; }

 private:
  enum class BreakerMode : uint8_t { kClosed, kOpen, kHalfOpen };
  enum class ExecHealth : uint8_t { kUp, kCrashed, kStalled };

  struct Executor {
    int32_t inflight = 0;
    // Circuit breaker (sized/used only when overload.breaker.enabled).
    BreakerMode mode = BreakerMode::kClosed;
    std::vector<int8_t> outcomes;  // Rolling ring, 1 = bad.
    int window_pos = 0;
    int window_count = 0;
    int bad_count = 0;
    int half_open_inflight = 0;
    int half_open_good = 0;
    uint32_t breaker_epoch = 0;  // Validates open->half-open timers.
    bool degraded = false;
    int64_t degraded_since_ns = 0;
    // Chaos / self-healing shard state.  health_epoch validates the chaos
    // heal/unstall timers the same way breaker_epoch validates half-opens:
    // a watchdog restart bumps it, so a stale heal cannot resurrect a shard
    // the watchdog already rebuilt.
    ExecHealth health = ExecHealth::kUp;
    uint32_t health_epoch = 0;
    int64_t down_since_ns = 0;
    // Completion keys frozen by an active stall, released on unstall.
    std::vector<uint64_t> frozen;
  };

  // Warm-container pool for one (executor, function) pair: idle-container
  // keep-alive expiry times in completion order (ascending), so expired
  // containers trim off the front and the most recently used pops off the
  // back.
  struct FunctionPool {
    std::deque<int64_t> idle_expiry_ns;
  };

  // One simulated in-flight execution.
  struct Pending {
    uint64_t conn_token = 0;
    uint64_t request_id = 0;
    uint32_t function_id = 0;
    int64_t arrival_ns = 0;
    int32_t executor = -1;
    uint32_t generation = 0;
    bool cold = false;
    bool dead = false;      // Lost the hedge race; completes as a zombie.
    bool is_hedge = false;
    bool half_open_probe = false;
    uint64_t partner = 0;   // Packed key of the live hedge partner (0=none).
    uint32_t deadline_us = 0;
    // Scheduled completion instant; the watchdog flags executions overdue
    // past this by more than the stall threshold.
    int64_t complete_ns = 0;
  };

  struct QueuedRequest {
    uint64_t conn_token = 0;
    uint64_t request_id = 0;
    uint32_t function_id = 0;
    uint32_t deadline_us = 0;
    int64_t arrival_ns = 0;
  };

  // --- dispatch ---
  // Picks an executor for `function_id` (home-first round-robin, skipping
  // caps/breakers; `exclude` >= 0 for hedges).  Returns -1 if none admits.
  int PickExecutor(uint32_t function_id, int exclude);
  // Starts execution on `executor`; classifies warm/cold, schedules the
  // completion timer (or completes inline), arms the hedge timer.
  void Execute(int executor, uint64_t conn_token, const RequestFrame& frame,
               int64_t arrival_ns, int64_t now_ns, bool is_hedge,
               uint64_t primary_key);
  void Complete(uint64_t key, int64_t now_ns);
  void LaunchHedge(uint64_t key, int64_t now_ns);
  int64_t HedgeDelayNs();

  // --- admission queue ---
  void Enqueue(uint64_t conn_token, const RequestFrame& frame,
               int64_t now_ns);
  void DrainQueue(int64_t now_ns);
  void ArmQueueSweep(int64_t now_ns);

  // --- chaos / self-healing ---
  // Kills shard `executor`: fails live executions (kFailed; hedged requests
  // with a live partner elsewhere continue silently), quarantines its warm
  // pools, and resets its breaker.  The shard rejoins via RestartExecutor.
  void CrashExecutor(int executor, int64_t now_ns);
  void StallExecutor(int executor, int64_t now_ns);
  void UnstallExecutor(int executor, int64_t now_ns);
  // Brings a shard back up (chaos heal or watchdog rescue) and books one
  // recovery (MTTR = now - down_since_ns).  `by_watchdog` restarts also
  // fail/quarantine first, since the shard is being rebuilt mid-outage.
  void RestartExecutor(int executor, int64_t now_ns, bool by_watchdog);
  void FailInflightOn(int executor, int64_t now_ns);
  void QuarantinePools(int executor, int64_t now_ns);
  void WatchdogScan(int64_t now_ns);
  // Re-evaluates the degradation tier from the queue/breaker/health
  // pressure signal and books tier dwell on changes.
  void UpdateDegrade(int64_t now_ns);
  double DegradePressure() const;

  // --- breakers ---
  bool BreakerAdmits(const Executor& e) const;
  void RecordOutcome(int executor, bool bad, bool was_half_open_probe,
                     int64_t now_ns);
  void OpenBreaker(int executor, int64_t now_ns);
  void HalfOpenBreaker(int executor, int64_t now_ns);
  void CloseBreaker(int executor, int64_t now_ns);

  // --- plumbing ---
  FunctionPool& PoolFor(int executor, uint32_t function_id);
  uint64_t AllocPending(const Pending& pending);
  Pending* LookupPending(uint64_t key);
  void FreePending(uint64_t key);
  void EmitReply(uint64_t conn_token, uint64_t request_id, ReplyStatus status,
                 LatencyClass latency_class, int64_t arrival_ns,
                 int64_t now_ns);

  static void CompletionTimer(void* ctx, uint64_t data);
  static void HedgeTimer(void* ctx, uint64_t data);
  static void BreakerTimer(void* ctx, uint64_t data);
  static void QueueSweepTimer(void* ctx, uint64_t data);
  static void ChaosCrashTimer(void* ctx, uint64_t data);
  static void ChaosHealTimer(void* ctx, uint64_t data);
  static void ChaosStallTimer(void* ctx, uint64_t data);
  static void ChaosUnstallTimer(void* ctx, uint64_t data);
  static void WatchdogTimer(void* ctx, uint64_t data);

  AdmissionBridgeConfig config_;
  TimerWheel* wheel_;
  ReplyFn reply_fn_;
  void* reply_ctx_;
  LatencyRecorder* latency_;

  std::vector<Executor> executors_;
  // pools_[executor * stride + function]; grown when a function id exceeds
  // the current stride.
  std::vector<FunctionPool> pools_;
  uint32_t pool_stride_ = 0;
  std::deque<QueuedRequest> queue_;
  bool queue_sweep_armed_ = false;
  // Re-entrancy guard: Execute()'s inline-completion path may free a slot
  // while DrainQueue is already walking the queue.
  bool in_drain_ = false;

  std::vector<Pending> pending_;
  std::vector<uint32_t> free_pending_;
  int64_t inflight_ = 0;
  int64_t last_now_ns_ = 0;

  P2Quantile hedge_latency_ms_;
  int64_t service_ns_ = 0;
  int64_t cold_ns_ = 0;
  int64_t keep_alive_ns_ = 0;
  double memory_mb_ = 0.0;
  bool draining_ = false;

  // --- chaos / self-healing state (all zero when the knobs are off) ---
  int64_t chaos_start_ns_ = 0;  // StartClock() epoch for plan offsets.
  int64_t stall_threshold_ns_ = 0;
  int64_t watchdog_interval_ns_ = 0;
  int open_breakers_ = 0;    // Executors in BreakerMode::kOpen.
  int unhealthy_ = 0;        // Executors with health != kUp.
  int degrade_tier_ = 0;
  int64_t tier_since_ns_ = 0;
  int64_t degrade_min_dwell_ns_ = 0;
  bool degrade_engaged_ = false;  // Any escalation yet (gates tier-0 dwell).

  OverloadLedger ledger_;
  BridgeStats stats_;
  ResourceLedger resources_;
  RecoveryLedger recovery_;
};

}  // namespace faas

#endif  // SRC_SERVE_BRIDGE_H_
