#include "src/serve/loadgen.h"

#include <arpa/inet.h>
#include <errno.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>
#include <memory>
#include <random>
#include <unordered_map>
#include <vector>

#include "src/serve/clock.h"
#include "src/serve/wire.h"

namespace faas {
namespace {

// Blast mode pre-encodes this many frames per block and re-stamps only the
// request ids before each send, so the per-frame cost is a few stores.
constexpr int kBlastBlockFrames = 256;
// Bound on arrivals materialised per loop iteration when the Poisson
// schedule has fallen behind wall time (the open loop catches up in bursts
// rather than spinning unboundedly).
constexpr int kMaxArrivalsPerIteration = 4096;
// request_id (the send timestamp) lives at this offset in the header.
constexpr size_t kRequestIdOffset = 16;

struct Conn {
  int fd = -1;
  bool connected = false;   // Async connect() completed.
  bool want_write = false;  // EPOLLOUT armed.
  bool awaiting = false;    // Closed loop: reply outstanding.
  int64_t next_send_ns = 0;  // Closed loop: think-time gate.
  int64_t reconnect_at_ns = 0;  // Retry mode: re-dial due time (fd < 0).
  FrameDecoder decoder;
  std::vector<uint8_t> out;
  size_t out_pos = 0;
};

// Retry mode: one in-flight request id.  due_ns is the next action for the
// id — a client-side timeout while an attempt is outstanding
// (awaiting_retry == false) or the backoff-delayed re-send time
// (awaiting_retry == true).
struct Outstanding {
  int64_t first_send_ns = 0;  // Latency is measured from the FIRST send.
  int64_t due_ns = 0;
  int attempts = 0;  // Sends so far (first send counts).
  bool awaiting_retry = false;
  uint32_t function_id = 0;
  size_t issuer = 0;  // Closed loop: conn whose in-flight slot this id holds.
};

class Runner {
 public:
  Runner(const LoadGenConfig& config, LoadGenResult* result)
      : config_(config),
        result_(result),
        rng_(config.seed),
        retry_(config.retry.enabled),
        jitter_rng_(config.seed ^ 0x9E3779B97F4A7C15ull) {}

  ~Runner() {
    for (Conn& conn : conns_) {
      if (conn.fd >= 0) {
        close(conn.fd);
      }
    }
    if (epoll_fd_ >= 0) {
      close(epoll_fd_);
    }
  }

  bool Run(std::string* error);

 private:
  bool Fail(std::string* error, const char* what) {
    if (error != nullptr) {
      *error = std::string(what) + ": " + std::strerror(errno);
    }
    return false;
  }

  bool Connect(std::string* error);
  void BuildBlastBlock();
  uint32_t NextFunctionId() {
    const uint32_t id = function_cursor_;
    function_cursor_ = function_cursor_ + 1 == config_.num_functions
                           ? 0
                           : function_cursor_ + 1;
    return id;
  }
  void AppendRequest(Conn& conn, int64_t now_ns);
  void AppendBlastBlock(Conn& conn, int64_t now_ns);
  bool FlushConn(size_t index);
  void UpdateEpoll(size_t index, bool want_write);
  bool ReadReplies(size_t index, int64_t now_ns);
  void OnReply(const ReplyFrame& reply, int64_t now_ns);
  void OnReplyRetry(const ReplyFrame& reply, int64_t now_ns);
  size_t BacklogBytes() const;

  using OutstandingMap = std::unordered_map<uint64_t, Outstanding>;

  void CloseConn(size_t index);
  bool Reconnect(size_t index);
  int64_t BackoffNs(int attempts);
  void ScanOutstanding(int64_t now_ns);
  void SendRetry(uint64_t id, Outstanding& o, int64_t now_ns);
  OutstandingMap::iterator FinishOutstanding(OutstandingMap::iterator it,
                                             int64_t now_ns);

  const LoadGenConfig& config_;
  LoadGenResult* result_;
  std::mt19937_64 rng_;
  std::exponential_distribution<double> inter_arrival_{1.0};
  int epoll_fd_ = -1;
  sockaddr_in addr_{};
  std::vector<Conn> conns_;
  std::vector<uint8_t> blast_block_;
  std::vector<uint8_t> read_buf_;
  std::vector<uint8_t> payload_;
  uint32_t function_cursor_ = 0;
  size_t rr_ = 0;  // Open loop: round-robin connection cursor.
  int live_conns_ = 0;
  // Retry kit (inert unless config.retry.enabled).
  const bool retry_;
  std::mt19937_64 jitter_rng_;  // Backoff jitter only; keeps rng_ untouched.
  uint64_t next_request_id_ = 0;
  OutstandingMap outstanding_;
};

bool Runner::Connect(std::string* error) {
  epoll_fd_ = epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) {
    return Fail(error, "epoll_create1");
  }
  std::memset(&addr_, 0, sizeof(addr_));
  addr_.sin_family = AF_INET;
  addr_.sin_port = htons(config_.port);
  if (inet_pton(AF_INET, config_.host.c_str(), &addr_.sin_addr) != 1) {
    if (error != nullptr) {
      *error = "invalid host: " + config_.host;
    }
    return false;
  }
  const int n = std::max(config_.connections, 1);
  conns_.resize(n);
  for (int i = 0; i < n; ++i) {
    Conn& conn = conns_[i];
    conn.fd = socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
    if (conn.fd < 0) {
      return Fail(error, "socket");
    }
    const int one = 1;
    setsockopt(conn.fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    if (connect(conn.fd, reinterpret_cast<sockaddr*>(&addr_), sizeof(addr_)) !=
            0 &&
        errno != EINPROGRESS) {
      return Fail(error, "connect");
    }
    epoll_event ev;
    std::memset(&ev, 0, sizeof(ev));
    ev.events = EPOLLIN | EPOLLOUT;  // EPOLLOUT signals connect completion.
    ev.data.u64 = static_cast<uint64_t>(i);
    if (epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, conn.fd, &ev) != 0) {
      return Fail(error, "epoll_ctl");
    }
    conn.want_write = true;
  }
  // Wait (bounded) until every connection either completes or fails.
  const int64_t deadline_ns = MonotonicNowNs() + 2'000'000'000;
  int pending = n;
  std::vector<epoll_event> events(static_cast<size_t>(n));
  while (pending > 0) {
    const int64_t left_ms = (deadline_ns - MonotonicNowNs()) / 1'000'000;
    if (left_ms <= 0) {
      if (error != nullptr) {
        *error = "connect timeout";
      }
      return false;
    }
    const int num_events =
        epoll_wait(epoll_fd_, events.data(), n, static_cast<int>(left_ms));
    for (int i = 0; i < num_events; ++i) {
      Conn& conn = conns_[events[i].data.u64];
      if (conn.connected) {
        continue;
      }
      int err = 0;
      socklen_t len = sizeof(err);
      getsockopt(conn.fd, SOL_SOCKET, SO_ERROR, &err, &len);
      if (err != 0 || (events[i].events & (EPOLLHUP | EPOLLERR)) != 0) {
        errno = err != 0 ? err : ECONNREFUSED;
        return Fail(error, "connect");
      }
      conn.connected = true;
      UpdateEpoll(events[i].data.u64, false);
      --pending;
    }
  }
  live_conns_ = n;
  return true;
}

void Runner::BuildBlastBlock() {
  std::vector<uint8_t> one;
  RequestFrame frame;
  frame.payload_size = config_.payload_bytes;
  frame.deadline_us = config_.deadline_us;
  for (int i = 0; i < kBlastBlockFrames; ++i) {
    frame.function_id = NextFunctionId();
    EncodeRequest(frame, one);
    one.insert(one.end(), payload_.begin(), payload_.end());
    blast_block_.insert(blast_block_.end(), one.begin(), one.end());
    one.clear();
  }
}

void Runner::AppendRequest(Conn& conn, int64_t now_ns) {
  RequestFrame frame;
  frame.function_id = NextFunctionId();
  frame.payload_size = config_.payload_bytes;
  frame.deadline_us = config_.deadline_us;
  if (retry_) {
    // Sequential ids: the id must stay stable across re-sends, so it can no
    // longer double as the send timestamp — the outstanding table carries
    // first_send_ns instead.
    frame.request_id = ++next_request_id_;
    Outstanding o;
    o.first_send_ns = now_ns;
    o.due_ns = now_ns + config_.retry.timeout_us * 1'000;
    o.attempts = 1;
    o.function_id = frame.function_id;
    o.issuer = static_cast<size_t>(&conn - conns_.data());
    outstanding_.emplace(frame.request_id, o);
  } else {
    frame.request_id = static_cast<uint64_t>(now_ns);
  }
  EncodeRequest(frame, conn.out);
  conn.out.insert(conn.out.end(), payload_.begin(), payload_.end());
  ++result_->sent;
}

void Runner::AppendBlastBlock(Conn& conn, int64_t now_ns) {
  // One timestamp per block: blast mode trades per-frame stamp precision
  // (≤ the block's send time, microseconds) for a near-zero encode cost.
  const size_t stride = kWireHeaderSize + config_.payload_bytes;
  const uint64_t stamp = static_cast<uint64_t>(now_ns);
  for (size_t off = 0; off < blast_block_.size(); off += stride) {
    std::memcpy(blast_block_.data() + off + kRequestIdOffset, &stamp,
                sizeof(stamp));
  }
  conn.out.insert(conn.out.end(), blast_block_.begin(), blast_block_.end());
  result_->sent += kBlastBlockFrames;
}

void Runner::UpdateEpoll(size_t index, bool want_write) {
  Conn& conn = conns_[index];
  if (conn.want_write == want_write) {
    return;
  }
  conn.want_write = want_write;
  epoll_event ev;
  std::memset(&ev, 0, sizeof(ev));
  ev.events = want_write ? (EPOLLIN | EPOLLOUT) : EPOLLIN;
  ev.data.u64 = static_cast<uint64_t>(index);
  epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn.fd, &ev);
}

void Runner::CloseConn(size_t index) {
  Conn& conn = conns_[index];
  close(conn.fd);
  conn.fd = -1;
  --live_conns_;
  if (retry_) {
    // Re-dial after a short delay; a tight reconnect loop against a downed
    // server would spin the generator.
    conn.reconnect_at_ns =
        MonotonicNowNs() + config_.retry.reconnect_delay_us * 1'000;
  }
}

bool Runner::Reconnect(size_t index) {
  Conn& conn = conns_[index];
  conn.fd = socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (conn.fd < 0) {
    return false;
  }
  const int one = 1;
  setsockopt(conn.fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  if (connect(conn.fd, reinterpret_cast<sockaddr*>(&addr_), sizeof(addr_)) !=
          0 &&
      errno != EINPROGRESS) {
    close(conn.fd);
    conn.fd = -1;
    return false;
  }
  epoll_event ev;
  std::memset(&ev, 0, sizeof(ev));
  ev.events = EPOLLIN | EPOLLOUT;  // EPOLLOUT signals connect completion.
  ev.data.u64 = static_cast<uint64_t>(index);
  if (epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, conn.fd, &ev) != 0) {
    close(conn.fd);
    conn.fd = -1;
    return false;
  }
  conn.connected = false;
  conn.want_write = true;
  conn.awaiting = false;
  conn.decoder = FrameDecoder();  // Any half-read frame died with the fd.
  conn.out.clear();
  conn.out_pos = 0;
  ++live_conns_;  // Counted live while connecting; failure re-closes it.
  return true;
}

// Returns false when the connection died.
bool Runner::FlushConn(size_t index) {
  Conn& conn = conns_[index];
  while (conn.out_pos < conn.out.size()) {
    const ssize_t n = write(conn.fd, conn.out.data() + conn.out_pos,
                            conn.out.size() - conn.out_pos);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        UpdateEpoll(index, true);
        return true;
      }
      CloseConn(index);
      return false;
    }
    result_->bytes_out += n;
    conn.out_pos += static_cast<size_t>(n);
  }
  conn.out.clear();
  conn.out_pos = 0;
  UpdateEpoll(index, false);
  return true;
}

int64_t Runner::BackoffNs(int attempts) {
  const int shift = std::min(attempts - 1, 20);
  int64_t delay_us = std::min(config_.retry.backoff_base_us << shift,
                              config_.retry.backoff_cap_us);
  if (config_.retry.jitter > 0.0) {
    std::uniform_real_distribution<double> u(0.0, 1.0);
    const double factor =
        1.0 + config_.retry.jitter * (2.0 * u(jitter_rng_) - 1.0);
    delay_us = std::max<int64_t>(
        static_cast<int64_t>(static_cast<double>(delay_us) * factor), 0);
  }
  return delay_us * 1'000;
}

Runner::OutstandingMap::iterator Runner::FinishOutstanding(
    OutstandingMap::iterator it, int64_t now_ns) {
  if (config_.mode == LoadMode::kClosed) {
    // Free the issuing connection's in-flight slot even if the completing
    // reply arrived on a different connection via a retry.
    Conn& conn = conns_[it->second.issuer];
    conn.awaiting = false;
    conn.next_send_ns = now_ns + config_.think_time_us * 1'000;
  }
  return outstanding_.erase(it);
}

void Runner::SendRetry(uint64_t id, Outstanding& o, int64_t now_ns) {
  // Round-robin onto any live connection; with nothing up right now the
  // entry stays due and fires again once a reconnect lands.
  for (size_t probe = 0; probe < conns_.size(); ++probe) {
    const size_t index = rr_;
    rr_ = rr_ + 1 == conns_.size() ? 0 : rr_ + 1;
    Conn& conn = conns_[index];
    if (conn.fd < 0 || !conn.connected) {
      continue;
    }
    RequestFrame frame;
    frame.request_id = id;
    frame.function_id = o.function_id;
    frame.payload_size = config_.payload_bytes;
    frame.deadline_us = config_.deadline_us;
    frame.retry = true;
    EncodeRequest(frame, conn.out);
    conn.out.insert(conn.out.end(), payload_.begin(), payload_.end());
    ++result_->sent;
    ++result_->retries;
    ++o.attempts;
    o.awaiting_retry = false;
    o.due_ns = now_ns + config_.retry.timeout_us * 1'000;
    FlushConn(index);
    return;
  }
  o.due_ns = now_ns + config_.retry.reconnect_delay_us * 1'000;
}

void Runner::ScanOutstanding(int64_t now_ns) {
  for (auto it = outstanding_.begin(); it != outstanding_.end();) {
    Outstanding& o = it->second;
    if (o.due_ns > now_ns) {
      ++it;
      continue;
    }
    if (o.awaiting_retry) {
      SendRetry(it->first, o, now_ns);
      ++it;
      continue;
    }
    ++result_->timeouts;
    if (o.attempts >= config_.retry.max_attempts) {
      ++result_->gave_up;
      it = FinishOutstanding(it, now_ns);
      continue;
    }
    o.awaiting_retry = true;
    o.due_ns = now_ns + BackoffNs(o.attempts);
    ++it;
  }
}

void Runner::OnReplyRetry(const ReplyFrame& reply, int64_t now_ns) {
  auto it = outstanding_.find(reply.request_id);
  if (it == outstanding_.end()) {
    // Late reply for an id that already completed (e.g. the original answer
    // racing a dedupe-cached retry answer) or was given up on.
    if (reply.status == ReplyStatus::kOk) {
      ++result_->duplicate_ok;
    }
    return;
  }
  Outstanding& o = it->second;
  switch (reply.status) {
    case ReplyStatus::kOk:
      ++result_->ok;
      if (reply.latency_class == LatencyClass::kCold) {
        ++result_->cold;
      } else {
        ++result_->warm;
      }
      result_->latency.Record(now_ns - o.first_send_ns);
      FinishOutstanding(it, now_ns);
      return;
    case ReplyStatus::kShedQueueFull:
      ++result_->shed_queue_full;
      break;
    case ReplyStatus::kShedDeadline:
      ++result_->shed_deadline;
      break;
    case ReplyStatus::kShedShutdown:
      ++result_->shed_shutdown;
      break;
    case ReplyStatus::kRejected:
      ++result_->rejected;
      break;
    case ReplyStatus::kFailed:
      ++result_->failed;
      break;
    case ReplyStatus::kShedDegraded:
      ++result_->shed_degraded;
      break;
  }
  // Every non-kOk status is retriable (IsRetriableStatus).
  if (o.attempts >= config_.retry.max_attempts) {
    ++result_->gave_up;
    FinishOutstanding(it, now_ns);
    return;
  }
  o.awaiting_retry = true;
  o.due_ns = now_ns + BackoffNs(o.attempts);
}

void Runner::OnReply(const ReplyFrame& reply, int64_t now_ns) {
  ++result_->replies;
  if (retry_) {
    OnReplyRetry(reply, now_ns);
    return;
  }
  switch (reply.status) {
    case ReplyStatus::kOk:
      ++result_->ok;
      if (reply.latency_class == LatencyClass::kCold) {
        ++result_->cold;
      } else {
        ++result_->warm;
      }
      result_->latency.Record(now_ns -
                              static_cast<int64_t>(reply.request_id));
      break;
    case ReplyStatus::kShedQueueFull:
      ++result_->shed_queue_full;
      break;
    case ReplyStatus::kShedDeadline:
      ++result_->shed_deadline;
      break;
    case ReplyStatus::kShedShutdown:
      ++result_->shed_shutdown;
      break;
    case ReplyStatus::kRejected:
      ++result_->rejected;
      break;
    case ReplyStatus::kFailed:
      ++result_->failed;
      break;
    case ReplyStatus::kShedDegraded:
      ++result_->shed_degraded;
      break;
  }
}

// Returns false when the connection died.
bool Runner::ReadReplies(size_t index, int64_t now_ns) {
  Conn& conn = conns_[index];
  for (;;) {
    const ssize_t n = read(conn.fd, read_buf_.data(), read_buf_.size());
    if (n == 0) {
      CloseConn(index);
      return false;
    }
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        return true;
      }
      CloseConn(index);
      return false;
    }
    result_->bytes_in += n;
    conn.decoder.Push(read_buf_.data(), static_cast<size_t>(n));
    DecodedFrame frame;
    for (;;) {
      const FrameDecoder::Result result = conn.decoder.Next(&frame);
      if (result == FrameDecoder::Result::kNeedMore) {
        break;
      }
      if (result == FrameDecoder::Result::kError ||
          frame.type != FrameType::kReply) {
        CloseConn(index);
        return false;
      }
      OnReply(frame.reply, now_ns);
      if (config_.mode == LoadMode::kClosed && !retry_) {
        // Retry mode frees the slot in FinishOutstanding instead, because
        // a retriable reply keeps the id (and the slot) in flight.
        conn.awaiting = false;
        conn.next_send_ns = now_ns + config_.think_time_us * 1'000;
      }
    }
    if (static_cast<size_t>(n) < read_buf_.size()) {
      return true;
    }
  }
}

size_t Runner::BacklogBytes() const {
  size_t total = 0;
  for (const Conn& conn : conns_) {
    if (conn.fd >= 0) {
      total += conn.out.size() - conn.out_pos;
    }
  }
  return total;
}

bool Runner::Run(std::string* error) {
  read_buf_.resize(256 * 1024);
  payload_.assign(config_.payload_bytes, 0);
  const bool open = config_.mode == LoadMode::kOpen;
  const bool blast = open && config_.target_rps <= 0.0;
  if (blast && retry_) {
    if (error != nullptr) {
      *error =
          "retry mode is incompatible with blast load (pre-encoded blocks "
          "cannot carry stable per-request ids); set --rps > 0";
    }
    return false;
  }
  if (!Connect(error)) {
    return false;
  }
  if (blast) {
    BuildBlastBlock();
  } else if (open) {
    inter_arrival_ =
        std::exponential_distribution<double>(config_.target_rps / 1e9);
  }

  const int64_t start_ns = MonotonicNowNs();
  const int64_t send_end_ns = start_ns + config_.duration_ms * 1'000'000;
  int64_t next_arrival_ns = start_ns;
  bool sending = true;
  int64_t send_window_ns = 0;
  std::vector<epoll_event> events(conns_.size() + 1);
  int64_t drain_deadline_ns = 0;

  for (;;) {
    const int64_t now_ns = MonotonicNowNs();
    if (retry_) {
      // Re-dial dead connections so injected resets don't strand the run.
      for (size_t i = 0; i < conns_.size(); ++i) {
        Conn& conn = conns_[i];
        if (conn.fd < 0 && now_ns >= conn.reconnect_at_ns && !Reconnect(i)) {
          conn.reconnect_at_ns =
              now_ns + config_.retry.reconnect_delay_us * 1'000;
        }
      }
    } else if (live_conns_ == 0) {
      break;
    }
    if (sending &&
        (now_ns >= send_end_ns ||
         (config_.stop != nullptr &&
          config_.stop->load(std::memory_order_relaxed)))) {
      sending = false;
      send_window_ns = now_ns - start_ns;
      drain_deadline_ns = now_ns + config_.drain_ms * 1'000'000;
    }
    if (!sending) {
      // Retry mode drains until the outstanding table empties: a reply
      // count alone can't tell rescued requests from deduped drops.
      const bool all_done = retry_ ? outstanding_.empty()
                                   : result_->replies >= result_->sent;
      if (all_done || now_ns >= drain_deadline_ns) {
        break;
      }
    }
    if (retry_) {
      ScanOutstanding(now_ns);
    }

    // Generate whatever the load shape says is due.
    if (sending) {
      if (blast) {
        for (size_t i = 0; i < conns_.size(); ++i) {
          Conn& conn = conns_[i];
          // Only refill connections whose previous block fully left the
          // socket: blast throughput is bounded by the kernel, not by an
          // ever-growing user-space backlog.
          if (conn.fd >= 0 && conn.out_pos >= conn.out.size()) {
            AppendBlastBlock(conn, now_ns);
            FlushConn(i);
          }
        }
      } else if (open) {
        int burst = 0;
        while (next_arrival_ns <= now_ns &&
               burst < kMaxArrivalsPerIteration) {
          // Round-robin across live connections; the arrival is dropped
          // only if every connection died.
          for (size_t probe = 0; probe < conns_.size(); ++probe) {
            Conn& conn = conns_[rr_];
            rr_ = rr_ + 1 == conns_.size() ? 0 : rr_ + 1;
            if (conn.fd >= 0 && conn.connected) {
              AppendRequest(conn, now_ns);
              break;
            }
          }
          next_arrival_ns +=
              static_cast<int64_t>(inter_arrival_(rng_)) + 1;
          ++burst;
        }
        for (size_t i = 0; i < conns_.size(); ++i) {
          if (conns_[i].fd >= 0 && conns_[i].out_pos < conns_[i].out.size()) {
            FlushConn(i);
          }
        }
        result_->peak_backlog_bytes =
            std::max(result_->peak_backlog_bytes, BacklogBytes());
      } else {  // Closed loop.
        for (size_t i = 0; i < conns_.size(); ++i) {
          Conn& conn = conns_[i];
          if (conn.fd >= 0 && conn.connected && !conn.awaiting &&
              now_ns >= conn.next_send_ns) {
            AppendRequest(conn, now_ns);
            conn.awaiting = true;
            FlushConn(i);
          }
        }
      }
    }

    // Pick a wait: blast never sleeps while sending; paced open sleeps to
    // the next arrival; closed sleeps to the earliest think-time expiry.
    int timeout_ms = 0;
    if (!sending) {
      timeout_ms = 1;
    } else if (blast) {
      timeout_ms = 0;
    } else if (open) {
      timeout_ms = static_cast<int>(
          std::max<int64_t>((next_arrival_ns - now_ns) / 1'000'000, 0));
    } else {
      int64_t earliest = send_end_ns;
      for (const Conn& conn : conns_) {
        if (conn.fd >= 0 && !conn.awaiting) {
          earliest = std::min(earliest, conn.next_send_ns);
        }
      }
      timeout_ms = static_cast<int>(
          std::max<int64_t>((earliest - now_ns) / 1'000'000, 0));
      timeout_ms = std::min(timeout_ms, 100);
    }
    if (retry_ && (!outstanding_.empty() ||
                   live_conns_ < static_cast<int>(conns_.size()))) {
      // Timeout/backoff/reconnect deadlines need sub-epoll granularity.
      timeout_ms = std::min(timeout_ms, 1);
    }

    const int num_events =
        epoll_wait(epoll_fd_, events.data(),
                   static_cast<int>(events.size()), timeout_ms);
    const int64_t recv_ns = MonotonicNowNs();
    for (int i = 0; i < num_events; ++i) {
      const size_t index = events[i].data.u64;
      Conn& conn = conns_[index];
      if (conn.fd < 0) {
        continue;
      }
      if (!conn.connected) {
        // A reconnect in progress: EPOLLOUT (or an error) decides it.
        int err = 0;
        socklen_t len = sizeof(err);
        getsockopt(conn.fd, SOL_SOCKET, SO_ERROR, &err, &len);
        if (err != 0 || (events[i].events & (EPOLLHUP | EPOLLERR)) != 0) {
          CloseConn(index);
        } else {
          conn.connected = true;
          ++result_->reconnects;
          UpdateEpoll(index, !conn.out.empty());
        }
        continue;
      }
      if ((events[i].events & (EPOLLHUP | EPOLLERR)) != 0) {
        CloseConn(index);
        continue;
      }
      if ((events[i].events & EPOLLIN) != 0 && !ReadReplies(index, recv_ns)) {
        continue;
      }
      if ((events[i].events & EPOLLOUT) != 0) {
        FlushConn(index);
      }
    }
  }

  const int64_t end_ns = MonotonicNowNs();
  result_->elapsed_ns = end_ns - start_ns;
  result_->send_window_ns =
      send_window_ns > 0 ? send_window_ns : end_ns - start_ns;
  return true;
}

}  // namespace

LoadGenerator::LoadGenerator(LoadGenConfig config)
    : config_(std::move(config)) {}

bool LoadGenerator::Run(LoadGenResult* result, std::string* error) {
  *result = LoadGenResult{};
  Runner runner(config_, result);
  return runner.Run(error);
}

}  // namespace faas
