// Process-wide idempotent request-id index for the serving bridge.
//
// The client retry kit resends the same request_id after a timeout or a
// retriable reply; the server must never execute that id twice once it
// has succeeded.  The index is the transport-layer reply cache of the
// PR-7 RPC plane rebuilt for wall-clock serving: Begin() claims an id
// before execution, Done() caches the successful reply, Forget() releases
// ids whose outcome the client is expected to resend (sheds, failures),
// and retries of completed ids are answered straight from the cache on
// whichever event loop the retry lands — retried connections usually hash
// to a different SO_REUSEPORT loop, which is why this index is shared and
// sharded rather than per-loop.
//
// Only constructed when dedupe is enabled, so the default serve path
// allocates nothing and takes no locks (empty-plan byte-identity).

#ifndef SRC_SERVE_IDEMPOTENCY_H_
#define SRC_SERVE_IDEMPOTENCY_H_

#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "src/serve/wire.h"

namespace faas::serve {

class IdempotencyIndex {
 public:
  enum class Claim {
    kFresh,     // First sighting: caller must execute and Done()/Forget().
    kInflight,  // Original still executing: drop this duplicate.
    kDone,      // Already succeeded: *cached holds the reply to re-emit.
  };

  // `ttl_ns` bounds how long a completed id is remembered; 0 keeps ids
  // until Sweep() is never useful (tests).  `shards` must be a power of
  // two.
  explicit IdempotencyIndex(int64_t ttl_ns, int shards = 16);

  IdempotencyIndex(const IdempotencyIndex&) = delete;
  IdempotencyIndex& operator=(const IdempotencyIndex&) = delete;

  // Claims `request_id`.  kDone fills *cached with the stored reply.
  Claim Begin(uint64_t request_id, int64_t now_ns, ReplyFrame* cached);

  // Records the successful reply for a claimed id (only kOk outcomes are
  // cached; retriable outcomes call Forget instead).
  void Done(uint64_t request_id, const ReplyFrame& reply, int64_t now_ns);

  // Releases a claimed id without caching, so a retry re-executes.
  void Forget(uint64_t request_id);

  // Evicts completed entries older than the TTL.  Called opportunistically
  // from the owning bridge's timer path.
  void Sweep(int64_t now_ns);

  // Total live entries (inflight + cached), summed across shards.
  size_t Size() const;

 private:
  struct Entry {
    bool done = false;
    int64_t done_ns = 0;
    ReplyFrame reply;
  };
  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<uint64_t, Entry> entries;
  };

  Shard& ShardFor(uint64_t request_id) {
    // Fibonacci hash of the id picks the shard; ids from one client are
    // sequential, so low bits alone would pile onto one shard.
    const uint64_t h = request_id * 0x9E3779B97F4A7C15ull;
    return shards_[(h >> 48) & mask_];
  }

  const int64_t ttl_ns_;
  const uint64_t mask_;
  std::vector<Shard> shards_;
};

}  // namespace faas::serve

#endif  // SRC_SERVE_IDEMPOTENCY_H_
