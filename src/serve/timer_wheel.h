// Wall-clock timer wheel for the serving event loops.
//
// The simulator orders future work through a binary-heap EventQueue in
// virtual time; a serving event loop cannot, because wall time advances on
// its own and the loop must find "everything due by now" in O(due), not
// O(log pending).  This is the classic hashed timer wheel: a power-of-two
// ring of slots, each holding the timers whose deadline hashes onto it, a
// cursor that advances tick by tick, and timers past the current rotation
// simply staying in their slot until the cursor comes around again.
// Schedule and fire are O(1) amortised; a full rotation of empty slots
// costs one vector-emptiness check per tick.
//
// Single-threaded by design: each epoll loop owns one wheel, so there are
// no locks anywhere.  Callbacks are a bare function pointer plus a context
// pointer and a 64-bit datum — no std::function, no allocation per timer —
// because the bridge schedules one completion timer per simulated
// execution and the wheel must keep up with the admission path.
//
// Cancellation is by validation, not by handle: callbacks fire
// unconditionally and the callee checks whether the work is still relevant
// (the pattern the controller uses for superseded activation ids).  This
// keeps the wheel free of id tables on the hot path.

#ifndef SRC_SERVE_TIMER_WHEEL_H_
#define SRC_SERVE_TIMER_WHEEL_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace faas {

class TimerWheel {
 public:
  using Callback = void (*)(void* ctx, uint64_t data);

  // `tick_ns` is the firing granularity; `num_slots` (rounded up to a power
  // of two) times the tick is one rotation.  Timers beyond one rotation are
  // revisited once per rotation until due, so keep rotations comfortably
  // longer than the common deadline (the serving default — 64 us ticks,
  // 4096 slots — gives a 268 ms rotation against O(100 us) service times
  // and O(10 s) keep-alives: a keep-alive timer is touched ~37 times before
  // firing, which is noise).
  explicit TimerWheel(int64_t tick_ns = 64 * 1024, size_t num_slots = 4096);

  // Registers `fn(ctx, data)` to fire once `deadline_ns` is reached.
  // Deadlines in the past fire on the next Advance.
  void Schedule(int64_t deadline_ns, Callback fn, void* ctx, uint64_t data);

  // Fires every timer whose tick has fully elapsed by now_ns, in tick order
  // (timers within one tick fire in insertion order).  Nothing ever fires
  // before its deadline; a timer fires at most one tick late (the wheel's
  // granularity).  Callbacks may schedule new timers; a new timer landing in
  // the tick currently being processed fires on a later Advance, never
  // recursively within this one.
  void Advance(int64_t now_ns);

  // Instant at which the earliest pending timer will fire (the end of its
  // tick), or -1 when no timer is pending: sleep until exactly this time
  // and the wake-up Advance fires it.  O(slots + pending), called only when
  // the event loop is about to sleep.
  int64_t NextDeadlineNs() const;

  size_t pending() const { return pending_; }
  int64_t tick_ns() const { return tick_ns_; }

 private:
  struct Timer {
    int64_t deadline_ns;
    uint64_t data;
    Callback fn;
    void* ctx;
  };

  size_t SlotOf(int64_t deadline_ns) const {
    return static_cast<size_t>(deadline_ns / tick_ns_) & slot_mask_;
  }

  int64_t tick_ns_;
  size_t slot_mask_;
  int64_t current_tick_ = 0;  // Ticks fully processed so far.
  size_t pending_ = 0;
  std::vector<std::vector<Timer>> slots_;
  // Scratch for the in-processing slot, so callbacks can Schedule into the
  // same slot without invalidating the iteration.
  std::vector<Timer> firing_;
};

}  // namespace faas

#endif  // SRC_SERVE_TIMER_WHEEL_H_
