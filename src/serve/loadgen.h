// Loopback load generators for the serving front-end.
//
// Two canonical load shapes drive the server:
//
//   Open loop   — arrivals follow a seeded Poisson process at a target rate
//                 and are written regardless of how fast replies come back;
//                 the generator never blocks on a response, so server-side
//                 queueing delay shows up in the measured latency instead of
//                 silently throttling the offered load.  target_rps == 0 is
//                 "blast" mode: frames are pre-encoded in fixed blocks and
//                 written as fast as the socket accepts them, which is how
//                 the ingest-throughput bench measures peak frames/s.
//   Closed loop — N connections each keep exactly one request in flight and
//                 wait think_time between a reply and the next request, the
//                 classic interactive-client model.
//
// Requests carry their send timestamp (CLOCK_MONOTONIC ns) as the request
// id, so e2e latency on reply receipt is one subtraction — no in-flight
// lookup table on either side.  Latencies land in a LatencyRecorder
// (log-bucketed, mergeable), from which callers read p50/p99/p99.9.
//
// With RetryConfig.enabled the generator switches to a resilience kit:
// request ids become sequential, every in-flight request is tracked in an
// outstanding table keyed by id, and any retriable outcome — a non-kOk
// reply, a per-attempt client timeout, a dead connection — re-sends the
// SAME id with the wire retry bit set after an exponential-backoff-with-
// jitter delay.  The server's idempotency index guarantees a retried id is
// never executed twice, so `ok` counts unique completed requests (goodput)
// and latency is measured from the FIRST send of the id.  Dead connections
// are re-dialed so a burst of injected resets does not strand the client.
// Blast mode is incompatible with retries (its pre-encoded blocks cannot
// carry stable per-request ids) and is rejected at Run().
//
// The generator is single-threaded (epoll over all connections).  An
// optional external stop flag aborts the send window early — tools/serve_load
// points it at its SIGINT handler.

#ifndef SRC_SERVE_LOADGEN_H_
#define SRC_SERVE_LOADGEN_H_

#include <atomic>
#include <cstdint>
#include <string>

#include "src/telemetry/latency_recorder.h"

namespace faas {

enum class LoadMode : uint8_t {
  kOpen,    // Poisson arrivals at target_rps (0 = blast).
  kClosed,  // One in-flight request per connection + think time.
};

// Client-side resilience kit (see header comment).  All-off by default:
// with enabled == false the generator's behaviour and output are identical
// to a build that predates retries.
struct RetryConfig {
  bool enabled = false;
  // Per-attempt client-side timeout; an unanswered attempt counts as a
  // timeout and (attempts permitting) triggers a retry.
  int64_t timeout_us = 100'000;
  // Exponential backoff between attempts: base doubles per attempt, capped.
  int64_t backoff_base_us = 2'000;
  int64_t backoff_cap_us = 100'000;
  // Fraction of the backoff randomised: delay *= 1 + jitter*(2u-1), u~U[0,1).
  // Jitter draws come from a dedicated RNG so enabling retries does not
  // perturb the seeded Poisson arrival schedule.
  double jitter = 0.5;
  // Total sends per request id, including the first (>= 1).
  int max_attempts = 4;
  // Delay before re-dialing a dead connection.
  int64_t reconnect_delay_us = 2'000;
};

struct LoadGenConfig {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  LoadMode mode = LoadMode::kOpen;
  int connections = 1;
  // Open loop: offered load in requests/s; 0 means blast (max rate).
  double target_rps = 0.0;
  // Closed loop: pause between a reply and the connection's next request.
  int64_t think_time_us = 0;
  // Length of the send window; after it closes the generator keeps reading
  // until every sent request is answered or drain_ms elapses.
  int64_t duration_ms = 1'000;
  int64_t drain_ms = 500;
  // Function ids cycle through [0, num_functions).
  uint32_t num_functions = 64;
  uint32_t payload_bytes = 0;
  // Per-request deadline carried on the wire (0 = none).
  uint32_t deadline_us = 0;
  uint64_t seed = 42;
  // Optional external abort (e.g. a SIGINT flag); ends the send window.
  const std::atomic<bool>* stop = nullptr;
  // Client-side retry/reconnect kit; incompatible with blast mode.
  RetryConfig retry;
};

struct LoadGenResult {
  int64_t sent = 0;
  int64_t replies = 0;
  // Reply status breakdown.
  int64_t ok = 0;
  int64_t shed_queue_full = 0;
  int64_t shed_deadline = 0;
  int64_t shed_shutdown = 0;
  int64_t rejected = 0;
  int64_t failed = 0;         // Execution killed by a crash/restart.
  int64_t shed_degraded = 0;  // Shed by a graceful-degradation tier.
  // Retry-kit accounting (all zero when retries are disabled).  In retry
  // mode `sent` counts every frame written (first sends + retries) and `ok`
  // counts UNIQUE completed request ids, so `ok` is the goodput numerator.
  int64_t retries = 0;       // Re-sends of an already-sent id.
  int64_t timeouts = 0;      // Attempts unanswered within retry.timeout_us.
  int64_t gave_up = 0;       // Ids abandoned after max_attempts.
  int64_t duplicate_ok = 0;  // kOk replies for an id already completed.
  int64_t reconnects = 0;    // Dead connections successfully re-dialed.
  // Latency-class breakdown of ok replies.
  int64_t warm = 0;
  int64_t cold = 0;
  int64_t bytes_out = 0;
  int64_t bytes_in = 0;
  int64_t elapsed_ns = 0;      // Whole run, including the drain phase.
  int64_t send_window_ns = 0;  // Sending portion only.
  // Largest open-loop backlog of encoded-but-unsent bytes (the open loop
  // never blocks; backpressure accumulates here instead).
  size_t peak_backlog_bytes = 0;
  LatencyRecorder latency;  // Client-observed e2e latency of ok replies.

  int64_t shed() const {
    return shed_queue_full + shed_deadline + shed_shutdown + shed_degraded;
  }
  // Unique first sends in retry mode (== sent when retries are off).
  int64_t unique_sends() const { return sent - retries; }
  // Fraction of unique requests that completed ok — the resilience bench's
  // goodput metric.
  double goodput() const {
    return unique_sends() > 0
               ? static_cast<double>(ok) / static_cast<double>(unique_sends())
               : 0.0;
  }
  double sent_rps() const {
    return send_window_ns > 0
               ? static_cast<double>(sent) * 1e9 /
                     static_cast<double>(send_window_ns)
               : 0.0;
  }
  double reply_rps() const {
    return elapsed_ns > 0 ? static_cast<double>(replies) * 1e9 /
                                static_cast<double>(elapsed_ns)
                          : 0.0;
  }
};

class LoadGenerator {
 public:
  explicit LoadGenerator(LoadGenConfig config);

  // Runs the configured load to completion.  False (with *error set) when
  // the server is unreachable or sockets are unavailable.
  bool Run(LoadGenResult* result, std::string* error);

 private:
  LoadGenConfig config_;
};

}  // namespace faas

#endif  // SRC_SERVE_LOADGEN_H_
