#include "src/characterization/characterization.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "src/common/logging.h"
#include "src/stats/descriptive.h"

namespace faas {

namespace {

double SafeDivide(double num, double denom) {
  return denom > 0.0 ? num / denom : 0.0;
}

}  // namespace

// ---- Figure 1 ---------------------------------------------------------------

FunctionsPerAppResult AnalyzeFunctionsPerApp(const Trace& trace) {
  // Group apps by size; accumulate invocation and function mass per size.
  std::map<int, std::array<double, 3>> by_size;  // apps, invocations, funcs.
  for (const AppTrace& app : trace.apps) {
    auto& entry = by_size[static_cast<int>(app.functions.size())];
    entry[0] += 1.0;
    entry[1] += static_cast<double>(app.TotalInvocations());
    entry[2] += static_cast<double>(app.functions.size());
  }
  const double total_apps = static_cast<double>(trace.apps.size());
  const double total_invocations =
      static_cast<double>(trace.TotalInvocations());
  const double total_functions = static_cast<double>(trace.TotalFunctions());

  FunctionsPerAppResult result;
  double cum_apps = 0.0;
  double cum_invocations = 0.0;
  double cum_functions = 0.0;
  for (const auto& [size, entry] : by_size) {
    cum_apps += entry[0];
    cum_invocations += entry[1];
    cum_functions += entry[2];
    FunctionsPerAppRow row;
    row.max_functions = size;
    row.fraction_of_apps = SafeDivide(cum_apps, total_apps);
    row.fraction_of_invocations = SafeDivide(cum_invocations, total_invocations);
    row.fraction_of_functions = SafeDivide(cum_functions, total_functions);
    result.rows.push_back(row);
  }
  return result;
}

namespace {

double RowLookup(const std::vector<FunctionsPerAppRow>& rows, int functions,
                 double FunctionsPerAppRow::*field) {
  double value = 0.0;
  for (const auto& row : rows) {
    if (row.max_functions > functions) {
      break;
    }
    value = row.*field;
  }
  return value;
}

}  // namespace

double FunctionsPerAppResult::FractionAppsWithAtMost(int functions) const {
  return RowLookup(rows, functions, &FunctionsPerAppRow::fraction_of_apps);
}

double FunctionsPerAppResult::FractionInvocationsFromAppsWithAtMost(
    int functions) const {
  return RowLookup(rows, functions,
                   &FunctionsPerAppRow::fraction_of_invocations);
}

double FunctionsPerAppResult::FractionFunctionsInAppsWithAtMost(
    int functions) const {
  return RowLookup(rows, functions,
                   &FunctionsPerAppRow::fraction_of_functions);
}

// ---- Figure 2 ---------------------------------------------------------------

TriggerShares AnalyzeTriggerShares(const Trace& trace) {
  std::array<double, kNumTriggerTypes> functions = {};
  std::array<double, kNumTriggerTypes> invocations = {};
  double total_functions = 0.0;
  double total_invocations = 0.0;
  for (const AppTrace& app : trace.apps) {
    for (const FunctionTrace& function : app.functions) {
      const auto index = static_cast<size_t>(function.trigger);
      functions[index] += 1.0;
      invocations[index] += static_cast<double>(function.InvocationCount());
      total_functions += 1.0;
      total_invocations += static_cast<double>(function.InvocationCount());
    }
  }
  TriggerShares shares;
  for (size_t i = 0; i < kNumTriggerTypes; ++i) {
    shares.percent_functions[i] = 100.0 * SafeDivide(functions[i], total_functions);
    shares.percent_invocations[i] =
        100.0 * SafeDivide(invocations[i], total_invocations);
  }
  return shares;
}

// ---- Figure 3 ---------------------------------------------------------------

TriggerComboResult AnalyzeTriggerCombos(const Trace& trace) {
  TriggerComboResult result;
  std::map<std::string, int64_t> combo_counts;
  std::array<int64_t, kNumTriggerTypes> with_trigger = {};
  int64_t timer_plus_other = 0;
  for (const AppTrace& app : trace.apps) {
    const std::set<TriggerType> triggers = app.TriggerSet();
    for (TriggerType trigger : triggers) {
      ++with_trigger[static_cast<size_t>(trigger)];
    }
    if (triggers.count(TriggerType::kTimer) > 0 && triggers.size() > 1) {
      ++timer_plus_other;
    }
    ++combo_counts[app.TriggerComboKey()];
  }
  const double total_apps = static_cast<double>(trace.apps.size());
  for (size_t i = 0; i < kNumTriggerTypes; ++i) {
    result.percent_apps_with_trigger[i] =
        100.0 * SafeDivide(static_cast<double>(with_trigger[i]), total_apps);
  }
  result.percent_apps_timer_plus_other =
      100.0 * SafeDivide(static_cast<double>(timer_plus_other), total_apps);

  std::vector<std::pair<std::string, int64_t>> sorted(combo_counts.begin(),
                                                      combo_counts.end());
  std::sort(sorted.begin(), sorted.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  double cumulative = 0.0;
  for (const auto& [combo, count] : sorted) {
    TriggerComboRow row;
    row.combo = combo;
    row.percent_apps =
        100.0 * SafeDivide(static_cast<double>(count), total_apps);
    cumulative += row.percent_apps;
    row.cumulative_percent = cumulative;
    result.combos.push_back(std::move(row));
  }
  return result;
}

// ---- Figure 4 ---------------------------------------------------------------

HourlyLoadResult AnalyzeHourlyLoad(const Trace& trace) {
  HourlyLoadResult result;
  const int hours =
      static_cast<int>((trace.horizon.millis() + 3'599'999) / 3'600'000);
  result.invocations_per_hour.assign(static_cast<size_t>(hours), 0);
  for (const AppTrace& app : trace.apps) {
    for (const FunctionTrace& function : app.functions) {
      for (TimePoint t : function.invocations) {
        const auto hour =
            static_cast<size_t>(t.millis_since_origin() / 3'600'000);
        if (hour < result.invocations_per_hour.size()) {
          ++result.invocations_per_hour[hour];
        }
      }
    }
  }
  int64_t peak = 0;
  for (int64_t count : result.invocations_per_hour) {
    peak = std::max(peak, count);
  }
  result.relative_load.reserve(result.invocations_per_hour.size());
  double baseline = 1.0;
  for (int64_t count : result.invocations_per_hour) {
    const double relative =
        peak > 0 ? static_cast<double>(count) / static_cast<double>(peak) : 0.0;
    result.relative_load.push_back(relative);
    baseline = std::min(baseline, relative);
  }
  result.baseline_fraction = baseline;
  return result;
}

// ---- Figure 5 ---------------------------------------------------------------

InvocationRateResult AnalyzeInvocationRates(const Trace& trace) {
  InvocationRateResult result;
  const double days = trace.horizon.days();
  FAAS_CHECK(days > 0.0) << "empty trace horizon";

  std::vector<double> app_rates;
  std::vector<double> function_rates;
  app_rates.reserve(trace.apps.size());
  for (const AppTrace& app : trace.apps) {
    app_rates.push_back(static_cast<double>(app.TotalInvocations()) / days);
    for (const FunctionTrace& function : app.functions) {
      function_rates.push_back(
          static_cast<double>(function.InvocationCount()) / days);
    }
  }

  // Anchors before moving the vectors into the ECDFs.
  const double total_apps = static_cast<double>(app_rates.size());
  double at_most_hourly = 0.0;
  double at_most_minutely = 0.0;
  for (double rate : app_rates) {
    if (rate <= 24.0) {
      at_most_hourly += 1.0;
    }
    if (rate <= 1440.0) {
      at_most_minutely += 1.0;
    }
  }
  result.fraction_apps_at_most_hourly = SafeDivide(at_most_hourly, total_apps);
  result.fraction_apps_at_most_minutely =
      SafeDivide(at_most_minutely, total_apps);

  // Figure 5(b): popularity curve over apps sorted by rate, descending.
  std::vector<double> sorted_rates = app_rates;
  std::sort(sorted_rates.begin(), sorted_rates.end(), std::greater<>());
  double total_rate = 0.0;
  for (double rate : sorted_rates) {
    total_rate += rate;
  }
  static constexpr double kPopulationFractions[] = {
      0.00001, 0.0001, 0.001, 0.01, 0.05, 0.1, 0.186, 0.25, 0.5, 0.75, 1.0};
  size_t index = 0;
  double cumulative = 0.0;
  for (double fraction : kPopulationFractions) {
    const size_t target = std::min(
        sorted_rates.size(),
        static_cast<size_t>(std::ceil(fraction * total_apps)));
    while (index < target) {
      cumulative += sorted_rates[index];
      ++index;
    }
    result.app_popularity_curve.emplace_back(
        fraction, SafeDivide(cumulative, total_rate));
  }
  // Share of invocations from apps averaging at least one per minute.
  double minutely_rate_mass = 0.0;
  double minutely_apps = 0.0;
  for (double rate : sorted_rates) {
    if (rate >= 1440.0) {
      minutely_rate_mass += rate;
      minutely_apps += 1.0;
    } else {
      break;
    }
  }
  result.invocation_share_of_minutely_apps =
      SafeDivide(minutely_rate_mass, total_rate);
  result.fraction_apps_minutely = SafeDivide(minutely_apps, total_apps);

  result.app_daily_rate_cdf = Ecdf(std::move(app_rates));
  result.function_daily_rate_cdf = Ecdf(std::move(function_rates));
  return result;
}

// ---- Figure 6 ---------------------------------------------------------------

IatCvResult AnalyzeIatCv(const Trace& trace, int64_t min_invocations) {
  std::vector<double> all;
  std::vector<double> only_timers;
  std::vector<double> some_timers;
  std::vector<double> no_timers;
  for (const AppTrace& app : trace.apps) {
    if (app.TotalInvocations() < min_invocations) {
      continue;
    }
    const std::vector<TimePoint> merged = app.MergedInvocationTimes();
    const std::vector<Duration> iats = InterArrivalTimes(merged);
    if (iats.size() < 2) {
      continue;
    }
    std::vector<double> iat_minutes;
    iat_minutes.reserve(iats.size());
    for (Duration iat : iats) {
      iat_minutes.push_back(iat.minutes());
    }
    const double cv = CoefficientOfVariation(iat_minutes);

    all.push_back(cv);
    const std::set<TriggerType> triggers = app.TriggerSet();
    const bool has_timer = triggers.count(TriggerType::kTimer) > 0;
    if (has_timer) {
      some_timers.push_back(cv);
      if (triggers.size() == 1) {
        only_timers.push_back(cv);
      }
    } else {
      no_timers.push_back(cv);
    }
  }
  IatCvResult result;
  result.all_apps = Ecdf(std::move(all));
  result.only_timer_apps = Ecdf(std::move(only_timers));
  result.at_least_one_timer_apps = Ecdf(std::move(some_timers));
  result.no_timer_apps = Ecdf(std::move(no_timers));
  return result;
}

// ---- Section 3.4, idle times vs inter-arrival times -------------------------

IdleVsIatResult AnalyzeIdleVsIat(const Trace& trace, double max_rate_per_day,
                                 int64_t min_invocations) {
  IdleVsIatResult result;
  const double days = trace.horizon.days();
  std::vector<double> ks_distances;
  std::vector<double> exec_ratios;
  for (const AppTrace& app : trace.apps) {
    const int64_t invocations = app.TotalInvocations();
    if (invocations < min_invocations ||
        static_cast<double>(invocations) / days > max_rate_per_day) {
      continue;
    }
    // Weighted average execution time across the app's functions.
    double exec_ms = 0.0;
    for (const FunctionTrace& function : app.functions) {
      exec_ms += function.execution.average_ms *
                 static_cast<double>(function.InvocationCount());
    }
    exec_ms /= static_cast<double>(invocations);

    const std::vector<TimePoint> merged = app.MergedInvocationTimes();
    const std::vector<Duration> iats = InterArrivalTimes(merged);
    std::vector<double> iat_minutes;
    std::vector<double> it_minutes;
    iat_minutes.reserve(iats.size());
    it_minutes.reserve(iats.size());
    // Compare at the dataset's 1-minute resolution (the paper's invocation
    // data is minute-binned; sub-minute execution shifts are invisible).
    for (Duration iat : iats) {
      iat_minutes.push_back(std::floor(iat.minutes()));
      it_minutes.push_back(std::floor(std::max(
          0.0, (iat - Duration::Millis(static_cast<int64_t>(exec_ms)))
                   .minutes())));
    }
    const Ecdf iat_cdf(iat_minutes);
    const Ecdf it_cdf(it_minutes);
    ks_distances.push_back(KsDistance(iat_cdf, it_cdf));

    const double mean_iat_minutes = Mean(iat_minutes);
    if (mean_iat_minutes > 0.0) {
      exec_ratios.push_back((exec_ms / 60'000.0) / mean_iat_minutes);
    }
  }
  if (!ks_distances.empty()) {
    double nearly_identical = 0.0;
    for (double d : ks_distances) {
      if (d < 0.05) {
        nearly_identical += 1.0;
      }
    }
    result.fraction_nearly_identical =
        nearly_identical / static_cast<double>(ks_distances.size());
    result.ks_distance_cdf = Ecdf(std::move(ks_distances));
  }
  if (!exec_ratios.empty()) {
    result.median_exec_to_iat_ratio = Median(exec_ratios);
  }
  return result;
}

// ---- Figure 12 (illustrative) -----------------------------------------------

std::vector<ItHistogramPanel> SampleItHistograms(const Trace& trace, int count,
                                                 int bins,
                                                 int64_t min_invocations) {
  // Collect qualifying apps sorted by invocation volume, then pick evenly
  // spaced entries so the gallery spans the popularity range.
  std::vector<const AppTrace*> qualifying;
  for (const AppTrace& app : trace.apps) {
    if (app.TotalInvocations() >= min_invocations) {
      qualifying.push_back(&app);
    }
  }
  std::sort(qualifying.begin(), qualifying.end(),
            [](const AppTrace* a, const AppTrace* b) {
              return a->TotalInvocations() < b->TotalInvocations();
            });

  std::vector<ItHistogramPanel> panels;
  if (qualifying.empty() || count <= 0) {
    return panels;
  }
  const size_t stride =
      std::max<size_t>(1, qualifying.size() / static_cast<size_t>(count));
  for (size_t i = 0; i < qualifying.size() && static_cast<int>(panels.size()) < count;
       i += stride) {
    const AppTrace& app = *qualifying[i];
    ItHistogramPanel panel;
    panel.app_id = app.app_id;
    panel.invocations = app.TotalInvocations();
    std::vector<int64_t> counts(static_cast<size_t>(bins), 0);
    const std::vector<Duration> iats =
        InterArrivalTimes(app.MergedInvocationTimes());
    for (Duration iat : iats) {
      const auto bin = static_cast<int64_t>(iat.minutes());
      if (bin >= 0 && bin < bins) {
        ++counts[static_cast<size_t>(bin)];
      }
    }
    int64_t peak = 0;
    for (int64_t c : counts) {
      peak = std::max(peak, c);
    }
    panel.normalized_bins.reserve(counts.size());
    for (int64_t c : counts) {
      panel.normalized_bins.push_back(
          peak > 0 ? static_cast<double>(c) / static_cast<double>(peak) : 0.0);
    }
    panels.push_back(std::move(panel));
  }
  return panels;
}

// ---- Figure 7 ---------------------------------------------------------------

ExecutionTimeResult AnalyzeExecutionTimes(const Trace& trace) {
  // Weighted expansion: each function contributes its min/avg/max with
  // weight = sample count.  For the ECDFs we use weighted percentile grids;
  // to keep Ecdf semantics simple we expand to a resampled vector of fixed
  // size via weighted quantiles.
  std::vector<WeightedSample> minimum;
  std::vector<WeightedSample> average;
  std::vector<WeightedSample> maximum;
  std::vector<double> averages_for_fit;
  for (const AppTrace& app : trace.apps) {
    for (const FunctionTrace& function : app.functions) {
      const double weight =
          static_cast<double>(std::max<int64_t>(function.execution.count, 1));
      minimum.push_back({function.execution.minimum_ms / 1000.0, weight});
      average.push_back({function.execution.average_ms / 1000.0, weight});
      maximum.push_back({function.execution.maximum_ms / 1000.0, weight});
      averages_for_fit.push_back(function.execution.average_ms / 1000.0);
    }
  }
  FAAS_CHECK(!average.empty()) << "trace has no execution stats";

  // Resample the weighted distributions on an even quantile grid so that the
  // Ecdf objects reflect the weighted distribution.
  const auto resample = [](std::vector<WeightedSample> samples) {
    constexpr int kGridPoints = 2000;
    std::vector<double> values;
    values.reserve(kGridPoints);
    for (int i = 0; i < kGridPoints; ++i) {
      const double pct =
          100.0 * (static_cast<double>(i) + 0.5) / kGridPoints;
      values.push_back(WeightedPercentile(samples, pct));
    }
    return Ecdf(std::move(values));
  };

  ExecutionTimeResult result;
  result.minimum_seconds = resample(std::move(minimum));
  result.average_seconds = resample(std::move(average));
  result.maximum_seconds = resample(std::move(maximum));
  result.average_fit = FitLogNormalMle(averages_for_fit);
  return result;
}

// ---- Figure 8 ---------------------------------------------------------------

MemoryResult AnalyzeMemory(const Trace& trace) {
  std::vector<double> pct1;
  std::vector<double> average;
  std::vector<double> maximum;
  for (const AppTrace& app : trace.apps) {
    pct1.push_back(app.memory.percentile1_mb);
    average.push_back(app.memory.average_mb);
    maximum.push_back(app.memory.maximum_mb);
  }
  FAAS_CHECK(!average.empty()) << "trace has no memory stats";
  MemoryResult result;
  result.average_fit = FitBurrXiiMle(average);
  result.percentile1_mb = Ecdf(std::move(pct1));
  result.average_mb = Ecdf(std::move(average));
  result.maximum_mb = Ecdf(std::move(maximum));
  return result;
}

}  // namespace faas
