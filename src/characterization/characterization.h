// Workload characterization pipeline (Section 3).
//
// One analysis entry point per figure in the paper's characterization:
//   Figure 1 — functions per application (CDF + invocation/function shares);
//   Figure 2 — trigger shares of functions and invocations;
//   Figure 3 — trigger presence and combinations per application;
//   Figure 4 — platform load per hour, normalised to the peak;
//   Figure 5 — daily invocation-rate CDFs and popularity skew;
//   Figure 6 — coefficient of variation of inter-arrival times;
//   Figure 7 — execution-time distributions and log-normal fit;
//   Figure 8 — allocated-memory distributions and Burr fit.
// Each returns plain series/anchor values so tests can assert against the
// paper's numbers and benches can print the same rows the figures plot.

#ifndef SRC_CHARACTERIZATION_CHARACTERIZATION_H_
#define SRC_CHARACTERIZATION_CHARACTERIZATION_H_

#include <array>
#include <string>
#include <vector>

#include "src/stats/ecdf.h"
#include "src/stats/fitting.h"
#include "src/trace/types.h"

namespace faas {

// ---- Figure 1 ---------------------------------------------------------------
struct FunctionsPerAppRow {
  int max_functions = 0;          // Apps with at most this many functions...
  double fraction_of_apps = 0.0;  // ...are this fraction of all apps,
  double fraction_of_invocations = 0.0;  // ...carry this invocation share,
  double fraction_of_functions = 0.0;    // ...and hold this function share.
};

struct FunctionsPerAppResult {
  std::vector<FunctionsPerAppRow> rows;  // At each distinct app size.

  // Convenience anchors (paper: 54% single-function, 95% at most 10).
  double FractionAppsWithAtMost(int functions) const;
  double FractionInvocationsFromAppsWithAtMost(int functions) const;
  double FractionFunctionsInAppsWithAtMost(int functions) const;
};

FunctionsPerAppResult AnalyzeFunctionsPerApp(const Trace& trace);

// ---- Figure 2 ---------------------------------------------------------------
struct TriggerShares {
  std::array<double, kNumTriggerTypes> percent_functions = {};
  std::array<double, kNumTriggerTypes> percent_invocations = {};
};

TriggerShares AnalyzeTriggerShares(const Trace& trace);

// ---- Figure 3 ---------------------------------------------------------------
struct TriggerComboRow {
  std::string combo;         // e.g. "H", "HT", "HTQ".
  double percent_apps = 0.0;
  double cumulative_percent = 0.0;
};

struct TriggerComboResult {
  // Figure 3(a): % of apps with at least one trigger of each class.
  std::array<double, kNumTriggerTypes> percent_apps_with_trigger = {};
  // Figure 3(b): combinations sorted by popularity.
  std::vector<TriggerComboRow> combos;
  // Paper call-out: % of apps with timers AND at least one other trigger.
  double percent_apps_timer_plus_other = 0.0;
};

TriggerComboResult AnalyzeTriggerCombos(const Trace& trace);

// ---- Figure 4 ---------------------------------------------------------------
struct HourlyLoadResult {
  std::vector<int64_t> invocations_per_hour;
  // Same series normalised so the peak hour equals 1.0.
  std::vector<double> relative_load;
  // Minimum of the relative series: the paper observes a ~50% baseline.
  double baseline_fraction = 0.0;
};

HourlyLoadResult AnalyzeHourlyLoad(const Trace& trace);

// ---- Figure 5 ---------------------------------------------------------------
struct InvocationRateResult {
  Ecdf app_daily_rate_cdf;       // Average invocations/day per app.
  Ecdf function_daily_rate_cdf;  // Average invocations/day per function.

  // Figure 5(a) anchors.
  double fraction_apps_at_most_hourly = 0.0;  // <= 24/day (paper: 45%).
  double fraction_apps_at_most_minutely = 0.0;  // <= 1440/day (paper: 81%).

  // Figure 5(b): cumulative invocation share of the most popular apps, at
  // the given population fractions.
  std::vector<std::pair<double, double>> app_popularity_curve;
  // Paper call-out: invocation share of apps invoked at least once/minute.
  double invocation_share_of_minutely_apps = 0.0;
  double fraction_apps_minutely = 0.0;  // Paper: 18.6%.
};

InvocationRateResult AnalyzeInvocationRates(const Trace& trace);

// ---- Figure 6 ---------------------------------------------------------------
struct IatCvResult {
  Ecdf all_apps;
  Ecdf only_timer_apps;
  Ecdf at_least_one_timer_apps;
  Ecdf no_timer_apps;
};

// CV of each app's merged inter-arrival times; apps with fewer than
// `min_invocations` invocations are skipped (a CV needs several IATs).
IatCvResult AnalyzeIatCv(const Trace& trace, int64_t min_invocations = 10);

// ---- Section 3.4, idle times vs inter-arrival times -------------------------
// The paper verifies that for infrequently invoked applications (at most one
// invocation per minute on average, 81% of apps) the idle-time distribution
// is "extremely similar" to the IAT distribution, because executions are ~2
// orders of magnitude shorter than the gaps.  This analysis measures the
// per-app KS distance between the two distributions (idle time = IAT minus
// the invoked function's average execution time, floored at zero).
struct IdleVsIatResult {
  // KS distances, one per qualifying app.
  Ecdf ks_distance_cdf;
  // Fraction of qualifying apps whose KS distance is below 0.05.
  double fraction_nearly_identical = 0.0;
  // Median ratio of average execution time to average IAT (paper: <= 1e-2).
  double median_exec_to_iat_ratio = 0.0;
};

// Considers apps invoked at most `max_rate_per_day` times per day on average
// (default: once per minute) with at least `min_invocations` invocations.
IdleVsIatResult AnalyzeIdleVsIat(const Trace& trace,
                                 double max_rate_per_day = 1440.0,
                                 int64_t min_invocations = 10);

// ---- Figure 12 (illustrative) -----------------------------------------------
// Normalised binned idle-time distribution of one app over the trace, for
// the 9-panel gallery of real IT shapes.
struct ItHistogramPanel {
  std::string app_id;
  int64_t invocations = 0;
  // Bin counts over [0, bins) minutes, normalised so the max bin is 1.0.
  std::vector<double> normalized_bins;
};

// Returns up to `count` panels from apps with at least `min_invocations`,
// spread across the popularity range; `bins` 1-minute bins per panel.
std::vector<ItHistogramPanel> SampleItHistograms(const Trace& trace,
                                                 int count = 9, int bins = 30,
                                                 int64_t min_invocations = 50);

// ---- Figure 7 ---------------------------------------------------------------
struct ExecutionTimeResult {
  // Weighted percentiles over per-function statistics, weight = sample count
  // (the paper's methodology for approximating the true distribution).
  Ecdf minimum_seconds;
  Ecdf average_seconds;
  Ecdf maximum_seconds;
  LogNormalFit average_fit;  // Paper: log-mean -0.38, sigma 2.36.
};

ExecutionTimeResult AnalyzeExecutionTimes(const Trace& trace);

// ---- Figure 8 ---------------------------------------------------------------
struct MemoryResult {
  Ecdf percentile1_mb;
  Ecdf average_mb;
  Ecdf maximum_mb;
  BurrXiiFit average_fit;  // Paper: c=11.652, k=0.221, lambda=107.083.
};

MemoryResult AnalyzeMemory(const Trace& trace);

}  // namespace faas

#endif  // SRC_CHARACTERIZATION_CHARACTERIZATION_H_
