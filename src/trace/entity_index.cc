#include "src/trace/entity_index.h"

#include "src/common/logging.h"
#include "src/trace/types.h"

namespace faas {

std::shared_ptr<const EntityIndex> EntityIndex::Build(const Trace& trace) {
  auto index = std::make_shared<EntityIndex>();
  for (const AppTrace& app : trace.apps) {
    const AppId app_id = index->AddApp(app.owner_id, app.app_id);
    FAAS_CHECK(app_id.index() + 1 == index->num_apps())
        << "duplicate (owner, app) pair in trace: " << app.owner_id << "/"
        << app.app_id;
    for (const FunctionTrace& function : app.functions) {
      index->AddFunction(app_id, function.function_id);
    }
  }
  return index;
}

AppId EntityIndex::AddApp(std::string_view owner, std::string_view app) {
  const auto it = app_index_.find(AppKey{owner, app});
  if (it != app_index_.end()) {
    return AppId(it->second);
  }
  FAAS_CHECK(apps_.size() < static_cast<size_t>(AppId::kInvalid))
      << "app id space exhausted";
  const uint32_t owner_id = owners_.Intern(owner);
  const auto id = static_cast<uint32_t>(apps_.size());
  apps_.push_back(AppEntry{owner_id, std::string(app)});
  const AppEntry& entry = apps_.back();
  app_index_.emplace(
      AppKey{std::string_view(owners_.NameOf(owner_id)),
             std::string_view(entry.name)},
      id);
  return AppId(id);
}

FunctionId EntityIndex::AddFunction(AppId app, std::string_view function) {
  FAAS_CHECK(app.valid() && app.index() < apps_.size())
      << "function added under unknown app";
  const auto it = function_index_.find(FunctionKey{app.value, function});
  if (it != function_index_.end()) {
    return FunctionId(it->second);
  }
  FAAS_CHECK(functions_.size() < static_cast<size_t>(FunctionId::kInvalid))
      << "function id space exhausted";
  const auto id = static_cast<uint32_t>(functions_.size());
  functions_.push_back(FunctionEntry{app, std::string(function)});
  const FunctionEntry& entry = functions_.back();
  function_index_.emplace(FunctionKey{app.value, std::string_view(entry.name)},
                          id);
  return FunctionId(id);
}

std::optional<AppId> EntityIndex::FindApp(std::string_view owner,
                                          std::string_view app) const {
  const auto it = app_index_.find(AppKey{owner, app});
  if (it == app_index_.end()) {
    return std::nullopt;
  }
  return AppId(it->second);
}

std::optional<FunctionId> EntityIndex::FindFunction(
    AppId app, std::string_view function) const {
  if (!app.valid()) {
    return std::nullopt;
  }
  const auto it = function_index_.find(FunctionKey{app.value, function});
  if (it == function_index_.end()) {
    return std::nullopt;
  }
  return FunctionId(it->second);
}

const std::string& EntityIndex::AppName(AppId id) const {
  FAAS_CHECK(id.valid() && id.index() < apps_.size())
      << "unknown app id " << id.value;
  return apps_[id.index()].name;
}

const std::string& EntityIndex::OwnerName(AppId id) const {
  FAAS_CHECK(id.valid() && id.index() < apps_.size())
      << "unknown app id " << id.value;
  return owners_.NameOf(apps_[id.index()].owner);
}

const std::string& EntityIndex::FunctionName(FunctionId id) const {
  FAAS_CHECK(id.valid() && id.index() < functions_.size())
      << "unknown function id " << id.value;
  return functions_[id.index()].name;
}

AppId EntityIndex::AppOf(FunctionId id) const {
  FAAS_CHECK(id.valid() && id.index() < functions_.size())
      << "unknown function id " << id.value;
  return functions_[id.index()].app;
}

std::shared_ptr<const EntityIndex> EntityIndexFor(const Trace& trace) {
  if (trace.entities != nullptr) {
    return trace.entities;
  }
  return EntityIndex::Build(trace);
}

}  // namespace faas
