// EntityIndex: the trace's entity name table.
//
// Maps (owner, app) pairs to dense AppIds and (app, function) pairs to dense
// FunctionIds, in first-seen order.  App identity is the (owner, app) pair —
// two owners may reuse an app name — and function names are scoped to their
// app, matching the Azure dataset's Hash{Owner,App,Function} triple keys.
//
// Canonical ids: EntityIndex::Build(trace) interns apps in trace order and
// functions app-major, so
//
//   AppId(a)       == position a in trace.apps
//   FunctionId(f)  == position in the app-major function enumeration
//
// which is what every simulator relies on to index flat per-app state
// without any lookup at all.  The CSV reader and the workload generator
// attach the canonical index to the Trace they produce; transforms rebuild
// it.  Lookup is heterogeneous (string_view keys, no temporary allocations),
// which is what the CSV reader's join passes use.
//
// Determinism: interning happens single-threaded at parse/generate time and
// ids depend only on insertion order, so they are bit-identical across runs
// and across --threads.

#ifndef SRC_TRACE_ENTITY_INDEX_H_
#define SRC_TRACE_ENTITY_INDEX_H_

#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>

#include "src/common/intern.h"

namespace faas {

struct Trace;

class EntityIndex {
 public:
  EntityIndex() = default;

  EntityIndex(const EntityIndex&) = delete;
  EntityIndex& operator=(const EntityIndex&) = delete;
  EntityIndex(EntityIndex&&) = default;
  EntityIndex& operator=(EntityIndex&&) = default;

  // Canonical index for a trace: apps interned in trace order, functions
  // app-major, so ids double as positions (see the header comment).
  static std::shared_ptr<const EntityIndex> Build(const Trace& trace);

  // Interns an app (idempotent: an existing (owner, app) pair returns its
  // original id).
  AppId AddApp(std::string_view owner, std::string_view app);
  // Interns a function scoped to `app` (idempotent on the (app, name) pair).
  FunctionId AddFunction(AppId app, std::string_view function);

  // Heterogeneous lookups; no insertion, no temporary strings.
  std::optional<AppId> FindApp(std::string_view owner,
                               std::string_view app) const;
  std::optional<FunctionId> FindFunction(AppId app,
                                         std::string_view function) const;

  // Name re-materialization for the I/O boundary.
  const std::string& AppName(AppId id) const;
  const std::string& OwnerName(AppId id) const;
  const std::string& FunctionName(FunctionId id) const;
  // The app that owns a function.
  AppId AppOf(FunctionId id) const;

  size_t num_apps() const { return apps_.size(); }
  size_t num_functions() const { return functions_.size(); }
  size_t num_owners() const { return owners_.size(); }

 private:
  struct AppEntry {
    uint32_t owner = 0;  // Id in owners_.
    std::string name;
  };
  struct FunctionEntry {
    AppId app;
    std::string name;
  };

  // Composite lookup keys; the views point into the deque-stored entries
  // (stable addresses), so lookups never build a concatenated string.
  struct AppKey {
    std::string_view owner;
    std::string_view app;
    friend bool operator==(const AppKey&, const AppKey&) = default;
  };
  struct AppKeyHash {
    size_t operator()(const AppKey& key) const noexcept {
      const size_t h = std::hash<std::string_view>{}(key.owner);
      return h ^ (std::hash<std::string_view>{}(key.app) + 0x9e3779b97f4a7c15ULL +
                  (h << 6) + (h >> 2));
    }
  };
  struct FunctionKey {
    uint32_t app = 0;
    std::string_view name;
    friend bool operator==(const FunctionKey&, const FunctionKey&) = default;
  };
  struct FunctionKeyHash {
    size_t operator()(const FunctionKey& key) const noexcept {
      const size_t h = std::hash<uint32_t>{}(key.app);
      return h ^ (std::hash<std::string_view>{}(key.name) +
                  0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2));
    }
  };

  InternTable owners_;  // Owner names deduplicate across their apps.
  std::deque<AppEntry> apps_;
  std::deque<FunctionEntry> functions_;
  std::unordered_map<AppKey, uint32_t, AppKeyHash> app_index_;
  std::unordered_map<FunctionKey, uint32_t, FunctionKeyHash> function_index_;
};

// The trace's canonical index: Trace::entities when the producer attached
// one, otherwise freshly built.  Never null.
std::shared_ptr<const EntityIndex> EntityIndexFor(const Trace& trace);

}  // namespace faas

#endif  // SRC_TRACE_ENTITY_INDEX_H_
