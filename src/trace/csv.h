// CSV serialization of traces in the Azure public dataset schemas.
//
// The dataset released with the paper has three file families:
//   1. invocations_per_function.dNN.csv — one file per trace day, one row per
//      function: HashOwner,HashApp,HashFunction,Trigger,1,2,...,1440 with the
//      per-minute invocation counts of that day;
//   2. function_durations.csv — per-function execution-time summary:
//      HashOwner,HashApp,HashFunction,Average,Count,Minimum,Maximum (ms);
//   3. app_memory.csv — per-application allocated memory summary:
//      HashOwner,HashApp,SampleCount,AverageAllocatedMb,
//      AverageAllocatedMb_pct1,AverageAllocatedMb_pct100.
//
// The writer emits exactly these schemas from a Trace; the reader parses them
// back.  Because the public dataset (and therefore the schema) bins
// invocations per minute, exact sub-minute instants are not preserved across
// a round trip: the reader re-expands a count of k in minute m into k
// instants evenly spaced inside the minute, the same granularity limitation
// the paper works under (Section 3.1, "Limitations").

#ifndef SRC_TRACE_CSV_H_
#define SRC_TRACE_CSV_H_

#include <string>
#include <vector>

#include "src/trace/types.h"

namespace faas {

// Outcome of a parse/IO operation: holds either a value or an error message.
// `warnings` carries the "file:line: reason" records of rows skipped in
// skip-malformed mode (empty in strict mode, which fails instead).
template <typename T>
struct TraceIoResult {
  T value{};
  bool ok = false;
  std::string error;
  std::vector<std::string> warnings;

  static TraceIoResult Success(T v) {
    TraceIoResult r;
    r.value = std::move(v);
    r.ok = true;
    return r;
  }
  static TraceIoResult Failure(std::string message) {
    TraceIoResult r;
    r.error = std::move(message);
    return r;
  }
};

// How the reader treats malformed data rows (wrong field count, non-numeric
// fields, negative counts/durations/memory, unknown triggers).  Structural
// problems — unreadable files, missing columns — are errors in both modes.
struct CsvReadOptions {
  // false (strict): the first malformed row fails the whole read with a
  // file:line-numbered error.  true: malformed rows are skipped, each
  // recorded in TraceIoResult::warnings, and the rest of the file is used.
  bool skip_malformed = false;
};

inline constexpr int kMinutesPerDay = 1440;

// Writes the three file families into `directory` (created if missing).
// Returns an empty string on success, otherwise an error description.
std::string WriteTraceCsv(const Trace& trace, const std::string& directory);

// Reads a trace previously written by WriteTraceCsv (or hand-assembled in
// the same schema).  Day files are read while
// `directory/invocations_per_function.dNN.csv` exists, starting at d01.
TraceIoResult<Trace> ReadTraceCsv(const std::string& directory);
TraceIoResult<Trace> ReadTraceCsv(const std::string& directory,
                                  const CsvReadOptions& options);

// File-name helpers (exposed for tests).
std::string InvocationsFileName(int day_index);  // day_index starts at 1.
inline constexpr char kDurationsFileName[] = "function_durations.csv";
inline constexpr char kMemoryFileName[] = "app_memory.csv";

}  // namespace faas

#endif  // SRC_TRACE_CSV_H_
