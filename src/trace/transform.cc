#include "src/trace/transform.h"

#include <algorithm>

#include "src/common/rng.h"
#include "src/trace/entity_index.h"

namespace faas {

Trace ClipToHorizon(const Trace& trace, Duration horizon) {
  Trace clipped;
  clipped.horizon = horizon;
  for (const AppTrace& app : trace.apps) {
    AppTrace copy = app;
    for (FunctionTrace& function : copy.functions) {
      std::vector<TimePoint> kept;
      kept.reserve(function.invocations.size());
      for (TimePoint t : function.invocations) {
        if (t.millis_since_origin() < horizon.millis()) {
          kept.push_back(t);
        }
      }
      function.invocations = std::move(kept);
    }
    std::erase_if(copy.functions, [](const FunctionTrace& function) {
      return function.invocations.empty();
    });
    if (!copy.functions.empty()) {
      clipped.apps.push_back(std::move(copy));
    }
  }
  clipped.entities = EntityIndex::Build(clipped);
  return clipped;
}

Trace FilterApps(const Trace& trace,
                 const std::function<bool(const AppTrace&)>& predicate) {
  Trace filtered;
  filtered.horizon = trace.horizon;
  for (const AppTrace& app : trace.apps) {
    if (predicate(app)) {
      filtered.apps.push_back(app);
    }
  }
  filtered.entities = EntityIndex::Build(filtered);
  return filtered;
}

Trace SampleApps(const Trace& trace, size_t count, uint64_t seed) {
  std::vector<size_t> indices(trace.apps.size());
  for (size_t i = 0; i < indices.size(); ++i) {
    indices[i] = i;
  }
  Rng rng(seed);
  // Fisher-Yates shuffle, deterministic per seed.
  for (size_t i = indices.size(); i > 1; --i) {
    std::swap(indices[i - 1], indices[rng.UniformInt(i)]);
  }
  Trace sampled;
  sampled.horizon = trace.horizon;
  const size_t kept = std::min(count, indices.size());
  for (size_t i = 0; i < kept; ++i) {
    sampled.apps.push_back(trace.apps[indices[i]]);
  }
  // Keep output order deterministic and readable.
  std::sort(sampled.apps.begin(), sampled.apps.end(),
            [](const AppTrace& a, const AppTrace& b) {
              return a.app_id < b.app_id;
            });
  sampled.entities = EntityIndex::Build(sampled);
  return sampled;
}

std::function<bool(const AppTrace&)> InvocationCountBetween(int64_t lo,
                                                            int64_t hi) {
  return [lo, hi](const AppTrace& app) {
    const int64_t invocations = app.TotalInvocations();
    return invocations >= lo && invocations <= hi;
  };
}

std::function<bool(const AppTrace&)> MedianIatBetween(Duration lo, Duration hi,
                                                      int64_t min_invocations) {
  return [lo, hi, min_invocations](const AppTrace& app) {
    if (app.TotalInvocations() < min_invocations) {
      return false;
    }
    std::vector<Duration> iats = InterArrivalTimes(app.MergedInvocationTimes());
    if (iats.empty()) {
      return false;
    }
    std::sort(iats.begin(), iats.end());
    const Duration median = iats[iats.size() / 2];
    return median >= lo && median <= hi;
  };
}

}  // namespace faas
