// FaaS trace object model.
//
// Mirrors the structure of the Azure Functions public dataset released with
// the paper (github.com/Azure/AzurePublicDataset): owners own applications,
// applications group functions (the app is the unit of scheduling and memory
// allocation), each function has one trigger class and a stream of
// invocations, execution-time summary stats are per function, and memory
// stats are per application.

#ifndef SRC_TRACE_TYPES_H_
#define SRC_TRACE_TYPES_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/time.h"

namespace faas {

class EntityIndex;

// The paper groups Azure's many trigger kinds into 7 classes (Section 2).
enum class TriggerType : uint8_t {
  kHttp = 0,
  kQueue = 1,
  kEvent = 2,
  kOrchestration = 3,
  kTimer = 4,
  kStorage = 5,
  kOthers = 6,
};

inline constexpr int kNumTriggerTypes = 7;

// All trigger values, in enum order, for iteration.
const std::vector<TriggerType>& AllTriggerTypes();

std::string_view TriggerTypeName(TriggerType trigger);
std::optional<TriggerType> ParseTriggerType(std::string_view name);

// Per-function execution-time summary, as recorded by the duration dataset
// (Section 3.1, dataset 3): per-interval average/min/max with a sample count.
struct ExecutionStats {
  double average_ms = 0.0;
  double minimum_ms = 0.0;
  double maximum_ms = 0.0;
  int64_t count = 0;
};

// Per-application allocated-memory summary (Section 3.1, dataset 4).  The
// paper uses the 1st percentile instead of the minimum because the minimum
// measurement was unusable.
struct MemoryStats {
  double average_mb = 0.0;
  double percentile1_mb = 0.0;
  double maximum_mb = 0.0;
  int64_t sample_count = 0;
};

struct FunctionTrace {
  std::string function_id;
  TriggerType trigger = TriggerType::kHttp;
  // Invocation instants, ascending.  (The public dataset stores 1-minute
  // counts; our CSV reader expands counts back to instants.)
  std::vector<TimePoint> invocations;
  ExecutionStats execution;

  int64_t InvocationCount() const {
    return static_cast<int64_t>(invocations.size());
  }
};

struct AppTrace {
  std::string owner_id;
  std::string app_id;
  std::vector<FunctionTrace> functions;
  MemoryStats memory;

  int64_t TotalInvocations() const;
  // All invocation instants across functions, merged and sorted ascending.
  std::vector<TimePoint> MergedInvocationTimes() const;
  // Distinct trigger classes present in this app.
  std::set<TriggerType> TriggerSet() const;
  bool HasTrigger(TriggerType trigger) const;
  // Canonical combination key ordered as the paper's Figure 3(b): e.g. "HT"
  // for HTTP+Timer, "HTQ" for HTTP+Timer+Queue.
  std::string TriggerComboKey() const;
};

struct Trace {
  std::vector<AppTrace> apps;
  // Trace horizon: all invocations lie in [0, horizon).
  Duration horizon;
  // Canonical entity-id index (AppId(i) == apps[i]); attached by the CSV
  // reader, the generator, and the transforms.  May be null for hand-built
  // traces — consumers go through EntityIndexFor(), which builds on demand.
  std::shared_ptr<const EntityIndex> entities;

  int64_t TotalInvocations() const;
  int64_t TotalFunctions() const;

  // Checks structural invariants (ascending invocation times within the
  // horizon, non-empty ids, sane stats).  Returns an error description or
  // nullopt when valid.
  std::optional<std::string> Validate() const;
};

// Inter-arrival times (consecutive differences) of a sorted instant stream.
std::vector<Duration> InterArrivalTimes(const std::vector<TimePoint>& instants);

// Single-letter code used in trigger combination keys (H, Q, E, O, T, S, o).
char TriggerShortCode(TriggerType trigger);

}  // namespace faas

#endif  // SRC_TRACE_TYPES_H_
