#include "src/trace/types.h"

#include <algorithm>
#include <array>

namespace faas {

const std::vector<TriggerType>& AllTriggerTypes() {
  static const std::vector<TriggerType> kAll = {
      TriggerType::kHttp,  TriggerType::kQueue,   TriggerType::kEvent,
      TriggerType::kOrchestration, TriggerType::kTimer, TriggerType::kStorage,
      TriggerType::kOthers};
  return kAll;
}

std::string_view TriggerTypeName(TriggerType trigger) {
  switch (trigger) {
    case TriggerType::kHttp:
      return "http";
    case TriggerType::kQueue:
      return "queue";
    case TriggerType::kEvent:
      return "event";
    case TriggerType::kOrchestration:
      return "orchestration";
    case TriggerType::kTimer:
      return "timer";
    case TriggerType::kStorage:
      return "storage";
    case TriggerType::kOthers:
      return "others";
  }
  return "unknown";
}

std::optional<TriggerType> ParseTriggerType(std::string_view name) {
  for (TriggerType trigger : AllTriggerTypes()) {
    if (TriggerTypeName(trigger) == name) {
      return trigger;
    }
  }
  return std::nullopt;
}

char TriggerShortCode(TriggerType trigger) {
  switch (trigger) {
    case TriggerType::kHttp:
      return 'H';
    case TriggerType::kQueue:
      return 'Q';
    case TriggerType::kEvent:
      return 'E';
    case TriggerType::kOrchestration:
      return 'O';
    case TriggerType::kTimer:
      return 'T';
    case TriggerType::kStorage:
      return 'S';
    case TriggerType::kOthers:
      return 'o';
  }
  return '?';
}

int64_t AppTrace::TotalInvocations() const {
  int64_t total = 0;
  for (const auto& function : functions) {
    total += function.InvocationCount();
  }
  return total;
}

std::vector<TimePoint> AppTrace::MergedInvocationTimes() const {
  std::vector<TimePoint> merged;
  size_t total = 0;
  for (const auto& function : functions) {
    total += function.invocations.size();
  }
  merged.reserve(total);
  for (const auto& function : functions) {
    merged.insert(merged.end(), function.invocations.begin(),
                  function.invocations.end());
  }
  std::sort(merged.begin(), merged.end());
  return merged;
}

std::set<TriggerType> AppTrace::TriggerSet() const {
  std::set<TriggerType> triggers;
  for (const auto& function : functions) {
    triggers.insert(function.trigger);
  }
  return triggers;
}

bool AppTrace::HasTrigger(TriggerType trigger) const {
  for (const auto& function : functions) {
    if (function.trigger == trigger) {
      return true;
    }
  }
  return false;
}

std::string AppTrace::TriggerComboKey() const {
  // Figure 3(b) orders combination keys H, T, Q, S, E, O, o.
  static constexpr std::array<TriggerType, kNumTriggerTypes> kOrder = {
      TriggerType::kHttp,    TriggerType::kTimer,  TriggerType::kQueue,
      TriggerType::kStorage, TriggerType::kEvent,
      TriggerType::kOrchestration, TriggerType::kOthers};
  const std::set<TriggerType> present = TriggerSet();
  std::string key;
  for (TriggerType trigger : kOrder) {
    if (present.count(trigger) > 0) {
      key.push_back(TriggerShortCode(trigger));
    }
  }
  return key;
}

int64_t Trace::TotalInvocations() const {
  int64_t total = 0;
  for (const auto& app : apps) {
    total += app.TotalInvocations();
  }
  return total;
}

int64_t Trace::TotalFunctions() const {
  int64_t total = 0;
  for (const auto& app : apps) {
    total += static_cast<int64_t>(app.functions.size());
  }
  return total;
}

std::optional<std::string> Trace::Validate() const {
  for (const auto& app : apps) {
    if (app.app_id.empty()) {
      return "app with empty id";
    }
    if (app.functions.empty()) {
      return "app " + app.app_id + " has no functions";
    }
    for (const auto& function : app.functions) {
      if (function.function_id.empty()) {
        return "function with empty id in app " + app.app_id;
      }
      TimePoint previous = TimePoint::Origin();
      bool first = true;
      for (TimePoint t : function.invocations) {
        if (t < TimePoint::Origin() ||
            t.millis_since_origin() >= horizon.millis()) {
          return "invocation outside horizon in function " +
                 function.function_id;
        }
        if (!first && t < previous) {
          return "unsorted invocations in function " + function.function_id;
        }
        previous = t;
        first = false;
      }
      if (function.execution.minimum_ms < 0.0 ||
          function.execution.average_ms < 0.0 ||
          function.execution.maximum_ms < function.execution.minimum_ms) {
        return "invalid execution stats in function " + function.function_id;
      }
    }
    if (app.memory.average_mb < 0.0 ||
        app.memory.maximum_mb < app.memory.average_mb * 0.999999 - 1e-9) {
      // max can equal avg (single sample) but must not be smaller.
      return "invalid memory stats in app " + app.app_id;
    }
  }
  return std::nullopt;
}

std::vector<Duration> InterArrivalTimes(
    const std::vector<TimePoint>& instants) {
  std::vector<Duration> iats;
  if (instants.size() < 2) {
    return iats;
  }
  iats.reserve(instants.size() - 1);
  for (size_t i = 1; i < instants.size(); ++i) {
    iats.push_back(instants[i] - instants[i - 1]);
  }
  return iats;
}

}  // namespace faas
