#include "src/trace/csv.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <deque>
#include <filesystem>
#include <fstream>
#include <map>
#include <optional>
#include <sstream>
#include <vector>

#include "src/common/logging.h"
#include "src/common/strings.h"
#include "src/trace/entity_index.h"

namespace faas {

namespace {

namespace fs = std::filesystem;

// Writes one day's invocation counts for every function.
bool WriteInvocationDay(const Trace& trace, const std::string& path, int day) {
  std::ofstream out(path);
  if (!out) {
    return false;
  }
  out << "HashOwner,HashApp,HashFunction,Trigger";
  for (int minute = 1; minute <= kMinutesPerDay; ++minute) {
    out << ',' << minute;
  }
  out << '\n';

  const int64_t day_start_ms = static_cast<int64_t>(day - 1) * 86'400'000;
  const int64_t day_end_ms = day_start_ms + 86'400'000;
  std::vector<int32_t> counts(kMinutesPerDay);
  for (const auto& app : trace.apps) {
    for (const auto& function : app.functions) {
      std::fill(counts.begin(), counts.end(), 0);
      for (TimePoint t : function.invocations) {
        const int64_t ms = t.millis_since_origin();
        if (ms < day_start_ms || ms >= day_end_ms) {
          continue;
        }
        const int minute = static_cast<int>((ms - day_start_ms) / 60'000);
        ++counts[static_cast<size_t>(minute)];
      }
      out << app.owner_id << ',' << app.app_id << ',' << function.function_id
          << ',' << TriggerTypeName(function.trigger);
      for (int minute = 0; minute < kMinutesPerDay; ++minute) {
        out << ',' << counts[static_cast<size_t>(minute)];
      }
      out << '\n';
    }
  }
  return out.good();
}

bool WriteDurations(const Trace& trace, const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    return false;
  }
  out << "HashOwner,HashApp,HashFunction,Average,Count,Minimum,Maximum\n";
  for (const auto& app : trace.apps) {
    for (const auto& function : app.functions) {
      const ExecutionStats& e = function.execution;
      out << app.owner_id << ',' << app.app_id << ',' << function.function_id
          << ',' << e.average_ms << ',' << e.count << ',' << e.minimum_ms
          << ',' << e.maximum_ms << '\n';
    }
  }
  return out.good();
}

bool WriteMemory(const Trace& trace, const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    return false;
  }
  out << "HashOwner,HashApp,SampleCount,AverageAllocatedMb,"
         "AverageAllocatedMb_pct1,AverageAllocatedMb_pct100\n";
  for (const auto& app : trace.apps) {
    const MemoryStats& m = app.memory;
    out << app.owner_id << ',' << app.app_id << ',' << m.sample_count << ','
        << m.average_mb << ',' << m.percentile1_mb << ',' << m.maximum_mb
        << '\n';
  }
  return out.good();
}

}  // namespace

std::string InvocationsFileName(int day_index) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "invocations_per_function.d%02d.csv",
                day_index);
  return buf;
}

std::string WriteTraceCsv(const Trace& trace, const std::string& directory) {
  std::error_code ec;
  fs::create_directories(directory, ec);
  if (ec) {
    return "cannot create directory " + directory + ": " + ec.message();
  }
  const int days = static_cast<int>(
      (trace.horizon.millis() + 86'399'999) / 86'400'000);
  for (int day = 1; day <= std::max(days, 1); ++day) {
    const std::string path =
        (fs::path(directory) / InvocationsFileName(day)).string();
    if (!WriteInvocationDay(trace, path, day)) {
      return "failed writing " + path;
    }
  }
  const std::string durations_path =
      (fs::path(directory) / kDurationsFileName).string();
  if (!WriteDurations(trace, durations_path)) {
    return "failed writing " + durations_path;
  }
  const std::string memory_path =
      (fs::path(directory) / kMemoryFileName).string();
  if (!WriteMemory(trace, memory_path)) {
    return "failed writing " + memory_path;
  }
  return "";
}

namespace {

// Maps header column names to their indices.
std::map<std::string, size_t, std::less<>> BuildHeaderIndex(
    std::string_view header) {
  std::map<std::string, size_t, std::less<>> index;
  const std::vector<std::string_view> names = SplitString(header, ',');
  for (size_t i = 0; i < names.size(); ++i) {
    index.emplace(std::string(StripWhitespace(names[i])), i);
  }
  return index;
}

// Returns the first existing file among `directory/name` for each candidate
// pattern (patterns may contain one %02d day placeholder).
std::ifstream OpenFirstExisting(const std::string& directory,
                                const std::vector<std::string>& names,
                                std::string* opened_path) {
  for (const std::string& name : names) {
    const fs::path path = fs::path(directory) / name;
    std::ifstream in(path);
    if (in) {
      if (opened_path != nullptr) {
        *opened_path = path.string();
      }
      return in;
    }
  }
  return std::ifstream();
}

std::string DayFileName(const char* pattern, int day) {
  char buf[128];
  std::snprintf(buf, sizeof(buf), pattern, day);
  return buf;
}

}  // namespace

TraceIoResult<Trace> ReadTraceCsv(const std::string& directory) {
  return ReadTraceCsv(directory, CsvReadOptions{});
}

TraceIoResult<Trace> ReadTraceCsv(const std::string& directory,
                                  const CsvReadOptions& options) {
  using Result = TraceIoResult<Trace>;
  // "file:line: reason" for every row skipped in skip-malformed mode.
  std::vector<std::string> warnings;

  // Accumulate per-function state across day files.  Entities are interned
  // into a parse-local EntityIndex as rows arrive, so the duration/memory
  // join passes below are heterogeneous hash lookups — no per-row temporary
  // std::string keys.  First-seen order of the interned ids is the output
  // order, as before.
  struct FunctionBuilder {
    AppId app;
    TriggerType trigger = TriggerType::kHttp;
    std::vector<TimePoint> invocations;
    ExecutionStats execution;
  };
  EntityIndex index;
  std::deque<FunctionBuilder> builders;  // builders[f] for parse FunctionId f.

  // ---- Invocations: per-day files, header-driven ---------------------------
  // Accepts both this library's file names and the Azure public dataset's
  // ("invocations_per_function_md.anon.dNN.csv").
  int day = 1;
  int days_read = 0;
  while (true) {
    std::string opened;
    std::ifstream in = OpenFirstExisting(
        directory,
        {DayFileName("invocations_per_function.d%02d.csv", day),
         DayFileName("invocations_per_function_md.anon.d%02d.csv", day)},
        &opened);
    if (!in.is_open()) {
      break;
    }
    std::string line;
    if (!std::getline(in, line)) {
      return Result::Failure("empty invocations file: " + opened);
    }
    const auto header = BuildHeaderIndex(line);
    const auto owner_col = header.find("HashOwner");
    const auto app_col = header.find("HashApp");
    const auto function_col = header.find("HashFunction");
    const auto trigger_col = header.find("Trigger");
    if (owner_col == header.end() || app_col == header.end() ||
        function_col == header.end() || trigger_col == header.end()) {
      return Result::Failure(opened + ": missing Hash*/Trigger columns");
    }
    // Column index of each minute "1".."1440".
    std::vector<size_t> minute_cols(kMinutesPerDay);
    for (int minute = 1; minute <= kMinutesPerDay; ++minute) {
      const auto it = header.find(std::to_string(minute));
      if (it == header.end()) {
        return Result::Failure(opened + ": missing minute column " +
                               std::to_string(minute));
      }
      minute_cols[static_cast<size_t>(minute - 1)] = it->second;
    }

    const int64_t day_start_ms = static_cast<int64_t>(day - 1) * 86'400'000;
    int line_number = 1;
    std::vector<int64_t> counts(static_cast<size_t>(kMinutesPerDay));
    while (std::getline(in, line)) {
      ++line_number;
      if (StripWhitespace(line).empty()) {
        continue;
      }
      // Parse the whole row before touching any state, so a row skipped in
      // skip-malformed mode leaves nothing half-committed.
      const std::vector<std::string_view> fields = SplitString(line, ',');
      std::string row_error;
      TriggerType trigger_value = TriggerType::kHttp;
      if (fields.size() != header.size()) {
        row_error = "expected " + std::to_string(header.size()) +
                    " fields, got " + std::to_string(fields.size());
      } else {
        const auto trigger = ParseTriggerType(fields[trigger_col->second]);
        if (!trigger.has_value()) {
          row_error = "unknown trigger '" +
                      std::string(fields[trigger_col->second]) + "'";
        } else {
          trigger_value = *trigger;
          for (int minute = 0; minute < kMinutesPerDay; ++minute) {
            const auto count =
                ParseInt64(fields[minute_cols[static_cast<size_t>(minute)]]);
            if (!count.has_value()) {
              row_error = "non-numeric count in minute column " +
                          std::to_string(minute + 1);
              break;
            }
            if (*count < 0) {
              row_error = "negative count in minute column " +
                          std::to_string(minute + 1);
              break;
            }
            counts[static_cast<size_t>(minute)] = *count;
          }
        }
      }
      if (!row_error.empty()) {
        const std::string message =
            opened + ":" + std::to_string(line_number) + ": " + row_error;
        if (options.skip_malformed) {
          warnings.push_back(message);
          continue;
        }
        return Result::Failure(message);
      }
      const AppId app_id = index.AddApp(fields[owner_col->second],
                                        fields[app_col->second]);
      const FunctionId function_id =
          index.AddFunction(app_id, fields[function_col->second]);
      if (function_id.index() == builders.size()) {  // First sighting.
        builders.emplace_back();
        builders.back().app = app_id;
        builders.back().trigger = trigger_value;
      }
      FunctionBuilder& builder = builders[function_id.index()];
      for (int minute = 0; minute < kMinutesPerDay; ++minute) {
        const int64_t k = counts[static_cast<size_t>(minute)];
        if (k == 0) {
          continue;
        }
        // Expand a count of k into k instants evenly spaced in the minute.
        const int64_t minute_start =
            day_start_ms + static_cast<int64_t>(minute) * 60'000;
        for (int64_t i = 0; i < k; ++i) {
          const int64_t offset = (2 * i + 1) * 60'000 / (2 * k);
          builder.invocations.emplace_back(minute_start + offset);
        }
      }
    }
    ++day;
    ++days_read;
  }
  if (days_read == 0) {
    return Result::Failure("no invocation day files found in " + directory);
  }

  // ---- Durations: single file or the dataset's per-day files ---------------
  // Multi-day summaries merge as count-weighted averages, with min/max
  // aggregated across days.
  {
    std::vector<std::string> candidates = {kDurationsFileName};
    for (int d = 1; d <= days_read; ++d) {
      candidates.push_back(
          DayFileName("function_durations_percentiles.anon.d%02d.csv", d));
    }
    for (const std::string& name : candidates) {
      const fs::path path = fs::path(directory) / name;
      std::ifstream in(path);
      if (!in) {
        continue;
      }
      std::string line;
      if (!std::getline(in, line)) {
        continue;
      }
      const auto header = BuildHeaderIndex(line);
      const auto owner_col = header.find("HashOwner");
      const auto app_col = header.find("HashApp");
      const auto function_col = header.find("HashFunction");
      const auto average_col = header.find("Average");
      const auto count_col = header.find("Count");
      const auto minimum_col = header.find("Minimum");
      const auto maximum_col = header.find("Maximum");
      if (owner_col == header.end() || app_col == header.end() ||
          function_col == header.end() || average_col == header.end() ||
          count_col == header.end() || minimum_col == header.end() ||
          maximum_col == header.end()) {
        return Result::Failure(path.string() + ": missing duration columns");
      }
      int line_number = 1;
      while (std::getline(in, line)) {
        ++line_number;
        if (StripWhitespace(line).empty()) {
          continue;
        }
        const std::vector<std::string_view> fields = SplitString(line, ',');
        std::string row_error;
        double average_value = 0.0;
        double minimum_value = 0.0;
        double maximum_value = 0.0;
        int64_t count_value = 0;
        if (fields.size() != header.size()) {
          row_error = "expected " + std::to_string(header.size()) +
                      " fields, got " + std::to_string(fields.size());
        } else {
          const auto average = ParseDouble(fields[average_col->second]);
          const auto count = ParseInt64(fields[count_col->second]);
          const auto minimum = ParseDouble(fields[minimum_col->second]);
          const auto maximum = ParseDouble(fields[maximum_col->second]);
          if (!average || !count || !minimum || !maximum) {
            row_error = "non-numeric duration field";
          } else if (*average < 0.0 || *minimum < 0.0 || *maximum < 0.0 ||
                     *count < 0) {
            row_error = "negative duration/count";
          } else {
            average_value = *average;
            minimum_value = *minimum;
            maximum_value = *maximum;
            count_value = *count;
          }
        }
        if (!row_error.empty()) {
          const std::string message = path.string() + ":" +
                                      std::to_string(line_number) + ": " +
                                      row_error;
          if (options.skip_malformed) {
            warnings.push_back(message);
            continue;
          }
          return Result::Failure(message);
        }
        const std::optional<AppId> app_id =
            index.FindApp(fields[owner_col->second], fields[app_col->second]);
        const std::optional<FunctionId> function_id =
            app_id.has_value()
                ? index.FindFunction(*app_id, fields[function_col->second])
                : std::nullopt;
        if (!function_id.has_value()) {
          continue;  // Duration rows for functions with no invocations.
        }
        ExecutionStats& stats = builders[function_id->index()].execution;
        if (stats.count == 0) {
          stats = {average_value, minimum_value, maximum_value, count_value};
        } else {
          const double total = static_cast<double>(stats.count) +
                               static_cast<double>(count_value);
          if (total > 0.0) {
            stats.average_ms =
                (stats.average_ms * static_cast<double>(stats.count) +
                 average_value * static_cast<double>(count_value)) /
                total;
          }
          stats.minimum_ms = std::min(stats.minimum_ms, minimum_value);
          stats.maximum_ms = std::max(stats.maximum_ms, maximum_value);
          stats.count += count_value;
        }
      }
    }
  }

  // ---- Memory: single file or the dataset's per-day files ------------------
  // Dense join target: one slot per interned app.  Rows for apps with no
  // invocations are dropped here (they never reached the output before
  // either — the assembly pass only consulted apps with functions).
  std::vector<MemoryStats> app_memory(index.num_apps());
  {
    std::vector<std::string> candidates = {kMemoryFileName};
    for (int d = 1; d <= days_read; ++d) {
      candidates.push_back(
          DayFileName("app_memory_percentiles.anon.d%02d.csv", d));
    }
    for (const std::string& name : candidates) {
      const fs::path path = fs::path(directory) / name;
      std::ifstream in(path);
      if (!in) {
        continue;
      }
      std::string line;
      if (!std::getline(in, line)) {
        continue;
      }
      const auto header = BuildHeaderIndex(line);
      const auto owner_col = header.find("HashOwner");
      const auto app_col = header.find("HashApp");
      const auto samples_col = header.find("SampleCount");
      const auto average_col = header.find("AverageAllocatedMb");
      const auto pct1_col = header.find("AverageAllocatedMb_pct1");
      const auto pct100_col = header.find("AverageAllocatedMb_pct100");
      if (owner_col == header.end() || app_col == header.end() ||
          samples_col == header.end() || average_col == header.end()) {
        return Result::Failure(path.string() + ": missing memory columns");
      }
      int line_number = 1;
      while (std::getline(in, line)) {
        ++line_number;
        if (StripWhitespace(line).empty()) {
          continue;
        }
        const std::vector<std::string_view> fields = SplitString(line, ',');
        std::string row_error;
        int64_t samples_value = 0;
        double average_value = 0.0;
        if (fields.size() != header.size()) {
          row_error = "expected " + std::to_string(header.size()) +
                      " fields, got " + std::to_string(fields.size());
        } else {
          const auto samples = ParseInt64(fields[samples_col->second]);
          const auto average = ParseDouble(fields[average_col->second]);
          if (!samples || !average) {
            row_error = "non-numeric memory field";
          } else if (*samples < 0 || *average < 0.0) {
            row_error = "negative memory field";
          } else {
            samples_value = *samples;
            average_value = *average;
          }
        }
        if (!row_error.empty()) {
          const std::string message = path.string() + ":" +
                                      std::to_string(line_number) + ": " +
                                      row_error;
          if (options.skip_malformed) {
            warnings.push_back(message);
            continue;
          }
          return Result::Failure(message);
        }
        double pct1 = average_value;
        double maximum = average_value;
        if (pct1_col != header.end()) {
          pct1 = ParseDouble(fields[pct1_col->second]).value_or(average_value);
        }
        if (pct100_col != header.end()) {
          maximum =
              ParseDouble(fields[pct100_col->second]).value_or(average_value);
        }
        const std::optional<AppId> app_id =
            index.FindApp(fields[owner_col->second], fields[app_col->second]);
        if (!app_id.has_value()) {
          continue;  // Memory rows for apps with no invocations.
        }
        MemoryStats& stats = app_memory[app_id->index()];
        if (stats.sample_count == 0) {
          stats = {average_value, pct1, maximum, samples_value};
        } else {
          const double total = static_cast<double>(stats.sample_count) +
                               static_cast<double>(samples_value);
          if (total > 0.0) {
            stats.average_mb =
                (stats.average_mb * static_cast<double>(stats.sample_count) +
                 average_value * static_cast<double>(samples_value)) /
                total;
            stats.percentile1_mb =
                (stats.percentile1_mb *
                     static_cast<double>(stats.sample_count) +
                 pct1 * static_cast<double>(samples_value)) /
                total;
          }
          stats.maximum_mb = std::max(stats.maximum_mb, maximum);
          stats.sample_count += samples_value;
        }
      }
    }
  }

  // Assemble positionally: AppId assignment order is first-seen order, so
  // trace.apps[a] corresponds to AppId(a); functions append in global
  // first-seen order, which within one app is that app's first-seen order —
  // exactly the output order of the old string-keyed assembly.
  Trace trace;
  trace.horizon = Duration::Days(days_read);
  trace.apps.resize(index.num_apps());
  for (size_t a = 0; a < index.num_apps(); ++a) {
    const AppId app_id(static_cast<uint32_t>(a));
    trace.apps[a].owner_id = index.OwnerName(app_id);
    trace.apps[a].app_id = index.AppName(app_id);
    trace.apps[a].memory = app_memory[a];
  }
  for (size_t f = 0; f < builders.size(); ++f) {
    FunctionBuilder& builder = builders[f];
    FunctionTrace function;
    function.function_id = index.FunctionName(FunctionId(static_cast<uint32_t>(f)));
    function.trigger = builder.trigger;
    function.invocations = std::move(builder.invocations);
    function.execution = builder.execution;
    trace.apps[builder.app.index()].functions.push_back(std::move(function));
  }
  // The parse-local index interned functions in global first-seen order;
  // the canonical index the simulators rely on is app-major.  Rebuild.
  trace.entities = EntityIndex::Build(trace);
  Result result = Result::Success(std::move(trace));
  result.warnings = std::move(warnings);
  return result;
}

}  // namespace faas
