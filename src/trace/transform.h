// Trace transformation utilities: clipping, filtering, sampling.
//
// The paper's experiments repeatedly carve sub-traces out of the full one
// (the first week for simulations; 68 mid-popularity apps clipped to 8 hours
// for the OpenWhisk run).  These helpers implement those operations once,
// preserving structural invariants (sorted invocations, no empty functions
// or apps).

#ifndef SRC_TRACE_TRANSFORM_H_
#define SRC_TRACE_TRANSFORM_H_

#include <cstdint>
#include <functional>

#include "src/trace/types.h"

namespace faas {

// Returns a copy containing only invocations in [0, horizon); functions and
// apps left with no invocations are dropped; the result's horizon is
// `horizon`.
Trace ClipToHorizon(const Trace& trace, Duration horizon);

// Returns a copy containing only the apps for which `predicate` returns
// true.  The horizon is unchanged.
Trace FilterApps(const Trace& trace,
                 const std::function<bool(const AppTrace&)>& predicate);

// Deterministically samples up to `count` apps (uniformly, seeded shuffle).
Trace SampleApps(const Trace& trace, size_t count, uint64_t seed);

// Convenience predicate helpers -------------------------------------------

// Total invocations within [lo, hi].
std::function<bool(const AppTrace&)> InvocationCountBetween(int64_t lo,
                                                            int64_t hi);

// Median inter-arrival time within [lo, hi]; apps with fewer than
// `min_invocations` invocations never match.
std::function<bool(const AppTrace&)> MedianIatBetween(
    Duration lo, Duration hi, int64_t min_invocations = 10);

}  // namespace faas

#endif  // SRC_TRACE_TRANSFORM_H_
