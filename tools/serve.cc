// serve: run the wall-clock serving front-end (src/serve) as a process.
//
// Starts N epoll event loops (SO_REUSEPORT on one port) bridging the wire
// protocol into the cluster's admission machinery, prints a periodic stats
// line, and on SIGINT/SIGTERM (or after --duration) shuts down gracefully:
// accept loops stop, queued requests are shed as shed_shutdown, in-flight
// simulated executions finish, reply bytes flush, and the telemetry
// exporters write their files before the process exits.
//
//   serve --port 7433 --loops 2 --executors 4 --cap 64 \
//         --admission-queue 512 --admission-discipline codel \
//         --service-us 200 --cold-us 5000 \
//         --metrics-out serve_metrics.prom --latency-out serve_latency.csv
//
// Flags:
//   --host H=127.0.0.1         listen address
//   --port P=7433              listen port (0 = ephemeral, printed at start)
//   --loops N=0                event loops (0 = one per online CPU)
//   --pin                      pin loops to NUMA-interleaved CPUs
//   --duration D=0             stop after D seconds (0 = run until signal)
//   --stats-interval D=5       seconds between stderr stats lines (0 = off)
// admission path (same knobs as policy_eval's overload plane):
//   --executors N=2            concurrency shards standing in for invokers
//   --cap N=0                  per-executor concurrent-execution cap
//   --admission-queue N=0      bounded admission queue (0 = reject instead)
//   --admission-discipline P   fifo | lifo | codel (default fifo)
//   --queue-max-wait-ms X=30000  CoDel sojourn bound / queue age shed
//   --breaker                  per-executor circuit breakers
//   --breaker-window N --breaker-threshold F --breaker-open-ms X
//   --breaker-latency-ms X     completions slower than X ms count as bad
//   --hedge-ms X               hedge cold requests after a fixed delay
//   --hedge-percentile P       hedge after the live latency percentile P
// simulated execution:
//   --service-us X=0           per-request service time (0 = inline ingest)
//   --cold-us X=0              extra cold-start penalty
//   --keep-alive-ms X=10000    warm-container keep-alive (0 = always cold)
// chaos + self-healing (all off by default; off = byte-identical serving):
//   --chaos SPEC               seeded fault plan, e.g.
//                              "crash:executor=0,at=1s,down=500ms;
//                               connreset:at=0s,for=10s,p=0.01"
//   --chaos-seed S=42          RNG seed for probabilistic injections
//   --watchdog                 scan for stalled shards and restart them
//   --watchdog-interval-ms X=100   scan period
//   --stall-threshold-ms X=1000    overdue-by threshold marking a stall
//   --no-rescue                shed a restarted shard's queue (not re-run)
//   --degrade                  tiered graceful degradation under pressure
//   --degrade-enter F=0.8      pressure to escalate a tier
//   --degrade-exit F=0.5       pressure to recover a tier
//   --degrade-dwell-ms X=200   minimum dwell between tier changes
//   --dedupe                   idempotent retry dedupe (request-id cache)
//   --dedupe-ttl-ms X=10000    cached-reply retention
// telemetry:
//   --metrics-out FILE         Prometheus text (counters + latency histogram;
//                              faas_serve_recovery_* only with knobs above)
//   --latency-out FILE         latency summary + bucket CSV

#include <csignal>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <thread>

#include "src/serve/chaos.h"
#include "src/serve/idempotency.h"
#include "src/serve/server.h"
#include "src/telemetry/export.h"
#include "src/telemetry/metrics.h"
#include "tools/flags.h"

namespace {

using namespace faas;

volatile std::sig_atomic_t g_stop = 0;

void OnSignal(int /*signum*/) { g_stop = 1; }

bool ParseDiscipline(const std::string& name, AdmissionDiscipline* out) {
  if (name == "fifo") {
    *out = AdmissionDiscipline::kFifo;
  } else if (name == "lifo") {
    *out = AdmissionDiscipline::kLifo;
  } else if (name == "codel") {
    *out = AdmissionDiscipline::kCoDel;
  } else {
    return false;
  }
  return true;
}

// Folds a final ServeStats into a registry so the serving counters ride the
// standard Prometheus exporter, then appends the latency histogram.
// Recovery metrics are registered only when the self-healing knobs were on,
// so a plain run's export stays byte-identical to earlier builds.
void WriteMetrics(const ServeStats& stats, bool recovery,
                  const std::string& path) {
  MetricsRegistry registry;
  const struct {
    const char* name;
    const char* help;
    int64_t value;
  } counters[] = {
      {"faas_serve_connections_total", "Connections accepted.",
       stats.connections_accepted},
      {"faas_serve_requests_total", "Request frames admitted.",
       stats.bridge.requests},
      {"faas_serve_served_warm_total", "Requests served warm.",
       stats.bridge.served_warm},
      {"faas_serve_served_cold_total", "Requests served cold.",
       stats.bridge.served_cold},
      {"faas_serve_rejected_total", "Requests rejected (no queue, no slot).",
       stats.bridge.rejected},
      {"faas_serve_shed_queue_full_total", "Requests shed: queue full.",
       stats.ledger.shed_queue_full},
      {"faas_serve_shed_deadline_total", "Requests shed: deadline/CoDel.",
       stats.ledger.shed_deadline},
      {"faas_serve_shed_shutdown_total", "Requests shed at shutdown.",
       stats.ledger.shed_at_shutdown},
      {"faas_serve_queued_total", "Requests that waited in the queue.",
       stats.ledger.queued},
      {"faas_serve_hedges_total", "Hedged dispatches launched.",
       stats.ledger.hedges_launched},
      {"faas_serve_hedge_wins_total", "Hedges that beat the primary.",
       stats.ledger.hedge_wins},
      {"faas_serve_breaker_opens_total", "Circuit-breaker opens.",
       stats.ledger.breaker_opens},
      {"faas_serve_evictions_total", "Warm containers expired.",
       stats.bridge.evictions},
      {"faas_serve_protocol_errors_total", "Connections dropped on bad input.",
       stats.protocol_errors},
      {"faas_serve_bytes_in_total", "Bytes read.", stats.bytes_in},
      {"faas_serve_bytes_out_total", "Bytes written.", stats.bytes_out},
  };
  for (const auto& counter : counters) {
    registry.Inc(registry.AddCounter(counter.name, counter.help),
                 counter.value);
  }
  if (recovery) {
    const RecoveryLedger& r = stats.recovery;
    const struct {
      const char* name;
      const char* help;
      int64_t value;
    } recovery_counters[] = {
        {"faas_serve_recovery_watchdog_restarts_total",
         "Stalled shards restarted by the watchdog.", r.watchdog_restarts},
        {"faas_serve_recovery_crash_restarts_total",
         "Crashed shards healed by the chaos plan.", r.crash_restarts},
        {"faas_serve_recovery_inflight_failed_total",
         "Executions failed by a shard crash/restart.", r.inflight_failed},
        {"faas_serve_recovery_requests_rescued_total",
         "Queued requests re-dispatched after a restart.",
         r.requests_rescued},
        {"faas_serve_recovery_warm_quarantined_total",
         "Warm containers quarantined on crash/restart.",
         r.warm_quarantined},
        {"faas_serve_recovery_retries_deduped_total",
         "Retries answered from the dedupe cache.", r.retries_deduped},
        {"faas_serve_recovery_dupes_inflight_total",
         "Duplicate arrivals dropped while the original ran.",
         r.dupes_inflight},
        {"faas_serve_recovery_executions_total",
         "Executions actually started (dedupe identity).", r.executions},
        {"faas_serve_recovery_conn_resets_injected_total",
         "Connections reset by the chaos plan.", r.conn_resets_injected},
        {"faas_serve_recovery_unhealthy_skips_total",
         "Dispatches diverted off an unhealthy shard.", r.unhealthy_skips},
        {"faas_serve_recovery_degrade_escalations_total",
         "Degradation tier escalations.", r.degrade_escalations},
        {"faas_serve_recovery_degrade_recoveries_total",
         "Degradation tier recoveries.", r.degrade_recoveries},
        {"faas_serve_recovery_shed_degraded_total",
         "Requests shed by a degradation tier.", r.shed_degraded},
        {"faas_serve_recovery_hedges_suppressed_total",
         "Hedge launches suppressed by degradation.", r.hedges_suppressed},
        {"faas_serve_recovery_recoveries_total",
         "Shard outages healed (MTTR denominator).", r.recoveries},
    };
    for (const auto& counter : recovery_counters) {
      registry.Inc(registry.AddCounter(counter.name, counter.help),
                   counter.value);
    }
    registry.Set(registry.AddGauge("faas_serve_recovery_mttr_mean_ms",
                                   "Mean time to recovery."),
                 r.MeanMttrMs(), TimePoint{});
    registry.Set(registry.AddGauge("faas_serve_recovery_mttr_max_ms",
                                   "Worst single outage."),
                 r.max_mttr_ms, TimePoint{});
    registry.Set(registry.AddGauge("faas_serve_recovery_degrade_max_tier",
                                   "Deepest degradation tier reached."),
                 static_cast<double>(r.degrade_max_tier), TimePoint{});
    for (int tier = 0; tier < kDegradeTiers; ++tier) {
      registry.Set(
          registry.AddGauge("faas_serve_recovery_tier_dwell_ms",
                            "Dwell time per degradation tier.",
                            "tier=\"" + std::to_string(tier) + "\""),
          r.tier_dwell_ms[tier], TimePoint{});
    }
  }
  std::ofstream out(path, std::ios::binary);
  if (!out.is_open()) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return;
  }
  WritePrometheusText(registry.Scrape(), out);
  WriteLatencyPrometheus("faas_serve_latency_ms", "", stats.latency, out);
}

}  // namespace

int main(int argc, char** argv) {
  FlagParser flags;
  if (!flags.Parse(argc, argv) || flags.Has("help")) {
    std::fprintf(
        stderr,
        "usage: serve [--host H=127.0.0.1] [--port P=7433] [--loops N=0]\n"
        "             [--pin] [--duration D=0] [--stats-interval D=5]\n"
        "             [--executors N=2] [--cap N=0] [--admission-queue N=0]\n"
        "             [--admission-discipline fifo|lifo|codel]\n"
        "             [--queue-max-wait-ms X=30000]\n"
        "             [--breaker] [--breaker-window N] "
        "[--breaker-threshold F]\n"
        "             [--breaker-open-ms X] [--breaker-latency-ms X]\n"
        "             [--hedge-ms X] [--hedge-percentile P]\n"
        "             [--service-us X=0] [--cold-us X=0] "
        "[--keep-alive-ms X=10000]\n"
        "             [--chaos SPEC] [--chaos-seed S=42]\n"
        "             [--watchdog] [--watchdog-interval-ms X=100]\n"
        "             [--stall-threshold-ms X=1000] [--no-rescue]\n"
        "             [--degrade] [--degrade-enter F=0.8] "
        "[--degrade-exit F=0.5]\n"
        "             [--degrade-dwell-ms X=200]\n"
        "             [--dedupe] [--dedupe-ttl-ms X=10000]\n"
        "             [--metrics-out FILE] [--latency-out FILE]\n");
    return flags.Has("help") ? 0 : 2;
  }

  ServeConfig config;
  config.host = flags.GetString("host", "127.0.0.1");
  config.port = static_cast<uint16_t>(flags.GetInt("port", 7433));
  config.num_loops = static_cast<int>(flags.GetInt("loops", 0));
  config.pin_loops = flags.GetBool("pin", false);

  AdmissionBridgeConfig& bridge = config.bridge;
  bridge.num_executors = static_cast<int>(flags.GetInt("executors", 2));
  bridge.service_time_us =
      static_cast<uint32_t>(flags.GetInt("service-us", 0));
  bridge.cold_start_us = static_cast<uint32_t>(flags.GetInt("cold-us", 0));
  bridge.keep_alive_ms = flags.GetInt("keep-alive-ms", 10'000);
  bridge.overload.invoker_concurrency_cap =
      static_cast<int>(flags.GetInt("cap", 0));
  bridge.overload.admission.capacity =
      static_cast<int>(flags.GetInt("admission-queue", 0));
  if (!ParseDiscipline(flags.GetString("admission-discipline", "fifo"),
                       &bridge.overload.admission.discipline)) {
    std::fprintf(stderr, "bad --admission-discipline (fifo|lifo|codel)\n");
    return 2;
  }
  bridge.overload.admission.max_wait =
      Duration::Millis(flags.GetInt("queue-max-wait-ms", 30'000));
  if (flags.GetBool("breaker", false) || flags.Has("breaker-window") ||
      flags.Has("breaker-threshold") || flags.Has("breaker-latency-ms")) {
    CircuitBreakerConfig& breaker = bridge.overload.breaker;
    breaker.enabled = true;
    breaker.window = static_cast<int>(flags.GetInt("breaker-window", 20));
    breaker.failure_threshold = flags.GetDouble("breaker-threshold", 0.5);
    breaker.open_duration =
        Duration::Millis(flags.GetInt("breaker-open-ms", 30'000));
    breaker.latency_threshold_ms = flags.GetDouble("breaker-latency-ms", 0.0);
  }
  if (flags.Has("hedge-ms")) {
    bridge.overload.hedge.after =
        Duration::Millis(flags.GetInt("hedge-ms", 0));
  }
  bridge.overload.hedge.latency_percentile =
      flags.GetDouble("hedge-percentile", 0.0);

  if (flags.Has("chaos")) {
    std::string parse_error;
    const auto plan =
        serve::ServeChaosPlan::Parse(flags.GetString("chaos", ""),
                                     &parse_error);
    if (!plan.has_value()) {
      std::fprintf(stderr, "serve: bad --chaos: %s\n", parse_error.c_str());
      return 2;
    }
    const std::string invalid = plan->Validate(bridge.num_executors);
    if (!invalid.empty()) {
      std::fprintf(stderr, "serve: bad --chaos: %s\n", invalid.c_str());
      return 2;
    }
    bridge.chaos = *plan;
  }
  bridge.chaos_seed = static_cast<uint64_t>(flags.GetInt("chaos-seed", 42));
  if (flags.GetBool("watchdog", false) || flags.Has("watchdog-interval-ms") ||
      flags.Has("stall-threshold-ms")) {
    bridge.watchdog.enabled = true;
    bridge.watchdog.interval =
        Duration::Millis(flags.GetInt("watchdog-interval-ms", 100));
    bridge.watchdog.stall_threshold =
        Duration::Millis(flags.GetInt("stall-threshold-ms", 1'000));
    bridge.watchdog.rescue_queued = !flags.GetBool("no-rescue", false);
  }
  if (flags.GetBool("degrade", false) || flags.Has("degrade-enter") ||
      flags.Has("degrade-exit") || flags.Has("degrade-dwell-ms")) {
    bridge.degrade.enabled = true;
    bridge.degrade.enter_pressure = flags.GetDouble("degrade-enter", 0.8);
    bridge.degrade.exit_pressure = flags.GetDouble("degrade-exit", 0.5);
    bridge.degrade.min_dwell =
        Duration::Millis(flags.GetInt("degrade-dwell-ms", 200));
  }
  std::unique_ptr<serve::IdempotencyIndex> dedupe;
  if (flags.GetBool("dedupe", false) || flags.Has("dedupe-ttl-ms")) {
    dedupe = std::make_unique<serve::IdempotencyIndex>(
        flags.GetInt("dedupe-ttl-ms", 10'000) * 1'000'000);
    bridge.dedupe = dedupe.get();
  }
  const bool recovery_on = !bridge.chaos.Empty() || bridge.watchdog.enabled ||
                           bridge.degrade.enabled || bridge.dedupe != nullptr;

  // Library code uses MSG_NOSIGNAL, but injected resets can still surface
  // EPIPE through racing writes; never let SIGPIPE kill the process.
  std::signal(SIGPIPE, SIG_IGN);

  ServeServer server(config);
  std::string error;
  if (!server.Start(&error)) {
    std::fprintf(stderr, "serve: cannot start: %s\n", error.c_str());
    return 1;
  }
  std::signal(SIGINT, &OnSignal);
  std::signal(SIGTERM, &OnSignal);
  std::printf("serve: listening on %s:%u, %d loop(s), %d executor(s), "
              "queue=%d(%s) breaker=%s hedge=%s cap=%d\n",
              config.host.c_str(), server.port(), server.num_loops(),
              bridge.num_executors, bridge.overload.admission.capacity,
              AdmissionDisciplineName(bridge.overload.admission.discipline),
              bridge.overload.breaker.enabled ? "on" : "off",
              bridge.overload.hedge.enabled() ? "on" : "off",
              bridge.overload.invoker_concurrency_cap);
  if (recovery_on) {
    std::printf("serve: chaos=%s watchdog=%s degrade=%s dedupe=%s\n",
                bridge.chaos.Empty() ? "off" : "on",
                bridge.watchdog.enabled ? "on" : "off",
                bridge.degrade.enabled ? "on" : "off",
                bridge.dedupe != nullptr ? "on" : "off");
  }
  std::fflush(stdout);

  const int64_t duration_s = flags.GetInt("duration", 0);
  const int64_t stats_interval_s = flags.GetInt("stats-interval", 5);
  int64_t elapsed_ms = 0;
  int64_t last_stats_ms = 0;
  int64_t last_served = 0;
  while (g_stop == 0 &&
         (duration_s <= 0 || elapsed_ms < duration_s * 1'000)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    elapsed_ms += 100;
    if (stats_interval_s > 0 &&
        elapsed_ms - last_stats_ms >= stats_interval_s * 1'000) {
      last_stats_ms = elapsed_ms;
      const ServeStats stats = server.Snapshot();
      const int64_t served = stats.bridge.served();
      std::fprintf(stderr,
                   "serve: %.0f req/s, served=%lld (warm=%lld cold=%lld) "
                   "shed=%lld rejected=%lld queued=%lld p99=%.3fms\n",
                   static_cast<double>(served - last_served) /
                       static_cast<double>(stats_interval_s),
                   static_cast<long long>(served),
                   static_cast<long long>(stats.bridge.served_warm),
                   static_cast<long long>(stats.bridge.served_cold),
                   static_cast<long long>(stats.ledger.shed_queue_full +
                                          stats.ledger.shed_deadline +
                                          stats.ledger.shed_at_shutdown),
                   static_cast<long long>(stats.bridge.rejected),
                   static_cast<long long>(stats.ledger.queued),
                   stats.latency.PercentileMs(99.0));
      last_served = served;
    }
  }

  std::fprintf(stderr, "serve: %s, draining\n",
               g_stop != 0 ? "signal" : "duration reached");
  server.Stop();  // Graceful: shed queue, finish in-flight, flush, join.
  const ServeStats stats = server.Snapshot();
  std::printf("serve: done. requests=%lld served=%lld (warm=%lld cold=%lld) "
              "shed{full=%lld deadline=%lld shutdown=%lld} rejected=%lld\n",
              static_cast<long long>(stats.bridge.requests),
              static_cast<long long>(stats.bridge.served()),
              static_cast<long long>(stats.bridge.served_warm),
              static_cast<long long>(stats.bridge.served_cold),
              static_cast<long long>(stats.ledger.shed_queue_full),
              static_cast<long long>(stats.ledger.shed_deadline),
              static_cast<long long>(stats.ledger.shed_at_shutdown),
              static_cast<long long>(stats.bridge.rejected));
  std::printf("serve: latency p50=%.3fms p90=%.3fms p99=%.3fms p99.9=%.3fms "
              "max=%.3fms (n=%lld)\n",
              stats.latency.PercentileMs(50.0),
              stats.latency.PercentileMs(90.0),
              stats.latency.PercentileMs(99.0),
              stats.latency.PercentileMs(99.9),
              static_cast<double>(stats.latency.max_ns()) / 1e6,
              static_cast<long long>(stats.latency.count()));
  if (recovery_on) {
    const RecoveryLedger& r = stats.recovery;
    std::printf(
        "serve: recovery restarts{watchdog=%lld crash=%lld} "
        "failed=%lld rescued=%lld deduped=%lld executions=%lld "
        "resets=%lld mttr{mean=%.1fms max=%.1fms n=%lld} max-tier=%lld\n",
        static_cast<long long>(r.watchdog_restarts),
        static_cast<long long>(r.crash_restarts),
        static_cast<long long>(r.inflight_failed),
        static_cast<long long>(r.requests_rescued),
        static_cast<long long>(r.retries_deduped),
        static_cast<long long>(r.executions),
        static_cast<long long>(r.conn_resets_injected), r.MeanMttrMs(),
        r.max_mttr_ms, static_cast<long long>(r.recoveries),
        static_cast<long long>(r.degrade_max_tier));
  }

  if (flags.Has("metrics-out")) {
    WriteMetrics(stats, recovery_on, flags.GetString("metrics-out", ""));
  }
  if (flags.Has("latency-out")) {
    std::ofstream out(flags.GetString("latency-out", ""), std::ios::binary);
    if (out.is_open()) {
      WriteLatencyCsv("serve_latency", stats.latency, out);
    } else {
      std::fprintf(stderr, "cannot open %s for writing\n",
                   flags.GetString("latency-out", "").c_str());
    }
  }
  return 0;
}
