// serve_chaos: hostile-client battery against a serve process.
//
// The server-side chaos plan (--chaos on tools/serve) injects faults the
// server can see coming; this tool plays the client the server cannot
// trust.  It cycles a battery of protocol and connection attacks against a
// live server and, between attacks, probes it with a clean request to
// verify the serving plane is still answering:
//
//   garbage        random bytes that never parse as a frame
//   truncate       half a request header, then a clean FIN
//   halfframe-rst  a header promising a payload, a few payload bytes, then
//                  SO_LINGER{1,0} close (RST with bytes in flight)
//   slowloris      a valid frame trickled one byte at a time
//   oversize       a header advertising a payload above the protocol cap
//
// Every attack must leave the server able to serve the next clean probe;
// any failed probe fails the run (exit 1).  With --self the tool starts an
// in-process loopback server first, so the battery runs hermetically — this
// is what check.sh --quick uses as a smoke test.
//
//   serve_chaos --port 7433 --duration-ms 2000
//   serve_chaos --self --duration-ms 2000
//
// Flags:
//   --host H=127.0.0.1 --port P=7433
//   --self                 start an in-process server (ignores --host/port)
//   --duration-ms X=2000   total battery time
//   --probe-timeout-ms X=1000   clean-probe reply deadline
//   --seed S=42            garbage/attack-order RNG
//   --attacks LIST=all     comma list of attack names above

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <csignal>
#include <cstdio>
#include <cstring>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "src/serve/clock.h"
#include "src/serve/server.h"
#include "src/serve/wire.h"
#include "tools/flags.h"

namespace {

using namespace faas;

volatile std::sig_atomic_t g_stop = 0;

void OnSignal(int /*signum*/) { g_stop = 1; }

// Blocking connect with a deadline; returns -1 on failure.
int Dial(const sockaddr_in& addr, int timeout_ms) {
  const int fd = socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    return -1;
  }
  const int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  timeval tv;
  tv.tv_sec = timeout_ms / 1'000;
  tv.tv_usec = (timeout_ms % 1'000) * 1'000;
  setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
  if (connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    close(fd);
    return -1;
  }
  return fd;
}

bool SendAll(int fd, const uint8_t* data, size_t size) {
  size_t off = 0;
  while (off < size) {
    const ssize_t n = send(fd, data + off, size - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      return false;
    }
    off += static_cast<size_t>(n);
  }
  return true;
}

// Reads until the peer closes or the receive timeout fires; the attacks
// don't care what comes back, only that the server disposes of them.
void DrainUntilClose(int fd) {
  uint8_t buf[4096];
  for (;;) {
    const ssize_t n = recv(fd, buf, sizeof(buf), 0);
    if (n > 0) {
      continue;
    }
    if (n < 0 && errno == EINTR) {
      continue;
    }
    return;  // Closed, reset, or timed out.
  }
}

// One clean request on a fresh connection; true when a complete reply for
// the same id comes back in time.  This is the liveness oracle.
bool Probe(const sockaddr_in& addr, int timeout_ms, uint64_t request_id) {
  const int fd = Dial(addr, timeout_ms);
  if (fd < 0) {
    return false;
  }
  RequestFrame frame;
  frame.request_id = request_id;
  frame.function_id = 0;
  uint8_t header[kWireHeaderSize];
  EncodeRequestTo(frame, header);
  if (!SendAll(fd, header, sizeof(header))) {
    close(fd);
    return false;
  }
  uint8_t reply[kWireHeaderSize];
  size_t got = 0;
  while (got < sizeof(reply)) {
    const ssize_t n = recv(fd, reply + got, sizeof(reply) - got, 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) {
        continue;
      }
      close(fd);
      return false;
    }
    got += static_cast<size_t>(n);
  }
  close(fd);
  FrameDecoder decoder;
  decoder.Push(reply, sizeof(reply));
  DecodedFrame decoded;
  return decoder.Next(&decoded) == FrameDecoder::Result::kFrame &&
         decoded.type == FrameType::kReply &&
         decoded.reply.request_id == request_id;
}

struct Battery {
  sockaddr_in addr{};
  std::mt19937_64 rng;
  int timeout_ms = 1'000;

  // Random bytes; overwhelmingly likely to fail the magic check on the
  // first frame boundary.
  bool Garbage() {
    const int fd = Dial(addr, timeout_ms);
    if (fd < 0) {
      return false;
    }
    uint8_t junk[512];
    for (uint8_t& b : junk) {
      b = static_cast<uint8_t>(rng());
    }
    SendAll(fd, junk, sizeof(junk));
    DrainUntilClose(fd);
    close(fd);
    return true;
  }

  // Half a header then FIN: the decoder must discard the stash and the
  // server must release the connection without a reply.
  bool Truncate() {
    const int fd = Dial(addr, timeout_ms);
    if (fd < 0) {
      return false;
    }
    RequestFrame frame;
    frame.request_id = rng();
    uint8_t header[kWireHeaderSize];
    EncodeRequestTo(frame, header);
    SendAll(fd, header, kWireHeaderSize / 2);
    shutdown(fd, SHUT_WR);
    DrainUntilClose(fd);
    close(fd);
    return true;
  }

  // Header promising 1 KiB, 100 bytes delivered, then a hard RST: the
  // server sees ECONNRESET mid-frame with a stashed partial payload.
  bool HalfFrameRst() {
    const int fd = Dial(addr, timeout_ms);
    if (fd < 0) {
      return false;
    }
    RequestFrame frame;
    frame.request_id = rng();
    frame.payload_size = 1'024;
    uint8_t buf[kWireHeaderSize + 100];
    EncodeRequestTo(frame, buf);
    std::memset(buf + kWireHeaderSize, 0xAB, 100);
    SendAll(fd, buf, sizeof(buf));
    const linger hard_close{1, 0};
    setsockopt(fd, SOL_SOCKET, SO_LINGER, &hard_close, sizeof(hard_close));
    close(fd);
    return true;
  }

  // A valid frame trickled byte by byte — a slow client must neither wedge
  // a loop nor starve other connections; the reply still arrives.
  bool Slowloris() {
    const int fd = Dial(addr, timeout_ms);
    if (fd < 0) {
      return false;
    }
    RequestFrame frame;
    frame.request_id = rng();
    frame.payload_size = 16;
    uint8_t buf[kWireHeaderSize + 16];
    EncodeRequestTo(frame, buf);
    std::memset(buf + kWireHeaderSize, 0x5A, 16);
    for (size_t i = 0; i < sizeof(buf); ++i) {
      if (!SendAll(fd, buf + i, 1)) {
        close(fd);
        return true;  // Server may legitimately time the trickle out.
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    uint8_t reply[kWireHeaderSize];
    size_t got = 0;
    while (got < sizeof(reply)) {
      const ssize_t n = recv(fd, reply + got, sizeof(reply) - got, 0);
      if (n <= 0) {
        break;
      }
      got += static_cast<size_t>(n);
    }
    close(fd);
    return true;
  }

  // payload_size above the protocol cap: a terminal protocol error the
  // server must answer with a close, never a buffer allocation.
  bool Oversize() {
    const int fd = Dial(addr, timeout_ms);
    if (fd < 0) {
      return false;
    }
    RequestFrame frame;
    frame.request_id = rng();
    uint8_t header[kWireHeaderSize];
    EncodeRequestTo(frame, header);
    const uint32_t huge = kMaxPayloadBytes + 1;
    std::memcpy(header + 12, &huge, sizeof(huge));  // payload_size field.
    SendAll(fd, header, sizeof(header));
    DrainUntilClose(fd);
    close(fd);
    return true;
  }
};

}  // namespace

int main(int argc, char** argv) {
  FlagParser flags;
  if (!flags.Parse(argc, argv) || flags.Has("help")) {
    std::fprintf(
        stderr,
        "usage: serve_chaos [--host H=127.0.0.1] [--port P=7433] [--self]\n"
        "                   [--duration-ms X=2000] [--probe-timeout-ms "
        "X=1000]\n"
        "                   [--seed S=42] "
        "[--attacks garbage,truncate,halfframe-rst,slowloris,oversize]\n");
    return flags.Has("help") ? 0 : 2;
  }
  std::signal(SIGINT, &OnSignal);
  std::signal(SIGTERM, &OnSignal);
  std::signal(SIGPIPE, SIG_IGN);  // RST attacks EPIPE our own writes too.

  // Hermetic mode: bring up a small loopback server to attack.
  std::unique_ptr<ServeServer> self;
  std::string host = flags.GetString("host", "127.0.0.1");
  uint16_t port = static_cast<uint16_t>(flags.GetInt("port", 7433));
  if (flags.GetBool("self", false)) {
    ServeConfig config;
    config.port = 0;
    config.num_loops = 2;
    config.bridge.num_executors = 2;
    self = std::make_unique<ServeServer>(config);
    std::string error;
    if (!self->Start(&error)) {
      // Socketless sandbox: report success so the smoke test skips cleanly.
      std::fprintf(stderr, "serve_chaos: skipping (%s)\n", error.c_str());
      return 0;
    }
    host = "127.0.0.1";
    port = self->port();
  }

  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    std::fprintf(stderr, "serve_chaos: invalid host: %s\n", host.c_str());
    return 2;
  }

  const int probe_timeout_ms =
      static_cast<int>(flags.GetInt("probe-timeout-ms", 1'000));
  Battery battery;
  battery.addr = addr;
  battery.rng.seed(static_cast<uint64_t>(flags.GetInt("seed", 42)));
  battery.timeout_ms = probe_timeout_ms;

  struct Attack {
    const char* name;
    bool (Battery::*run)();
  };
  const Attack all[] = {
      {"garbage", &Battery::Garbage},
      {"truncate", &Battery::Truncate},
      {"halfframe-rst", &Battery::HalfFrameRst},
      {"slowloris", &Battery::Slowloris},
      {"oversize", &Battery::Oversize},
  };
  const std::string chosen = flags.GetString("attacks", "all");
  std::vector<Attack> attacks;
  for (const Attack& attack : all) {
    if (chosen == "all" ||
        chosen.find(attack.name) != std::string::npos) {
      attacks.push_back(attack);
    }
  }
  if (attacks.empty()) {
    std::fprintf(stderr, "serve_chaos: no known attack in --attacks\n");
    return 2;
  }

  if (!Probe(addr, probe_timeout_ms, 1)) {
    std::fprintf(stderr, "serve_chaos: server not answering at %s:%u\n",
                 host.c_str(), port);
    return 1;
  }

  const int64_t duration_ms = flags.GetInt("duration-ms", 2'000);
  const int64_t end_ns = MonotonicNowNs() + duration_ms * 1'000'000;
  int64_t rounds = 0;
  int64_t attacks_run = 0;
  int64_t attacks_skipped = 0;
  int64_t probes_ok = 0;
  int64_t probes_failed = 0;
  uint64_t probe_id = 2;
  while (g_stop == 0 && MonotonicNowNs() < end_ns) {
    for (const Attack& attack : attacks) {
      if (attack.run == nullptr ? false : !(battery.*(attack.run))()) {
        // Dial failed — the server may be mid-restart; the probe decides.
        ++attacks_skipped;
      } else {
        ++attacks_run;
      }
      if (Probe(addr, probe_timeout_ms, probe_id++)) {
        ++probes_ok;
      } else {
        ++probes_failed;
        std::fprintf(stderr,
                     "serve_chaos: probe FAILED after attack %s (round "
                     "%lld)\n",
                     attack.name, static_cast<long long>(rounds));
      }
      if (g_stop != 0 || MonotonicNowNs() >= end_ns) {
        break;
      }
    }
    ++rounds;
  }

  if (self != nullptr) {
    self->Stop();
  }
  std::printf("serve_chaos: rounds=%lld attacks=%lld skipped=%lld "
              "probes{ok=%lld failed=%lld} -> %s\n",
              static_cast<long long>(rounds),
              static_cast<long long>(attacks_run),
              static_cast<long long>(attacks_skipped),
              static_cast<long long>(probes_ok),
              static_cast<long long>(probes_failed),
              probes_failed == 0 ? "SURVIVED" : "DEGRADED");
  return probes_failed == 0 ? 0 : 1;
}
