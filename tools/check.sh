#!/usr/bin/env bash
# Repo verification: tier-1 build + full test suite, then the concurrency
# tests (thread pool, parallel-for, sweep engine, compiled trace) rebuilt
# and re-run under ThreadSanitizer.
#
# Usage: tools/check.sh [--skip-tsan]
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="$(nproc 2>/dev/null || echo 2)"

echo "== tier-1: build + ctest =="
cmake -B build -S . >/dev/null
cmake --build build -j "${JOBS}"
(cd build && ctest --output-on-failure -j "${JOBS}")

if [[ "${1:-}" == "--skip-tsan" ]]; then
  echo "== skipping TSan pass =="
  exit 0
fi

echo "== TSan: concurrency tests =="
cmake -B build-tsan -S . -DFAAS_SANITIZE=thread >/dev/null
cmake --build build-tsan -j "${JOBS}" --target \
    thread_pool_test parallel_test sweep_test compiled_trace_test
# gtest_discover_tests registers suite names (not target names), so match
# the suites those four binaries contain.
(cd build-tsan && ctest --output-on-failure -j "${JOBS}" --no-tests=error \
    -R 'ThreadPool|ParallelFor|ParallelSimulation|Sweep|CompiledTrace|CompiledReplay')

echo "== all checks passed =="
