#!/usr/bin/env bash
# Repo verification: tier-1 build + full test suite, then the concurrency
# tests (thread pool, parallel-for, sweep engine, streaming pipeline, shard
# generation, arena pool, compiled trace) plus the chaos-engine, network,
# overload-control, and telemetry tests rebuilt and re-run under
# ThreadSanitizer, the chaos/overload/controller/telemetry/streaming tests
# once more under UndefinedBehaviorSanitizer, and the interning/trace/
# cluster/streaming tests under AddressSanitizer (the intern tables hand out
# string_views into deque storage, and the streaming sweep recycles shard
# arenas while a chaos replay runs concurrently — ASan is the pass that
# would catch a dangling view or a freed arena; the
# SweepStreamTest.StreamedSweepWithConcurrentChaosReplay smoke drives both
# at once).  The serving leg (wire codec, timer wheel, latency recorder, and
# the live loopback suite with its multi-loop epoll threads and graceful
# shutdown) runs under both TSan and ASan: TSan watches the Snapshot/Stop
# cross-thread paths, ASan the decoder stash and per-connection buffers.
# The resource-ledger suite (cost-accounting merges, sim-vs-cluster charge
# identity, thread-count determinism) rides in every sanitizer leg.  The
# serve-chaos suite (chaos-plan grammar, idempotency index, recovery-ledger
# merges, plus the loopback watchdog/degrade/drain-under-stall tests) rides
# the TSan and ASan serving legs: TSan crosses the watchdog timers with
# Snapshot/Stop, ASan watches the frozen-key and dedupe-shard storage.
# --quick adds a pareto_sweep smoke over a small generated trace and a
# 2-second serve_chaos hostile-client battery (garbage, truncation,
# half-frame RST, slowloris, oversize) against an in-process loopback
# server.
#
# Usage: tools/check.sh [--quick] [--skip-tsan] [--skip-ubsan] [--skip-asan]
#   --quick   tier-1 build + ctest + pareto_sweep smoke; skips sanitizers
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="$(nproc 2>/dev/null || echo 2)"
SKIP_TSAN=0
SKIP_UBSAN=0
SKIP_ASAN=0
for arg in "$@"; do
  case "${arg}" in
    --quick) SKIP_TSAN=1; SKIP_UBSAN=1; SKIP_ASAN=1 ;;
    --skip-tsan) SKIP_TSAN=1 ;;
    --skip-ubsan) SKIP_UBSAN=1 ;;
    --skip-asan) SKIP_ASAN=1 ;;
    *) echo "unknown argument: ${arg}" >&2; exit 2 ;;
  esac
done

echo "== tier-1: build + ctest =="
cmake -B build -S . >/dev/null
cmake --build build -j "${JOBS}"
(cd build && ctest --output-on-failure -j "${JOBS}")

if [[ "${SKIP_TSAN}" == "1" && "${SKIP_UBSAN}" == "1" && "${SKIP_ASAN}" == "1" ]]; then
  echo "== quick: pareto_sweep smoke (streamed 120-app frontier) =="
  ./build/tools/pareto_sweep --gen-apps 120 --gen-days 1 --threads 2 \
      --shard-apps 32 --out build/pareto_smoke.csv >/dev/null
  head -1 build/pareto_smoke.csv | grep -q \
      'policy,goodput_pct,cold_start_p75' || {
    echo "pareto_sweep smoke: unexpected CSV header" >&2; exit 1; }
  echo "== quick: serve_chaos smoke (hostile clients vs loopback server) =="
  ./build/tools/serve_chaos --self --duration-ms 2000
fi

if [[ "${SKIP_TSAN}" == "1" ]]; then
  echo "== skipping TSan pass =="
else
  echo "== TSan: concurrency + streaming + chaos + overload + telemetry tests =="
  cmake -B build-tsan -S . -DFAAS_SANITIZE=thread >/dev/null
  cmake --build build-tsan -j "${JOBS}" --target \
      thread_pool_test parallel_test sweep_test sweep_stream_test \
      generator_shard_test arena_pool_test cpu_topology_test \
      compiled_trace_test faults_test network_test overload_test \
      controller_test telemetry_metrics_test telemetry_tracer_test telemetry_export_test \
      telemetry_integration_test \
      serve_codec_test serve_loopback_test serve_chaos_test timer_wheel_test \
      latency_recorder_test resource_ledger_test
  # gtest_discover_tests registers suite names (not target names), so match
  # the suites those binaries contain.
  (cd build-tsan && ctest --output-on-failure -j "${JOBS}" --no-tests=error \
      -R 'ThreadPool|ParallelFor|ParallelSimulation|Sweep|SweepStream|GeneratorShard|ArenaPool|CpuTopology|CompiledTrace|CompiledReplay|FaultPlan|NetFaultPlan|NetworkModel|NetworkCluster|ChaosCluster|Overload|AdmissionQueue|CircuitBreaker|Hedge|FlashCrowd|Controller|TelemetryMetrics|TelemetryTracer|TelemetryExport|TelemetryIntegration|ServeCodec|ServeLoopback|ServeChaosPlan|IdempotencyIndex|RecoveryLedger|TimerWheel|LatencyRecorder|ResourceLedger')
fi

if [[ "${SKIP_UBSAN}" == "1" ]]; then
  echo "== skipping UBSan pass =="
else
  echo "== UBSan: chaos + overload + controller + telemetry + streaming tests =="
  cmake -B build-ubsan -S . -DFAAS_SANITIZE=undefined >/dev/null
  cmake --build build-ubsan -j "${JOBS}" --target \
      faults_test network_test overload_test controller_test cluster_test \
      sweep_stream_test generator_shard_test \
      telemetry_metrics_test telemetry_tracer_test telemetry_export_test \
      telemetry_integration_test resource_ledger_test
  (cd build-ubsan && ctest --output-on-failure -j "${JOBS}" --no-tests=error \
      -R 'FaultPlan|NetFaultPlan|NetworkModel|NetworkCluster|ChaosCluster|Overload|AdmissionQueue|CircuitBreaker|Hedge|FlashCrowd|Controller|Cluster|SweepStream|GeneratorShard|TelemetryMetrics|TelemetryTracer|TelemetryExport|TelemetryIntegration|ResourceLedger')
fi

if [[ "${SKIP_ASAN}" == "1" ]]; then
  echo "== skipping ASan pass =="
else
  echo "== ASan: interning + trace + cluster + overload + streaming tests =="
  cmake -B build-asan -S . -DFAAS_SANITIZE=address >/dev/null
  cmake --build build-asan -j "${JOBS}" --target \
      intern_test trace_csv_test transform_test compiled_trace_test \
      sweep_test sweep_stream_test generator_shard_test arena_pool_test \
      faults_test network_test controller_test cluster_test overload_test \
      telemetry_metrics_test telemetry_tracer_test \
      serve_codec_test serve_loopback_test serve_chaos_test timer_wheel_test \
      latency_recorder_test resource_ledger_test
  # SweepStream covers the faults + streaming smoke
  # (StreamedSweepWithConcurrentChaosReplay): a chaos replay with an active
  # fault plan runs while the streamed sweep rotates shard arenas.
  (cd build-asan && ctest --output-on-failure -j "${JOBS}" --no-tests=error \
      -R 'Intern|EntityIndex|Csv|Transform|CompiledTrace|CompiledReplay|Sweep|SweepStream|GeneratorShard|ArenaPool|FaultPlan|NetFaultPlan|NetworkModel|NetworkCluster|ChaosCluster|Controller|Cluster|Overload|AdmissionQueue|CircuitBreaker|Hedge|FlashCrowd|TelemetryMetrics|TelemetryTracer|ServeCodec|ServeLoopback|ServeChaosPlan|IdempotencyIndex|RecoveryLedger|TimerWheel|LatencyRecorder|ResourceLedger')
fi

echo "== all checks passed =="
