#!/usr/bin/env bash
# Repo verification: tier-1 build + full test suite, then the concurrency
# tests (thread pool, parallel-for, sweep engine, compiled trace) plus the
# chaos-engine, overload-control, and telemetry tests rebuilt and re-run
# under ThreadSanitizer, the chaos/overload/controller/telemetry tests once
# more under UndefinedBehaviorSanitizer, and the interning/trace/cluster
# tests under AddressSanitizer (the intern tables hand out string_views into
# deque storage — ASan is the pass that would catch a dangling view).
#
# Usage: tools/check.sh [--skip-tsan] [--skip-ubsan] [--skip-asan]
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="$(nproc 2>/dev/null || echo 2)"
SKIP_TSAN=0
SKIP_UBSAN=0
SKIP_ASAN=0
for arg in "$@"; do
  case "${arg}" in
    --skip-tsan) SKIP_TSAN=1 ;;
    --skip-ubsan) SKIP_UBSAN=1 ;;
    --skip-asan) SKIP_ASAN=1 ;;
    *) echo "unknown argument: ${arg}" >&2; exit 2 ;;
  esac
done

echo "== tier-1: build + ctest =="
cmake -B build -S . >/dev/null
cmake --build build -j "${JOBS}"
(cd build && ctest --output-on-failure -j "${JOBS}")

if [[ "${SKIP_TSAN}" == "1" ]]; then
  echo "== skipping TSan pass =="
else
  echo "== TSan: concurrency + chaos + overload + telemetry tests =="
  cmake -B build-tsan -S . -DFAAS_SANITIZE=thread >/dev/null
  cmake --build build-tsan -j "${JOBS}" --target \
      thread_pool_test parallel_test sweep_test compiled_trace_test \
      faults_test overload_test controller_test telemetry_metrics_test \
      telemetry_tracer_test telemetry_export_test telemetry_integration_test
  # gtest_discover_tests registers suite names (not target names), so match
  # the suites those binaries contain.
  (cd build-tsan && ctest --output-on-failure -j "${JOBS}" --no-tests=error \
      -R 'ThreadPool|ParallelFor|ParallelSimulation|Sweep|CompiledTrace|CompiledReplay|FaultPlan|ChaosCluster|Overload|AdmissionQueue|CircuitBreaker|Hedge|FlashCrowd|Controller|TelemetryMetrics|TelemetryTracer|TelemetryExport|TelemetryIntegration')
fi

if [[ "${SKIP_UBSAN}" == "1" ]]; then
  echo "== skipping UBSan pass =="
else
  echo "== UBSan: chaos + overload + controller + telemetry tests =="
  cmake -B build-ubsan -S . -DFAAS_SANITIZE=undefined >/dev/null
  cmake --build build-ubsan -j "${JOBS}" --target \
      faults_test overload_test controller_test cluster_test \
      telemetry_metrics_test telemetry_tracer_test telemetry_export_test \
      telemetry_integration_test
  (cd build-ubsan && ctest --output-on-failure -j "${JOBS}" --no-tests=error \
      -R 'FaultPlan|ChaosCluster|Overload|AdmissionQueue|CircuitBreaker|Hedge|FlashCrowd|Controller|Cluster|TelemetryMetrics|TelemetryTracer|TelemetryExport|TelemetryIntegration')
fi

if [[ "${SKIP_ASAN}" == "1" ]]; then
  echo "== skipping ASan pass =="
else
  echo "== ASan: interning + trace + cluster + overload tests =="
  cmake -B build-asan -S . -DFAAS_SANITIZE=address >/dev/null
  cmake --build build-asan -j "${JOBS}" --target \
      intern_test trace_csv_test transform_test compiled_trace_test \
      sweep_test controller_test cluster_test overload_test \
      telemetry_metrics_test telemetry_tracer_test
  (cd build-asan && ctest --output-on-failure -j "${JOBS}" --no-tests=error \
      -R 'Intern|EntityIndex|Csv|Transform|CompiledTrace|CompiledReplay|Sweep|Controller|Cluster|Overload|AdmissionQueue|CircuitBreaker|Hedge|FlashCrowd|TelemetryMetrics|TelemetryTracer')
fi

echo "== all checks passed =="
