// Minimal command-line flag parsing for the CLI tools (no dependencies).
// Supports --name=value and --name value; unknown flags are errors.

#ifndef TOOLS_FLAGS_H_
#define TOOLS_FLAGS_H_

#include <cstdio>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "src/common/strings.h"

namespace faas {

class FlagParser {
 public:
  // Parses argv; returns false (and prints to stderr) on malformed input.
  bool Parse(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
      std::string_view arg = argv[i];
      if (!StartsWith(arg, "--")) {
        std::fprintf(stderr, "unexpected positional argument: %s\n", argv[i]);
        return false;
      }
      arg.remove_prefix(2);
      const size_t eq = arg.find('=');
      if (eq != std::string_view::npos) {
        values_[std::string(arg.substr(0, eq))] =
            std::string(arg.substr(eq + 1));
      } else if (i + 1 < argc && !StartsWith(argv[i + 1], "--")) {
        values_[std::string(arg)] = argv[++i];
      } else {
        values_[std::string(arg)] = "true";  // Bare boolean flag.
      }
    }
    return true;
  }

  std::string GetString(const std::string& name,
                        const std::string& fallback) const {
    const auto it = values_.find(name);
    return it != values_.end() ? it->second : fallback;
  }

  int64_t GetInt(const std::string& name, int64_t fallback) const {
    const auto it = values_.find(name);
    if (it == values_.end()) {
      return fallback;
    }
    return ParseInt64(it->second).value_or(fallback);
  }

  double GetDouble(const std::string& name, double fallback) const {
    const auto it = values_.find(name);
    if (it == values_.end()) {
      return fallback;
    }
    return ParseDouble(it->second).value_or(fallback);
  }

  bool GetBool(const std::string& name, bool fallback) const {
    const auto it = values_.find(name);
    if (it == values_.end()) {
      return fallback;
    }
    return it->second == "true" || it->second == "1";
  }

  bool Has(const std::string& name) const { return values_.count(name) > 0; }

 private:
  std::map<std::string, std::string> values_;
};

}  // namespace faas

#endif  // TOOLS_FLAGS_H_
