// pareto_sweep: walk the keep-alive / pre-warm policy parameter space and
// emit the goodput x cold-start x cost Pareto frontier.
//
// The grid covers the paper's Figure 15 families — fixed keep-alives of
// 5..120 minutes and hybrid histogram policies with 1..4 hour ranges (with
// and without pre-warming) — and scores every point on three axes from the
// unified ResourceLedger (src/common/resource_ledger.h):
//
//   goodput_pct       100 * (1 - cold starts / invocations): the share of
//                     invocations served warm;
//   cold_start_p75    the paper's headline 3rd-quartile per-app cold-start
//                     percentage;
//   cost_dollars      the ledger's GB-seconds, CPU-seconds and invocation
//                     count priced through the CostModel flags.
//
// A point is on the frontier when no other point is at least as good on all
// three axes and strictly better on one; dominated points are kept in the
// CSV with on_frontier=0 so the full cloud of points can be plotted.
//
// The sweep reuses the streamed sharded engine (EvaluatePoliciesStreamed):
// with --gen-apps the full trace is never materialized — shards come
// straight from the workload generator — so an Azure-scale walk runs in
// bounded memory.  Results are bit-identical at any --threads/--shard-apps.
//
// Usage:
//   pareto_sweep --gen-apps N [--gen-days D=7] [--gen-seed S=42]
//                [--gen-rate-cap R=4000]
//   pareto_sweep --trace DIR [--skip-malformed]
// common flags:
//   [--threads N=0] [--shard-apps N=128] [--max-resident-shards K=2]
//   [--use-exec-times] [--weight-by-memory]
//   [--cost-gb-s X=1.66667e-5]   dollars per GB-second of residency
//   [--cost-cpu-s X=0]           dollars per CPU-second executed
//   [--cost-invoke X=0.20]       dollars per million invocations
//   [--out FILE=results/pareto_frontier.csv]

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "src/common/resource_ledger.h"
#include "src/policy/hybrid.h"
#include "src/policy/policy.h"
#include "src/sim/shard_source.h"
#include "src/sim/sweep.h"
#include "src/trace/csv.h"
#include "src/workload/generator.h"
#include "tools/flags.h"

namespace {

using namespace faas;

struct ParetoPoint {
  std::string name;
  double goodput_pct = 0.0;    // Maximize.
  double cold_start_p75 = 0.0; // Minimize.
  double cost_dollars = 0.0;   // Minimize.
  ResourceLedger resources;
  bool on_frontier = true;
};

// `a` dominates `b`: at least as good on every axis, strictly better on one.
bool Dominates(const ParetoPoint& a, const ParetoPoint& b) {
  if (a.goodput_pct < b.goodput_pct || a.cold_start_p75 > b.cold_start_p75 ||
      a.cost_dollars > b.cost_dollars) {
    return false;
  }
  return a.goodput_pct > b.goodput_pct || a.cold_start_p75 < b.cold_start_p75 ||
         a.cost_dollars < b.cost_dollars;
}

}  // namespace

int main(int argc, char** argv) {
  FlagParser flags;
  if (!flags.Parse(argc, argv) || flags.Has("help") ||
      (flags.Has("gen-apps") == flags.Has("trace"))) {
    std::fprintf(
        stderr,
        "usage: pareto_sweep --gen-apps N [--gen-days D] [--gen-seed S]\n"
        "                    [--gen-rate-cap R]\n"
        "       pareto_sweep --trace DIR [--skip-malformed]\n"
        "common:             [--threads N] [--shard-apps N]\n"
        "                    [--max-resident-shards K]\n"
        "                    [--use-exec-times] [--weight-by-memory]\n"
        "                    [--cost-gb-s X] [--cost-cpu-s X]\n"
        "                    [--cost-invoke X] [--out FILE]\n");
    return flags.Has("help") ? 0 : 2;
  }

  CostModel cost;
  cost.dollars_per_gb_second = flags.GetDouble("cost-gb-s", 1.66667e-5);
  cost.dollars_per_cpu_second = flags.GetDouble("cost-cpu-s", 0.0);
  cost.dollars_per_million_invocations = flags.GetDouble("cost-invoke", 0.20);

  SimulatorOptions options;
  options.use_execution_times = flags.GetBool("use-exec-times", false);
  options.weight_by_memory = flags.GetBool("weight-by-memory", false);
  options.num_threads = static_cast<int>(flags.GetInt("threads", 0));
  const int shard_apps = static_cast<int>(flags.GetInt("shard-apps", 128));
  StreamingSweepOptions stream;
  stream.max_resident_shards =
      static_cast<int>(flags.GetInt("max-resident-shards", 2));
  if (options.num_threads < 0 || shard_apps <= 0 ||
      stream.max_resident_shards <= 0) {
    std::fprintf(stderr, "--threads must be >= 0; --shard-apps and "
                         "--max-resident-shards must be positive\n");
    return 2;
  }

  // Policy grid: fixed keep-alives (10-minute baseline first — it defines
  // 100% normalized waste), then hybrid ranges with and without pre-warm.
  std::vector<std::unique_ptr<PolicyFactory>> owned;
  owned.push_back(
      std::make_unique<FixedKeepAliveFactory>(Duration::Minutes(10)));
  for (int minutes : {5, 20, 30, 45, 60, 90, 120}) {
    owned.push_back(
        std::make_unique<FixedKeepAliveFactory>(Duration::Minutes(minutes)));
  }
  for (int hours : {1, 2, 3, 4}) {
    HybridPolicyConfig config;
    config.num_bins = hours * 60;
    owned.push_back(std::make_unique<HybridPolicyFactory>(config));
    config.enable_prewarm = false;
    owned.push_back(std::make_unique<HybridPolicyFactory>(config));
  }
  std::vector<const PolicyFactory*> factories;
  for (const auto& factory : owned) {
    factories.push_back(factory.get());
  }

  // Trace input: streamed straight off the generator, or a sharded view of
  // a materialized CSV trace.
  std::unique_ptr<WorkloadGenerator> generator;
  Trace trace;
  std::unique_ptr<ShardSource> source;
  if (flags.Has("gen-apps")) {
    GeneratorConfig config;
    config.num_apps = static_cast<int>(flags.GetInt("gen-apps", 0));
    if (config.num_apps <= 0) {
      std::fprintf(stderr, "--gen-apps must be positive\n");
      return 2;
    }
    config.days = static_cast<int>(flags.GetInt("gen-days", 7));
    config.seed = static_cast<uint64_t>(flags.GetInt("gen-seed", 42));
    config.instants_rate_cap_per_day = flags.GetDouble("gen-rate-cap", 4000.0);
    config.flash_crowd_count = 0;  // GeneratorShardSource requirement.
    generator = std::make_unique<WorkloadGenerator>(config);
    source = std::make_unique<GeneratorShardSource>(*generator, shard_apps);
    std::printf("generator: %d sampled apps, %d days, seed %llu "
                "(streamed; full trace never materialized)\n",
                config.num_apps, config.days,
                static_cast<unsigned long long>(config.seed));
  } else {
    CsvReadOptions read_options;
    read_options.skip_malformed = flags.GetBool("skip-malformed", false);
    auto read = ReadTraceCsv(flags.GetString("trace", ""), read_options);
    if (!read.ok) {
      std::fprintf(stderr, "failed to read trace: %s\n", read.error.c_str());
      return 1;
    }
    trace = std::move(read.value);
    std::printf("trace: %zu apps, %lld invocations, %d days\n",
                trace.apps.size(),
                static_cast<long long>(trace.TotalInvocations()),
                static_cast<int>(trace.horizon.days()));
    source = std::make_unique<TraceShardSource>(trace, shard_apps);
  }

  std::printf("sweep: %zu policy points, %d shards of %d apps, <=%d "
              "resident\n",
              factories.size(), source->num_shards(), shard_apps,
              stream.max_resident_shards);
  const std::vector<PolicyPoint> points = EvaluatePoliciesStreamed(
      *source, factories, /*baseline_index=*/0, options, stream);

  std::vector<ParetoPoint> pareto;
  pareto.reserve(points.size());
  for (const PolicyPoint& point : points) {
    ParetoPoint p;
    p.name = point.name;
    p.cold_start_p75 = point.cold_start_p75;
    p.resources = point.result.TotalResources();
    const int64_t invocations = p.resources.invocations;
    p.goodput_pct =
        invocations > 0
            ? 100.0 * (1.0 - static_cast<double>(p.resources.cold_loads) /
                                 static_cast<double>(invocations))
            : 0.0;
    p.cost_dollars = p.resources.CostDollars(cost);
    pareto.push_back(std::move(p));
  }
  for (size_t i = 0; i < pareto.size(); ++i) {
    for (size_t j = 0; j < pareto.size(); ++j) {
      if (i != j && Dominates(pareto[j], pareto[i])) {
        pareto[i].on_frontier = false;
        break;
      }
    }
  }

  const std::string out_path =
      flags.GetString("out", "results/pareto_frontier.csv");
  {
    const std::filesystem::path parent =
        std::filesystem::path(out_path).parent_path();
    if (!parent.empty()) {
      std::error_code ec;
      std::filesystem::create_directories(parent, ec);
    }
    std::ofstream out(out_path);
    if (!out.is_open()) {
      std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
      return 1;
    }
    out << "policy,goodput_pct,cold_start_p75,idle_gb_seconds,"
           "busy_gb_seconds,cpu_seconds,cost_dollars,on_frontier\n";
    char line[512];
    for (const ParetoPoint& p : pareto) {
      std::snprintf(line, sizeof(line), "%s,%.6f,%.6f,%.6f,%.6f,%.6f,%.6f,%d\n",
                    p.name.c_str(), p.goodput_pct, p.cold_start_p75,
                    p.resources.idle_gb_seconds(),
                    p.resources.busy_gb_seconds(), p.resources.cpu_seconds(),
                    p.cost_dollars, p.on_frontier ? 1 : 0);
      out << line;
    }
  }

  std::printf("\n%-44s %10s %10s %14s %12s %9s\n", "policy", "goodput",
              "cold p75", "idle GB-s", "cost $", "frontier");
  int frontier = 0;
  for (const ParetoPoint& p : pareto) {
    std::printf("%-44s %9.2f%% %9.2f%% %14.1f %12.4f %9s\n", p.name.c_str(),
                p.goodput_pct, p.cold_start_p75,
                p.resources.idle_gb_seconds(), p.cost_dollars,
                p.on_frontier ? "yes" : "-");
    frontier += p.on_frontier ? 1 : 0;
  }
  std::printf("\n%d of %zu points on the Pareto frontier; wrote %s\n",
              frontier, pareto.size(), out_path.c_str());
  return 0;
}
