// serve_load: drive a running serve process from loopback.
//
// Wraps src/serve/loadgen.h in a CLI.  Two load shapes:
//
//   open loop    seeded Poisson arrivals at --rps (0 = blast mode: saturate
//                the socket with pre-encoded frame blocks); never blocks on
//                replies, so server queueing shows up as latency, not as
//                reduced offered load.
//   closed loop  --closed: N connections, one request in flight each,
//                --think-us between a reply and the next request.
//
// Requests are stamped with the sender's monotonic clock, so the reported
// p50/p90/p99/p99.9 are measured client-observed e2e latencies out of a
// log-bucketed wall-clock histogram, not estimates.  SIGINT/SIGTERM end the
// send window early and still drain outstanding replies before reporting.
//
//   serve_load --port 7433 --connections 4 --rps 50000 --duration-ms 10000
//   serve_load --port 7433 --closed --connections 32 --think-us 500
//
// Flags:
//   --host H=127.0.0.1 --port P=7433
//   --connections N=1        TCP connections
//   --closed                 closed loop (default open)
//   --rps R=0                open loop target rate (0 = blast)
//   --think-us X=0           closed-loop think time
//   --duration-ms X=1000     send window
//   --drain-ms X=500         wait for stragglers after the window
//   --functions N=64         function-id space
//   --payload B=0            payload bytes per request
//   --deadline-us X=0        per-request deadline on the wire
//   --seed S=42
//   --latency-out FILE       latency summary + bucket CSV
// retry kit (client-side resilience; incompatible with blast mode):
//   --retry                  enable retries + reconnects + dedupe-safe ids
//   --retry-timeout-us X=100000    per-attempt client timeout
//   --retry-backoff-us X=2000      exponential backoff base
//   --retry-cap-us X=100000        backoff cap
//   --retry-jitter F=0.5           backoff jitter fraction
//   --retry-max N=4                total attempts per request id

#include <atomic>
#include <csignal>
#include <cstdio>
#include <fstream>
#include <string>

#include "src/serve/loadgen.h"
#include "src/telemetry/export.h"
#include "tools/flags.h"

namespace {

using namespace faas;

std::atomic<bool> g_stop{false};

void OnSignal(int /*signum*/) {
  g_stop.store(true, std::memory_order_relaxed);
}

}  // namespace

int main(int argc, char** argv) {
  FlagParser flags;
  if (!flags.Parse(argc, argv) || flags.Has("help")) {
    std::fprintf(
        stderr,
        "usage: serve_load [--host H=127.0.0.1] [--port P=7433]\n"
        "                  [--connections N=1] [--closed] [--rps R=0]\n"
        "                  [--think-us X=0] [--duration-ms X=1000]\n"
        "                  [--drain-ms X=500] [--functions N=64]\n"
        "                  [--payload B=0] [--deadline-us X=0] [--seed S=42]\n"
        "                  [--retry] [--retry-timeout-us X=100000]\n"
        "                  [--retry-backoff-us X=2000] "
        "[--retry-cap-us X=100000]\n"
        "                  [--retry-jitter F=0.5] [--retry-max N=4]\n"
        "                  [--latency-out FILE]\n");
    return flags.Has("help") ? 0 : 2;
  }

  LoadGenConfig config;
  config.host = flags.GetString("host", "127.0.0.1");
  config.port = static_cast<uint16_t>(flags.GetInt("port", 7433));
  config.mode =
      flags.GetBool("closed", false) ? LoadMode::kClosed : LoadMode::kOpen;
  config.connections = static_cast<int>(flags.GetInt("connections", 1));
  config.target_rps = flags.GetDouble("rps", 0.0);
  config.think_time_us = flags.GetInt("think-us", 0);
  config.duration_ms = flags.GetInt("duration-ms", 1'000);
  config.drain_ms = flags.GetInt("drain-ms", 500);
  config.num_functions =
      static_cast<uint32_t>(flags.GetInt("functions", 64));
  config.payload_bytes = static_cast<uint32_t>(flags.GetInt("payload", 0));
  config.deadline_us = static_cast<uint32_t>(flags.GetInt("deadline-us", 0));
  config.seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
  config.stop = &g_stop;
  if (flags.GetBool("retry", false) || flags.Has("retry-max") ||
      flags.Has("retry-timeout-us")) {
    config.retry.enabled = true;
    config.retry.timeout_us = flags.GetInt("retry-timeout-us", 100'000);
    config.retry.backoff_base_us = flags.GetInt("retry-backoff-us", 2'000);
    config.retry.backoff_cap_us = flags.GetInt("retry-cap-us", 100'000);
    config.retry.jitter = flags.GetDouble("retry-jitter", 0.5);
    config.retry.max_attempts = static_cast<int>(flags.GetInt("retry-max", 4));
  }
  std::signal(SIGINT, &OnSignal);
  std::signal(SIGTERM, &OnSignal);
  std::signal(SIGPIPE, SIG_IGN);  // Reset-injected servers EPIPE mid-write.

  const bool open = config.mode == LoadMode::kOpen;
  std::printf("serve_load: %s loop, %d conn(s), %s, window %lldms\n",
              open ? "open" : "closed", config.connections,
              open ? (config.target_rps > 0.0
                          ? (std::to_string(
                                 static_cast<long long>(config.target_rps)) +
                             " rps")
                                .c_str()
                          : "blast")
                   : ("think " + std::to_string(config.think_time_us) + "us")
                         .c_str(),
              static_cast<long long>(config.duration_ms));
  std::fflush(stdout);

  LoadGenerator generator(config);
  LoadGenResult result;
  std::string error;
  if (!generator.Run(&result, &error)) {
    std::fprintf(stderr, "serve_load: %s\n", error.c_str());
    return 1;
  }

  std::printf("serve_load: sent=%lld (%.0f req/s) replies=%lld "
              "(%.0f rep/s)\n",
              static_cast<long long>(result.sent), result.sent_rps(),
              static_cast<long long>(result.replies), result.reply_rps());
  std::printf("serve_load: ok=%lld (warm=%lld cold=%lld) "
              "shed{full=%lld deadline=%lld shutdown=%lld degraded=%lld} "
              "rejected=%lld failed=%lld backlog-peak=%zuB\n",
              static_cast<long long>(result.ok),
              static_cast<long long>(result.warm),
              static_cast<long long>(result.cold),
              static_cast<long long>(result.shed_queue_full),
              static_cast<long long>(result.shed_deadline),
              static_cast<long long>(result.shed_shutdown),
              static_cast<long long>(result.shed_degraded),
              static_cast<long long>(result.rejected),
              static_cast<long long>(result.failed),
              result.peak_backlog_bytes);
  if (config.retry.enabled) {
    std::printf("serve_load: retry unique=%lld retries=%lld timeouts=%lld "
                "gave-up=%lld dup-ok=%lld reconnects=%lld goodput=%.2f%%\n",
                static_cast<long long>(result.unique_sends()),
                static_cast<long long>(result.retries),
                static_cast<long long>(result.timeouts),
                static_cast<long long>(result.gave_up),
                static_cast<long long>(result.duplicate_ok),
                static_cast<long long>(result.reconnects),
                result.goodput() * 100.0);
  }
  std::printf("serve_load: e2e p50=%.3fms p90=%.3fms p99=%.3fms "
              "p99.9=%.3fms max=%.3fms (n=%lld)\n",
              result.latency.PercentileMs(50.0),
              result.latency.PercentileMs(90.0),
              result.latency.PercentileMs(99.0),
              result.latency.PercentileMs(99.9),
              static_cast<double>(result.latency.max_ns()) / 1e6,
              static_cast<long long>(result.latency.count()));

  if (flags.Has("latency-out")) {
    std::ofstream out(flags.GetString("latency-out", ""), std::ios::binary);
    if (out.is_open()) {
      WriteLatencyCsv("serve_load_e2e", result.latency, out);
    } else {
      std::fprintf(stderr, "cannot open %s for writing\n",
                   flags.GetString("latency-out", "").c_str());
    }
  }
  return 0;
}
