// trace_gen: generate a calibrated synthetic FaaS trace and write it in the
// Azure public dataset CSV schema.
//
// Usage:
//   trace_gen --out DIR [--apps N] [--days D] [--seed S] [--rate-cap R]
//             [--flash-crowds N] [--flash-minutes M] [--flash-fraction F]
//             [--flash-events E]
//
// The flash-crowd knobs stack synchronized burst trains on the diurnal
// curve (for overload-control experiments); the default of zero crowds
// leaves the trace identical to earlier generator versions.
//
// The output directory will contain invocations_per_function.dNN.csv (one
// per day), function_durations.csv, and app_memory.csv.

#include <cstdio>

#include "src/trace/csv.h"
#include "src/workload/generator.h"
#include "tools/flags.h"

int main(int argc, char** argv) {
  using namespace faas;
  FlagParser flags;
  if (!flags.Parse(argc, argv) || !flags.Has("out") || flags.Has("help")) {
    std::fprintf(stderr,
                 "usage: trace_gen --out DIR [--apps N=1000] [--days D=7]\n"
                 "                 [--seed S=42] [--rate-cap R=8000]\n"
                 "                 [--flash-crowds N=0] [--flash-minutes M=10]\n"
                 "                 [--flash-fraction F=0.3] [--flash-events E=80]\n");
    return flags.Has("help") ? 0 : 2;
  }

  GeneratorConfig config;
  config.num_apps = static_cast<int>(flags.GetInt("apps", 1000));
  config.days = static_cast<int>(flags.GetInt("days", 7));
  config.seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
  config.instants_rate_cap_per_day = flags.GetDouble("rate-cap", 8000.0);
  config.flash_crowd_count = static_cast<int>(flags.GetInt("flash-crowds", 0));
  config.flash_crowd_duration =
      Duration::Minutes(flags.GetInt("flash-minutes", 10));
  config.flash_crowd_fraction = flags.GetDouble("flash-fraction", 0.3);
  config.flash_crowd_events_per_function = flags.GetDouble("flash-events", 80.0);

  std::printf("generating %d apps over %d days (seed %llu)...\n",
              config.num_apps, config.days,
              static_cast<unsigned long long>(config.seed));
  const Trace trace = WorkloadGenerator(config).Generate();
  if (const auto error = trace.Validate(); error.has_value()) {
    std::fprintf(stderr, "internal error: generated invalid trace: %s\n",
                 error->c_str());
    return 1;
  }

  const std::string out = flags.GetString("out", "");
  const std::string error = WriteTraceCsv(trace, out);
  if (!error.empty()) {
    std::fprintf(stderr, "write failed: %s\n", error.c_str());
    return 1;
  }
  std::printf("wrote %zu apps, %lld functions, %lld invocations to %s\n",
              trace.apps.size(),
              static_cast<long long>(trace.TotalFunctions()),
              static_cast<long long>(trace.TotalInvocations()), out.c_str());
  return 0;
}
