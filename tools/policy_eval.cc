// policy_eval: evaluate keep-alive policies on a trace in the Azure public
// dataset CSV schema (as produced by trace_gen, or assembled from the real
// AzurePublicDataset files).
//
// Usage:
//   policy_eval --trace DIR [--policies LIST] [--baseline NAME]
//               [--range-minutes N=240] [--cv T=2] [--head P=5] [--tail P=99]
//               [--use-exec-times] [--weight-by-memory] [--threads N=0]
//
// --threads sets the sweep parallelism (0 = all hardware cores, 1 = fully
// sequential).  Results are bit-identical at any thread count.
//
// LIST is comma-separated from: fixed-5, fixed-10, ..., fixed-240 (any
// minute count), no-unload, hybrid, hybrid-no-arima, hybrid-no-prewarm,
// production.  Default: "fixed-10,fixed-60,hybrid".

#include <cstdio>
#include <memory>
#include <vector>

#include "src/policy/hybrid.h"
#include "src/policy/policy.h"
#include "src/policy/production_policy.h"
#include "src/sim/sweep.h"
#include "src/trace/csv.h"
#include "tools/flags.h"

namespace {

using namespace faas;

std::unique_ptr<PolicyFactory> MakeFactory(std::string_view name,
                                           const HybridPolicyConfig& hybrid) {
  if (name == "no-unload") {
    return std::make_unique<NoUnloadFactory>();
  }
  if (name == "hybrid") {
    return std::make_unique<HybridPolicyFactory>(hybrid);
  }
  if (name == "hybrid-no-arima") {
    HybridPolicyConfig config = hybrid;
    config.enable_arima = false;
    return std::make_unique<HybridPolicyFactory>(config);
  }
  if (name == "hybrid-no-prewarm") {
    HybridPolicyConfig config = hybrid;
    config.enable_prewarm = false;
    return std::make_unique<HybridPolicyFactory>(config);
  }
  if (name == "production") {
    ProductionPolicyConfig config;
    config.hybrid = hybrid;
    config.store.bin_width = hybrid.bin_width;
    config.store.num_bins = hybrid.num_bins;
    return std::make_unique<ProductionPolicyFactory>(config);
  }
  if (StartsWith(name, "fixed-")) {
    const auto minutes = ParseInt64(name.substr(6));
    if (minutes.has_value() && *minutes > 0) {
      return std::make_unique<FixedKeepAliveFactory>(
          Duration::Minutes(*minutes));
    }
  }
  return nullptr;
}

}  // namespace

int main(int argc, char** argv) {
  FlagParser flags;
  if (!flags.Parse(argc, argv) || !flags.Has("trace") || flags.Has("help")) {
    std::fprintf(
        stderr,
        "usage: policy_eval --trace DIR [--policies fixed-10,hybrid,...]\n"
        "                   [--range-minutes N=240] [--cv T=2]\n"
        "                   [--head P=5] [--tail P=99]\n"
        "                   [--use-exec-times] [--weight-by-memory]\n"
        "                   [--threads N=0 (0 = all cores)]\n");
    return flags.Has("help") ? 0 : 2;
  }

  const auto read = ReadTraceCsv(flags.GetString("trace", ""));
  if (!read.ok) {
    std::fprintf(stderr, "failed to read trace: %s\n", read.error.c_str());
    return 1;
  }
  const Trace& trace = read.value;
  std::printf("trace: %zu apps, %lld functions, %lld invocations, %d days\n",
              trace.apps.size(),
              static_cast<long long>(trace.TotalFunctions()),
              static_cast<long long>(trace.TotalInvocations()),
              static_cast<int>(trace.horizon.days()));

  HybridPolicyConfig hybrid;
  hybrid.num_bins = static_cast<int>(flags.GetInt("range-minutes", 240));
  hybrid.cv_threshold = flags.GetDouble("cv", 2.0);
  hybrid.head_percentile = flags.GetDouble("head", 5.0);
  hybrid.tail_percentile = flags.GetDouble("tail", 99.0);

  std::vector<std::unique_ptr<PolicyFactory>> owned;
  const std::string list =
      flags.GetString("policies", "fixed-10,fixed-60,hybrid");
  for (std::string_view name : SplitString(list, ',')) {
    name = StripWhitespace(name);
    if (name.empty()) {
      continue;
    }
    auto factory = MakeFactory(name, hybrid);
    if (factory == nullptr) {
      std::fprintf(stderr, "unknown policy '%.*s'\n",
                   static_cast<int>(name.size()), name.data());
      return 2;
    }
    owned.push_back(std::move(factory));
  }
  if (owned.empty()) {
    std::fprintf(stderr, "no policies requested\n");
    return 2;
  }

  SimulatorOptions options;
  options.use_execution_times = flags.GetBool("use-exec-times", false);
  options.weight_by_memory = flags.GetBool("weight-by-memory", false);
  options.num_threads = static_cast<int>(flags.GetInt("threads", 0));
  if (options.num_threads < 0) {
    std::fprintf(stderr, "--threads must be >= 0\n");
    return 2;
  }

  std::vector<const PolicyFactory*> factories;
  for (const auto& factory : owned) {
    factories.push_back(factory.get());
  }
  const std::vector<PolicyPoint> points =
      EvaluatePolicies(trace, factories, /*baseline_index=*/0, options);

  std::printf("\n%-44s %10s %10s %12s %18s\n", "policy", "cold p50",
              "cold p75", "always-cold", "waste vs first");
  for (const PolicyPoint& point : points) {
    std::printf("%-44s %9.1f%% %9.1f%% %11.1f%% %17.1f%%\n",
                point.name.c_str(),
                point.result.AppColdStartPercentile(50.0),
                point.cold_start_p75,
                100.0 * point.result.FractionAppsAlwaysCold(false),
                point.normalized_wasted_memory_pct);
  }
  return 0;
}
