// policy_eval: evaluate keep-alive policies on a trace in the Azure public
// dataset CSV schema (as produced by trace_gen, or assembled from the real
// AzurePublicDataset files).
//
// Usage:
//   policy_eval --trace DIR [--policies LIST] [--baseline NAME]
//               [--range-minutes N=240] [--cv T=2] [--head P=5] [--tail P=99]
//               [--use-exec-times] [--weight-by-memory] [--threads N=0]
//               [--skip-malformed]
//
// --threads sets the sweep parallelism (0 = all hardware cores, 1 = fully
// sequential).  Results are bit-identical at any thread count.
// --skip-malformed tolerates malformed CSV rows (each is skipped with a
// warning) instead of failing the read on the first bad row.
//
// LIST is comma-separated from: fixed-5, fixed-10, ..., fixed-240 (any
// minute count), no-unload, hybrid, hybrid-no-arima, hybrid-no-prewarm,
// production.  Default: "fixed-10,fixed-60,hybrid".
//
// Chaos mode — any of the fault flags switches evaluation from the app-level
// sweep to the mini-OpenWhisk cluster simulator with fault injection:
//   policy_eval --trace DIR --faults SPEC | --mtbf H [--mttr M]
//               [--wipe-mtbf H] [--fault-seed N]
//               [--invokers N=18] [--invoker-memory MB=4096]
//               [--retries N] [--timeout D] [--backoff D] [--checkpoint D]
//
// SPEC is semicolon-separated clauses: crash:invoker=I,at=D,down=D;
// wipe:at=D; spike:at=D,for=D,x=M; flaky:at=D,for=D,p=P, with durations
// accepting ms/s/m/h/d suffixes.  The report adds the failure ledger
// (crashes, retries, timeouts, abandoned/lost activations, degraded time).

#include <cstdio>
#include <memory>
#include <optional>
#include <vector>

#include "src/cluster/cluster.h"
#include "src/faults/fault_plan.h"
#include "src/policy/hybrid.h"
#include "src/policy/policy.h"
#include "src/policy/production_policy.h"
#include "src/sim/sweep.h"
#include "src/trace/csv.h"
#include "tools/flags.h"

namespace {

using namespace faas;

std::unique_ptr<PolicyFactory> MakeFactory(std::string_view name,
                                           const HybridPolicyConfig& hybrid) {
  if (name == "no-unload") {
    return std::make_unique<NoUnloadFactory>();
  }
  if (name == "hybrid") {
    return std::make_unique<HybridPolicyFactory>(hybrid);
  }
  if (name == "hybrid-no-arima") {
    HybridPolicyConfig config = hybrid;
    config.enable_arima = false;
    return std::make_unique<HybridPolicyFactory>(config);
  }
  if (name == "hybrid-no-prewarm") {
    HybridPolicyConfig config = hybrid;
    config.enable_prewarm = false;
    return std::make_unique<HybridPolicyFactory>(config);
  }
  if (name == "production") {
    ProductionPolicyConfig config;
    config.hybrid = hybrid;
    config.store.bin_width = hybrid.bin_width;
    config.store.num_bins = hybrid.num_bins;
    return std::make_unique<ProductionPolicyFactory>(config);
  }
  if (StartsWith(name, "fixed-")) {
    const auto minutes = ParseInt64(name.substr(6));
    if (minutes.has_value() && *minutes > 0) {
      return std::make_unique<FixedKeepAliveFactory>(
          Duration::Minutes(*minutes));
    }
  }
  return nullptr;
}

// Reads a duration flag with ms/s/m/h/d suffixes (bare numbers = seconds).
std::optional<Duration> GetDurationFlag(const FlagParser& flags,
                                        const std::string& name) {
  if (!flags.Has(name)) {
    return std::nullopt;
  }
  const auto parsed = ParseDuration(flags.GetString(name, ""));
  if (!parsed.has_value()) {
    std::fprintf(stderr, "--%s: bad duration '%s'\n", name.c_str(),
                 flags.GetString(name, "").c_str());
  }
  return parsed;
}

// Evaluates the requested policies on the cluster simulator under a fault
// plan and prints the outcome split plus the failure ledger per policy.
int RunChaosEvaluation(const FlagParser& flags, const Trace& trace,
                       const std::vector<const PolicyFactory*>& factories) {
  ClusterConfig config;
  config.num_invokers = static_cast<int>(flags.GetInt("invokers", 18));
  config.invoker_memory_mb = flags.GetDouble("invoker-memory", 4096.0);
  if (config.num_invokers <= 0) {
    std::fprintf(stderr, "--invokers must be positive\n");
    return 2;
  }

  if (flags.Has("faults")) {
    std::string error;
    const auto plan = FaultPlan::Parse(flags.GetString("faults", ""), &error);
    if (!plan.has_value()) {
      std::fprintf(stderr, "--faults: %s\n", error.c_str());
      return 2;
    }
    config.faults = *plan;
  } else if (flags.Has("mtbf")) {
    MtbfModel model;
    model.mtbf_hours = flags.GetDouble("mtbf", model.mtbf_hours);
    model.mttr_minutes = flags.GetDouble("mttr", model.mttr_minutes);
    model.wipe_mtbf_hours =
        flags.GetDouble("wipe-mtbf", model.wipe_mtbf_hours);
    model.seed = static_cast<uint64_t>(flags.GetInt("fault-seed", 42));
    config.faults =
        FaultPlan::FromMtbf(model, config.num_invokers, trace.horizon);
    std::printf("generated fault plan: %zu crashes, %zu wipes "
                "(mtbf=%.2gh, mttr=%.2gm, seed=%llu)\n",
                config.faults.crashes.size(), config.faults.wipes.size(),
                model.mtbf_hours, model.mttr_minutes,
                static_cast<unsigned long long>(model.seed));
  }
  const std::string plan_error = config.faults.Validate(config.num_invokers);
  if (!plan_error.empty()) {
    std::fprintf(stderr, "invalid fault plan: %s\n", plan_error.c_str());
    return 2;
  }

  config.retry.max_retries = static_cast<int>(flags.GetInt("retries", 0));
  if (const auto timeout = GetDurationFlag(flags, "timeout")) {
    config.retry.activation_timeout = *timeout;
  } else if (flags.Has("timeout")) {
    return 2;
  }
  if (const auto backoff = GetDurationFlag(flags, "backoff")) {
    config.retry.base_backoff = *backoff;
  } else if (flags.Has("backoff")) {
    return 2;
  }
  if (const auto checkpoint = GetDurationFlag(flags, "checkpoint")) {
    config.policy_checkpoint_interval = *checkpoint;
  } else if (flags.Has("checkpoint")) {
    return 2;
  }

  const ClusterSimulator simulator(config);
  std::printf("\nchaos evaluation: %d invokers, %zu crashes, %zu wipes, "
              "%zu spikes, %zu flaky windows, retries=%d\n",
              config.num_invokers, config.faults.crashes.size(),
              config.faults.wipes.size(), config.faults.spikes.size(),
              config.faults.transient_windows.size(),
              config.retry.max_retries);
  std::printf("\n%-44s %9s %9s %9s %9s %9s %9s\n", "policy", "cold p50",
              "dropped", "rejected", "abandon", "lost", "retries");
  for (const PolicyFactory* factory : factories) {
    const ClusterResult result = simulator.Replay(trace, *factory);
    std::printf("%-44s %8.1f%% %9lld %9lld %9lld %9lld %9lld\n",
                result.policy_name.c_str(),
                result.AppColdStartPercentile(50.0),
                static_cast<long long>(result.total_dropped),
                static_cast<long long>(result.total_rejected_outage),
                static_cast<long long>(result.total_abandoned),
                static_cast<long long>(result.total_lost),
                static_cast<long long>(result.faults.retries_scheduled));
    const FaultLedger& ledger = result.faults;
    std::printf("    crashes=%lld restarts=%lld lost-in-flight=%lld "
                "transient=%lld timeouts=%lld retry-ok=%lld\n",
                static_cast<long long>(ledger.invoker_crashes),
                static_cast<long long>(ledger.invoker_restarts),
                static_cast<long long>(ledger.lost_in_flight),
                static_cast<long long>(ledger.transient_failures),
                static_cast<long long>(ledger.timeouts),
                static_cast<long long>(ledger.retry_successes));
    std::printf("    wipes=%lld restored=%lld lost-state=%lld "
                "degraded-recoveries=%lld degraded-time=%.1fs "
                "cold-after{crash=%lld transient=%lld timeout=%lld "
                "outage=%lld degraded=%lld}\n",
                static_cast<long long>(ledger.policy_state_wipes),
                static_cast<long long>(ledger.policy_states_restored),
                static_cast<long long>(ledger.policy_states_lost),
                static_cast<long long>(ledger.degraded_recoveries),
                ledger.total_degraded_ms / 1e3,
                static_cast<long long>(ledger.cold_starts_after_crash),
                static_cast<long long>(ledger.cold_starts_after_transient),
                static_cast<long long>(ledger.cold_starts_after_timeout),
                static_cast<long long>(ledger.cold_starts_after_outage),
                static_cast<long long>(ledger.cold_starts_in_degraded_mode));
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  FlagParser flags;
  if (!flags.Parse(argc, argv) || !flags.Has("trace") || flags.Has("help")) {
    std::fprintf(
        stderr,
        "usage: policy_eval --trace DIR [--policies fixed-10,hybrid,...]\n"
        "                   [--range-minutes N=240] [--cv T=2]\n"
        "                   [--head P=5] [--tail P=99]\n"
        "                   [--use-exec-times] [--weight-by-memory]\n"
        "                   [--threads N=0 (0 = all cores)]\n"
        "                   [--skip-malformed]\n"
        "chaos mode (cluster simulator with fault injection):\n"
        "                   [--faults SPEC | --mtbf H [--mttr M]\n"
        "                    [--wipe-mtbf H] [--fault-seed N]]\n"
        "                   [--invokers N=18] [--invoker-memory MB=4096]\n"
        "                   [--retries N] [--timeout D] [--backoff D]\n"
        "                   [--checkpoint D]\n");
    return flags.Has("help") ? 0 : 2;
  }

  CsvReadOptions read_options;
  read_options.skip_malformed = flags.GetBool("skip-malformed", false);
  const auto read = ReadTraceCsv(flags.GetString("trace", ""), read_options);
  if (!read.ok) {
    std::fprintf(stderr, "failed to read trace: %s\n", read.error.c_str());
    return 1;
  }
  for (const std::string& warning : read.warnings) {
    std::fprintf(stderr, "warning: skipped malformed row: %s\n",
                 warning.c_str());
  }
  const Trace& trace = read.value;
  std::printf("trace: %zu apps, %lld functions, %lld invocations, %d days\n",
              trace.apps.size(),
              static_cast<long long>(trace.TotalFunctions()),
              static_cast<long long>(trace.TotalInvocations()),
              static_cast<int>(trace.horizon.days()));

  HybridPolicyConfig hybrid;
  hybrid.num_bins = static_cast<int>(flags.GetInt("range-minutes", 240));
  hybrid.cv_threshold = flags.GetDouble("cv", 2.0);
  hybrid.head_percentile = flags.GetDouble("head", 5.0);
  hybrid.tail_percentile = flags.GetDouble("tail", 99.0);

  std::vector<std::unique_ptr<PolicyFactory>> owned;
  const std::string list =
      flags.GetString("policies", "fixed-10,fixed-60,hybrid");
  for (std::string_view name : SplitString(list, ',')) {
    name = StripWhitespace(name);
    if (name.empty()) {
      continue;
    }
    auto factory = MakeFactory(name, hybrid);
    if (factory == nullptr) {
      std::fprintf(stderr, "unknown policy '%.*s'\n",
                   static_cast<int>(name.size()), name.data());
      return 2;
    }
    owned.push_back(std::move(factory));
  }
  if (owned.empty()) {
    std::fprintf(stderr, "no policies requested\n");
    return 2;
  }

  SimulatorOptions options;
  options.use_execution_times = flags.GetBool("use-exec-times", false);
  options.weight_by_memory = flags.GetBool("weight-by-memory", false);
  options.num_threads = static_cast<int>(flags.GetInt("threads", 0));
  if (options.num_threads < 0) {
    std::fprintf(stderr, "--threads must be >= 0\n");
    return 2;
  }

  std::vector<const PolicyFactory*> factories;
  for (const auto& factory : owned) {
    factories.push_back(factory.get());
  }

  if (flags.Has("faults") || flags.Has("mtbf")) {
    return RunChaosEvaluation(flags, trace, factories);
  }

  const std::vector<PolicyPoint> points =
      EvaluatePolicies(trace, factories, /*baseline_index=*/0, options);

  std::printf("\n%-44s %10s %10s %12s %18s\n", "policy", "cold p50",
              "cold p75", "always-cold", "waste vs first");
  for (const PolicyPoint& point : points) {
    std::printf("%-44s %9.1f%% %9.1f%% %11.1f%% %17.1f%%\n",
                point.name.c_str(),
                point.result.AppColdStartPercentile(50.0),
                point.cold_start_p75,
                100.0 * point.result.FractionAppsAlwaysCold(false),
                point.normalized_wasted_memory_pct);
  }
  return 0;
}
