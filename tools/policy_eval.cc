// policy_eval: evaluate keep-alive policies on a trace in the Azure public
// dataset CSV schema (as produced by trace_gen, or assembled from the real
// AzurePublicDataset files).
//
// Usage:
//   policy_eval --trace DIR [--policies LIST] [--baseline NAME]
//               [--range-minutes N=240] [--cv T=2] [--head P=5] [--tail P=99]
//               [--use-exec-times] [--weight-by-memory] [--threads N=0]
//               [--skip-malformed]
//
// --threads sets the sweep parallelism (0 = all hardware cores, 1 = fully
// sequential).  Results are bit-identical at any thread count.
// --skip-malformed tolerates malformed CSV rows (each is skipped with a
// warning) instead of failing the read on the first bad row.
//
// Synthetic input — instead of --trace, sample a workload in-process:
//   policy_eval --gen-apps N [--gen-days D=14] [--gen-seed S=42]
//               [--gen-rate-cap R=8000]
//
// Streaming mode (sweep only; Azure-scale traces with bounded memory):
//   --stream                 pull the trace through the sharded streaming
//                            sweep engine instead of materializing it; with
//                            --gen-apps the full trace is never built at
//                            all (shards come straight from the generator)
//   --shard-apps N=1024      apps per shard
//   --max-resident-shards    bound on shard arenas resident at once
//         K=2                (generation of shard k+1 overlaps simulation
//                            of shard k when K >= 2 and --threads > 1)
// Streamed results are byte-identical to the materialized sweep at any
// shard size, residency bound and thread count.  Streaming is incompatible
// with chaos/overload mode, telemetry exports and --flash-crowds.
// Every run ends with a "peak rss" line (getrusage high-water mark).
//
// Telemetry (works in both sweep and chaos mode; all optional):
//   --trace-out=FILE        Chrome trace_event JSON of activation /
//                           container spans (chrome://tracing, Perfetto).
//   --metrics-out=FILE      Prometheus text exposition of every counter,
//                           gauge, histogram and series.
//   --series-out=FILE       wide CSV of the per-interval series (cold-start
//                           rate, queue depth, resident memory).
//   --metrics-interval=D    sampling period for the cluster series
//                           (default 60s; chaos mode only — the sweep's
//                           series are fixed per-minute bins).
//   --progress              periodic stderr heartbeat (rate, % complete,
//                           ETA) driven by the live telemetry counters.
//
// LIST is comma-separated from: fixed-5, fixed-10, ..., fixed-240 (any
// minute count), no-unload, hybrid, hybrid-no-arima, hybrid-no-prewarm,
// production.  Default: "fixed-10,fixed-60,hybrid".
//
// Chaos mode — any of the fault flags switches evaluation from the app-level
// sweep to the mini-OpenWhisk cluster simulator with fault injection:
//   policy_eval --trace DIR --faults SPEC | --mtbf H [--mttr M]
//               [--wipe-mtbf H] [--fault-seed N]
//               [--invokers N=18] [--invoker-memory MB=4096]
//               [--retries N] [--timeout D] [--backoff D] [--checkpoint D]
//
// SPEC is semicolon-separated clauses: crash:invoker=I,at=D,down=D;
// wipe:at=D; spike:at=D,for=D,x=M; flaky:at=D,for=D,p=P, with durations
// accepting ms/s/m/h/d suffixes.  The report adds the failure ledger
// (crashes, retries, timeouts, abandoned/lost activations, degraded time).
//
// Overload control plane — any of these also selects the cluster simulator
// and adds the overload ledger to the report:
//   --overload                enable the default bundle (admission queue of
//                             64 FIFO + circuit breakers)
//   --admission-queue N       bounded admission queue of N entries
//   --admission-discipline P  fifo | lifo | codel (default fifo)
//   --queue-max-wait D        shed queued work older than D (default 30s)
//   --hedge D                 hedged dispatch after a fixed delay D
//   --hedge-percentile P      hedge after the live e2e latency percentile P
//   --concurrency-cap N       per-invoker concurrent-execution cap
//   --breaker                 per-invoker circuit breakers (defaults)
//   --breaker-window N --breaker-threshold F --breaker-open D
//   --breaker-latency-ms X    count completions slower than X ms as bad
//
// Flash crowds — inject synchronized burst trains into the loaded trace
// before evaluation (deterministic given --flash-seed):
//   --flash-crowds N [--flash-minutes M=10] [--flash-fraction F=0.3]
//   [--flash-events E=80] [--flash-seed S=1234]

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#include <unistd.h>
#endif

#include "src/cluster/cluster.h"
#include "src/faults/fault_plan.h"
#include "src/policy/hybrid.h"
#include "src/policy/policy.h"
#include "src/policy/production_policy.h"
#include "src/sim/shard_source.h"
#include "src/sim/sweep.h"
#include "src/telemetry/export.h"
#include "src/telemetry/telemetry.h"
#include "src/trace/csv.h"
#include "src/workload/arrival.h"
#include "src/workload/generator.h"
#include "tools/flags.h"

namespace {

using namespace faas;

// Process peak RSS in MB (ru_maxrss is KB on Linux, bytes on macOS), or a
// negative value when the platform has no getrusage.
double PeakRssMb() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage usage;
  if (getrusage(RUSAGE_SELF, &usage) != 0) {
    return -1.0;
  }
#if defined(__APPLE__)
  return static_cast<double>(usage.ru_maxrss) / (1024.0 * 1024.0);
#else
  return static_cast<double>(usage.ru_maxrss) / 1024.0;
#endif
#else
  return -1.0;
#endif
}

void PrintPeakRss() {
  const double mb = PeakRssMb();
  if (mb >= 0.0) {
    std::printf("peak rss: %.1f MB\n", mb);
  }
}

std::unique_ptr<PolicyFactory> MakeFactory(std::string_view name,
                                           const HybridPolicyConfig& hybrid) {
  if (name == "no-unload") {
    return std::make_unique<NoUnloadFactory>();
  }
  if (name == "hybrid") {
    return std::make_unique<HybridPolicyFactory>(hybrid);
  }
  if (name == "hybrid-no-arima") {
    HybridPolicyConfig config = hybrid;
    config.enable_arima = false;
    return std::make_unique<HybridPolicyFactory>(config);
  }
  if (name == "hybrid-no-prewarm") {
    HybridPolicyConfig config = hybrid;
    config.enable_prewarm = false;
    return std::make_unique<HybridPolicyFactory>(config);
  }
  if (name == "production") {
    ProductionPolicyConfig config;
    config.hybrid = hybrid;
    config.store.bin_width = hybrid.bin_width;
    config.store.num_bins = hybrid.num_bins;
    return std::make_unique<ProductionPolicyFactory>(config);
  }
  if (StartsWith(name, "fixed-")) {
    const auto minutes = ParseInt64(name.substr(6));
    if (minutes.has_value() && *minutes > 0) {
      return std::make_unique<FixedKeepAliveFactory>(
          Duration::Minutes(*minutes));
    }
  }
  return nullptr;
}

// Reads a duration flag with ms/s/m/h/d suffixes (bare numbers = seconds).
std::optional<Duration> GetDurationFlag(const FlagParser& flags,
                                        const std::string& name) {
  if (!flags.Has(name)) {
    return std::nullopt;
  }
  const auto parsed = ParseDuration(flags.GetString(name, ""));
  if (!parsed.has_value()) {
    std::fprintf(stderr, "--%s: bad duration '%s'\n", name.c_str(),
                 flags.GetString(name, "").c_str());
  }
  return parsed;
}

// Background stderr heartbeat driven by the live telemetry counters: the
// sweep and cluster hot paths bump relaxed atomics, so a reader thread can
// sum them without synchronising with the workers.
class ProgressHeartbeat {
 public:
  ProgressHeartbeat(const MetricsRegistry* registry, std::string counter_base,
                    std::string unit, int64_t total)
      : registry_(registry),
        counter_base_(std::move(counter_base)),
        unit_(std::move(unit)),
        total_(total),
        start_(std::chrono::steady_clock::now()) {
    if (registry_ != nullptr) {
      thread_ = std::thread([this]() { Loop(); });
    }
  }

  ~ProgressHeartbeat() {
    if (!thread_.joinable()) {
      return;
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      stop_ = true;
    }
    cv_.notify_all();
    thread_.join();
    Beat();  // Final line so the log ends at the true completion count.
  }

 private:
  void Loop() {
    std::unique_lock<std::mutex> lock(mutex_);
    while (!stop_) {
      cv_.wait_for(lock, std::chrono::seconds(2));
      if (stop_) {
        return;
      }
      Beat();
    }
  }

  void Beat() const {
    const int64_t done = registry_->SumCountersByBase(counter_base_);
    const double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start_)
            .count();
    const double rate = elapsed > 0.0 ? static_cast<double>(done) / elapsed
                                      : 0.0;
    const double pct =
        total_ > 0 ? 100.0 * static_cast<double>(done) /
                         static_cast<double>(total_)
                   : 0.0;
    const double eta =
        rate > 0.0 ? static_cast<double>(total_ - done) / rate : 0.0;
    std::fprintf(stderr,
                 "progress: %lld/%lld %s (%.1f%%), %.0f %s/s, eta %.0fs\n",
                 static_cast<long long>(done),
                 static_cast<long long>(total_), unit_.c_str(), pct,
                 rate, unit_.c_str(), eta < 0.0 ? 0.0 : eta);
  }

  const MetricsRegistry* registry_;
  std::string counter_base_;
  std::string unit_;
  int64_t total_;
  std::chrono::steady_clock::time_point start_;
  std::thread thread_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
};

// Writes whichever exports were requested.  Returns 0, or 1 if a file could
// not be opened.
int WriteTelemetryOutputs(const FlagParser& flags,
                          const Telemetry* telemetry) {
  if (telemetry == nullptr) {
    return 0;
  }
  const auto open = [](const std::string& path,
                       std::ofstream& out) -> bool {
    out.open(path, std::ios::binary);
    if (!out.is_open()) {
      std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
      return false;
    }
    return true;
  };
  if (flags.Has("trace-out")) {
    std::ofstream out;
    if (!open(flags.GetString("trace-out", ""), out)) {
      return 1;
    }
    WriteChromeTrace(telemetry->tracer().Collect(), out);
  }
  if (flags.Has("metrics-out") || flags.Has("series-out")) {
    const RegistrySnapshot snapshot = telemetry->metrics().Scrape();
    if (flags.Has("metrics-out")) {
      std::ofstream out;
      if (!open(flags.GetString("metrics-out", ""), out)) {
        return 1;
      }
      WritePrometheusText(snapshot, out);
    }
    if (flags.Has("series-out")) {
      std::ofstream out;
      if (!open(flags.GetString("series-out", ""), out)) {
        return 1;
      }
      WriteSeriesCsv(snapshot, out);
    }
  }
  return 0;
}

#if defined(__unix__) || defined(__APPLE__)
// --progress marks a long interactive run; a SIGINT/SIGTERM mid-sweep
// should still leave the requested telemetry exports on disk instead of
// losing hours of counters.  The handler itself is async-signal-safe (one
// byte to a self-pipe); a watcher thread does the flushing — MetricsRegistry
// scrapes are sharded atomics, safe to read while workers run — and exits
// with the conventional 128+signum status.
int g_signal_pipe[2] = {-1, -1};

void OnTerminateSignal(int signum) {
  const auto byte = static_cast<unsigned char>(signum);
  [[maybe_unused]] const ssize_t n = write(g_signal_pipe[1], &byte, 1);
}

class SignalFlushGuard {
 public:
  SignalFlushGuard(const FlagParser& flags, const Telemetry* telemetry)
      : flags_(flags), telemetry_(telemetry) {
    if (pipe(g_signal_pipe) != 0) {
      return;
    }
    std::signal(SIGINT, &OnTerminateSignal);
    std::signal(SIGTERM, &OnTerminateSignal);
    watcher_ = std::thread([this]() {
      unsigned char byte = 0;
      if (read(g_signal_pipe[0], &byte, 1) != 1 || byte == 0) {
        return;  // Destructor shutdown, not a signal.
      }
      std::fprintf(stderr,
                   "\ninterrupted (%s): flushing telemetry exports\n",
                   byte == SIGTERM ? "SIGTERM" : "SIGINT");
      WriteTelemetryOutputs(flags_, telemetry_);
      std::_Exit(128 + byte);
    });
  }

  ~SignalFlushGuard() {
    if (!watcher_.joinable()) {
      return;
    }
    std::signal(SIGINT, SIG_DFL);
    std::signal(SIGTERM, SIG_DFL);
    const unsigned char zero = 0;
    [[maybe_unused]] const ssize_t n = write(g_signal_pipe[1], &zero, 1);
    watcher_.join();
    close(g_signal_pipe[0]);
    close(g_signal_pipe[1]);
    g_signal_pipe[0] = g_signal_pipe[1] = -1;
  }

 private:
  const FlagParser& flags_;
  const Telemetry* telemetry_;
  std::thread watcher_;
};
#endif

// True when any overload-control or flash-crowd flag was passed (each one
// routes evaluation through the cluster simulator, like the fault flags).
bool HasOverloadFlags(const FlagParser& flags) {
  static const char* kFlags[] = {
      "overload",        "admission-queue",    "admission-discipline",
      "queue-max-wait",  "hedge",              "hedge-percentile",
      "concurrency-cap", "breaker",            "breaker-window",
      "breaker-threshold", "breaker-open",     "breaker-latency-ms",
      "flash-crowds",
  };
  for (const char* name : kFlags) {
    if (flags.Has(name)) {
      return true;
    }
  }
  return false;
}

// True when any network-model flag was passed (each one routes evaluation
// through the cluster simulator with the transport layer enabled).
bool HasNetworkFlags(const FlagParser& flags) {
  static const char* kFlags[] = {"net-latency", "net-queue-cap", "net-loss",
                                 "net-partition"};
  for (const char* name : kFlags) {
    if (flags.Has(name)) {
      return true;
    }
  }
  return false;
}

// Fills `config->network` (and appends the implied full-horizon loss window /
// partition events to `config->faults`) from the command line.  Returns false
// (after printing a diagnostic) on a malformed flag.
bool ParseNetworkFlags(const FlagParser& flags, ClusterConfig* config,
                       Duration horizon) {
  if (!HasNetworkFlags(flags)) {
    return true;
  }
  config->network.enabled = true;
  if (flags.Has("net-latency")) {
    const double median_ms = flags.GetDouble("net-latency", 0.5);
    if (median_ms <= 0.0) {
      std::fprintf(stderr, "--net-latency must be positive (median ms)\n");
      return false;
    }
    config->network.uplink.latency_median_ms = median_ms;
    config->network.downlink.latency_median_ms = median_ms;
  }
  if (flags.Has("net-queue-cap")) {
    const int capacity = static_cast<int>(flags.GetInt("net-queue-cap", 0));
    if (capacity <= 0) {
      std::fprintf(stderr, "--net-queue-cap must be positive\n");
      return false;
    }
    config->network.uplink.queue_capacity = capacity;
    config->network.downlink.queue_capacity = capacity;
  }
  if (flags.Has("net-loss")) {
    const double p = flags.GetDouble("net-loss", 0.0);
    if (p < 0.0 || p >= 1.0) {
      std::fprintf(stderr, "--net-loss must be in [0, 1)\n");
      return false;
    }
    if (p > 0.0) {
      NetLossWindow window;
      window.invoker = -1;  // Every link.
      window.start = TimePoint::Origin();
      window.duration = horizon;
      window.probability = p;
      config->faults.loss_windows.push_back(window);
    }
  }
  if (flags.Has("net-partition")) {
    // Comma-separated "I@AT+DUR" items: invoker index (or `all`), partition
    // start, partition duration, e.g. --net-partition "3@10m+2m,all@1h+30s".
    const std::string spec = flags.GetString("net-partition", "");
    for (std::string_view item : SplitString(spec, ',')) {
      item = StripWhitespace(item);
      if (item.empty()) {
        continue;
      }
      const size_t at_pos = item.find('@');
      const size_t plus_pos = item.find('+');
      if (at_pos == std::string_view::npos ||
          plus_pos == std::string_view::npos || plus_pos < at_pos) {
        std::fprintf(stderr,
                     "--net-partition: want I@AT+DUR (e.g. 3@10m+2m or "
                     "all@1h+30s), got '%.*s'\n",
                     static_cast<int>(item.size()), item.data());
        return false;
      }
      NetPartitionEvent event;
      const std::string who(StripWhitespace(item.substr(0, at_pos)));
      if (who == "all") {
        event.invoker = -1;
      } else {
        char* end = nullptr;
        event.invoker = static_cast<int>(std::strtol(who.c_str(), &end, 10));
        if (end == who.c_str() || *end != '\0' || event.invoker < 0) {
          std::fprintf(stderr, "--net-partition: bad invoker '%s'\n",
                       who.c_str());
          return false;
        }
      }
      const auto at =
          ParseDuration(item.substr(at_pos + 1, plus_pos - at_pos - 1));
      const auto duration = ParseDuration(item.substr(plus_pos + 1));
      if (!at.has_value() || !duration.has_value() || at->IsNegative() ||
          !(*duration > Duration::Zero())) {
        std::fprintf(stderr, "--net-partition: bad window in '%.*s'\n",
                     static_cast<int>(item.size()), item.data());
        return false;
      }
      event.start = TimePoint::Origin() + *at;
      event.duration = *duration;
      config->faults.partitions.push_back(event);
    }
  }
  return true;
}

// Fills `overload` from the command line.  Returns false (after printing a
// diagnostic) on a malformed flag.
bool ParseOverloadFlags(const FlagParser& flags,
                        OverloadControlConfig* overload) {
  if (flags.GetBool("overload", false)) {
    // Default bundle: a modest FIFO queue plus breakers; hedging stays
    // opt-in because it adds load to an already-loaded cluster.
    overload->admission.capacity = 64;
    overload->breaker.enabled = true;
  }
  if (flags.Has("admission-queue")) {
    overload->admission.capacity =
        static_cast<int>(flags.GetInt("admission-queue", 0));
    if (overload->admission.capacity <= 0) {
      std::fprintf(stderr, "--admission-queue must be positive\n");
      return false;
    }
  }
  if (flags.Has("admission-discipline")) {
    const auto discipline = ParseAdmissionDiscipline(
        flags.GetString("admission-discipline", ""));
    if (!discipline.has_value()) {
      std::fprintf(stderr,
                   "--admission-discipline: want fifo, lifo or codel\n");
      return false;
    }
    overload->admission.discipline = *discipline;
  }
  if (const auto max_wait = GetDurationFlag(flags, "queue-max-wait")) {
    overload->admission.max_wait = *max_wait;
  } else if (flags.Has("queue-max-wait")) {
    return false;
  }
  if (const auto hedge = GetDurationFlag(flags, "hedge")) {
    overload->hedge.after = *hedge;
  } else if (flags.Has("hedge")) {
    return false;
  }
  if (flags.Has("hedge-percentile")) {
    overload->hedge.latency_percentile =
        flags.GetDouble("hedge-percentile", 0.0);
    if (overload->hedge.latency_percentile <= 0.0 ||
        overload->hedge.latency_percentile >= 100.0) {
      std::fprintf(stderr, "--hedge-percentile must be in (0, 100)\n");
      return false;
    }
  }
  if (flags.Has("concurrency-cap")) {
    overload->invoker_concurrency_cap =
        static_cast<int>(flags.GetInt("concurrency-cap", 0));
    if (overload->invoker_concurrency_cap <= 0) {
      std::fprintf(stderr, "--concurrency-cap must be positive\n");
      return false;
    }
  }
  if (flags.GetBool("breaker", false) || flags.Has("breaker-window") ||
      flags.Has("breaker-threshold") || flags.Has("breaker-open") ||
      flags.Has("breaker-latency-ms")) {
    overload->breaker.enabled = true;
  }
  if (flags.Has("breaker-window")) {
    overload->breaker.window =
        static_cast<int>(flags.GetInt("breaker-window", 20));
  }
  if (flags.Has("breaker-threshold")) {
    overload->breaker.failure_threshold =
        flags.GetDouble("breaker-threshold", 0.5);
  }
  if (const auto open = GetDurationFlag(flags, "breaker-open")) {
    overload->breaker.open_duration = *open;
  } else if (flags.Has("breaker-open")) {
    return false;
  }
  if (flags.Has("breaker-latency-ms")) {
    overload->breaker.latency_threshold_ms =
        flags.GetDouble("breaker-latency-ms", 0.0);
  }
  return true;
}

// Evaluates the requested policies on the cluster simulator under a fault
// plan and prints the outcome split plus the failure ledger per policy.
int RunChaosEvaluation(const FlagParser& flags, const Trace& trace,
                       const std::vector<const PolicyFactory*>& factories,
                       Telemetry* telemetry, Duration metrics_interval) {
  ClusterConfig config;
  config.num_invokers = static_cast<int>(flags.GetInt("invokers", 18));
  config.invoker_memory_mb = flags.GetDouble("invoker-memory", 4096.0);
  if (config.num_invokers <= 0) {
    std::fprintf(stderr, "--invokers must be positive\n");
    return 2;
  }

  if (flags.Has("faults")) {
    std::string error;
    const auto plan = FaultPlan::Parse(flags.GetString("faults", ""), &error);
    if (!plan.has_value()) {
      std::fprintf(stderr, "--faults: %s\n", error.c_str());
      return 2;
    }
    config.faults = *plan;
  } else if (flags.Has("mtbf")) {
    MtbfModel model;
    model.mtbf_hours = flags.GetDouble("mtbf", model.mtbf_hours);
    model.mttr_minutes = flags.GetDouble("mttr", model.mttr_minutes);
    model.wipe_mtbf_hours =
        flags.GetDouble("wipe-mtbf", model.wipe_mtbf_hours);
    model.seed = static_cast<uint64_t>(flags.GetInt("fault-seed", 42));
    config.faults =
        FaultPlan::FromMtbf(model, config.num_invokers, trace.horizon);
    std::printf("generated fault plan: %zu crashes, %zu wipes "
                "(mtbf=%.2gh, mttr=%.2gm, seed=%llu)\n",
                config.faults.crashes.size(), config.faults.wipes.size(),
                model.mtbf_hours, model.mttr_minutes,
                static_cast<unsigned long long>(model.seed));
  }
  if (!ParseNetworkFlags(flags, &config, trace.horizon)) {
    return 2;
  }
  if (config.faults.HasNetworkFaults() && !config.network.enabled) {
    // A --faults spec with network clauses implies the transport layer.
    config.network.enabled = true;
  }
  const std::string plan_error = config.faults.Validate(config.num_invokers);
  if (!plan_error.empty()) {
    std::fprintf(stderr, "invalid fault plan: %s\n", plan_error.c_str());
    return 2;
  }

  config.retry.max_retries = static_cast<int>(flags.GetInt("retries", 0));
  if (const auto timeout = GetDurationFlag(flags, "timeout")) {
    config.retry.activation_timeout = *timeout;
  } else if (flags.Has("timeout")) {
    return 2;
  }
  if (const auto backoff = GetDurationFlag(flags, "backoff")) {
    config.retry.base_backoff = *backoff;
  } else if (flags.Has("backoff")) {
    return 2;
  }
  if (const auto checkpoint = GetDurationFlag(flags, "checkpoint")) {
    config.policy_checkpoint_interval = *checkpoint;
  } else if (flags.Has("checkpoint")) {
    return 2;
  }

  if (!ParseOverloadFlags(flags, &config.overload)) {
    return 2;
  }

  config.telemetry = telemetry;
  config.metrics_interval = metrics_interval;
  config.cost.dollars_per_gb_second = flags.GetDouble("cost-gb-s", 0.0);
  config.cost.dollars_per_cpu_second = flags.GetDouble("cost-cpu-s", 0.0);
  config.cost.dollars_per_million_invocations =
      flags.GetDouble("cost-invoke", 0.0);
  // The faas_resource_* metric families register only on request (or when a
  // cost model is priced in), keeping default telemetry exports unchanged.
  config.resource_telemetry =
      flags.GetBool("resource-telemetry", false) || config.cost.enabled();
  std::printf("\nchaos evaluation: %d invokers, %zu crashes, %zu wipes, "
              "%zu spikes, %zu flaky windows, retries=%d\n",
              config.num_invokers, config.faults.crashes.size(),
              config.faults.wipes.size(), config.faults.spikes.size(),
              config.faults.transient_windows.size(),
              config.retry.max_retries);
  if (config.network.enabled) {
    std::printf("network: median latency %.2gms/%.2gms (up/down), queue "
                "cap %d/%d, rpc timeout %.0fms, %d retransmits; faults: "
                "%zu partitions, %zu loss, %zu dup, %zu reorder windows\n",
                config.network.uplink.latency_median_ms,
                config.network.downlink.latency_median_ms,
                config.network.uplink.queue_capacity,
                config.network.downlink.queue_capacity,
                static_cast<double>(config.network.rpc_timeout.millis()),
                config.network.max_retransmits,
                config.faults.partitions.size(),
                config.faults.loss_windows.size(),
                config.faults.duplicate_windows.size(),
                config.faults.reorder_windows.size());
  }
  if (config.overload.AnyEnabled()) {
    std::printf("overload control: queue=%d (%s, max-wait %.1fs) "
                "breaker=%s hedge=%s cap=%d\n",
                config.overload.admission.capacity,
                AdmissionDisciplineName(config.overload.admission.discipline),
                static_cast<double>(
                    config.overload.admission.max_wait.millis()) / 1e3,
                config.overload.breaker.enabled ? "on" : "off",
                config.overload.hedge.enabled() ? "on" : "off",
                config.overload.invoker_concurrency_cap);
  }
  const ProgressHeartbeat heartbeat(
      flags.GetBool("progress", false) && telemetry != nullptr &&
              telemetry->metrics_enabled()
          ? &telemetry->metrics()
          : nullptr,
      "faas_cluster_invocations_total", "invocations",
      trace.TotalInvocations() * static_cast<int64_t>(factories.size()));
  std::printf("\n%-44s %9s %9s %9s %9s %9s %9s\n", "policy", "cold p50",
              "dropped", "rejected", "abandon", "lost", "retries");
  for (size_t i = 0; i < factories.size(); ++i) {
    const PolicyFactory* factory = factories[i];
    // One Chrome-trace process lane per policy.
    config.telemetry_pid = static_cast<int16_t>(i);
    const ClusterSimulator simulator(config);
    const ClusterResult result = simulator.Replay(trace, *factory);
    std::printf("%-44s %8.1f%% %9lld %9lld %9lld %9lld %9lld\n",
                result.policy_name.c_str(),
                result.AppColdStartPercentile(50.0),
                static_cast<long long>(result.total_dropped),
                static_cast<long long>(result.total_rejected_outage),
                static_cast<long long>(result.total_abandoned),
                static_cast<long long>(result.total_lost),
                static_cast<long long>(result.faults.retries_scheduled));
    const FaultLedger& ledger = result.faults;
    std::printf("    crashes=%lld restarts=%lld lost-in-flight=%lld "
                "transient=%lld timeouts=%lld retry-ok=%lld\n",
                static_cast<long long>(ledger.invoker_crashes),
                static_cast<long long>(ledger.invoker_restarts),
                static_cast<long long>(ledger.lost_in_flight),
                static_cast<long long>(ledger.transient_failures),
                static_cast<long long>(ledger.timeouts),
                static_cast<long long>(ledger.retry_successes));
    std::printf("    wipes=%lld restored=%lld lost-state=%lld "
                "degraded-recoveries=%lld degraded-time=%.1fs "
                "cold-after{crash=%lld transient=%lld timeout=%lld "
                "outage=%lld degraded=%lld}\n",
                static_cast<long long>(ledger.policy_state_wipes),
                static_cast<long long>(ledger.policy_states_restored),
                static_cast<long long>(ledger.policy_states_lost),
                static_cast<long long>(ledger.degraded_recoveries),
                ledger.total_degraded_ms / 1e3,
                static_cast<long long>(ledger.cold_starts_after_crash),
                static_cast<long long>(ledger.cold_starts_after_transient),
                static_cast<long long>(ledger.cold_starts_after_timeout),
                static_cast<long long>(ledger.cold_starts_after_outage),
                static_cast<long long>(ledger.cold_starts_in_degraded_mode));
    const ResourceLedger& resources = result.resources;
    std::printf("    resources{idle=%.1fGB-s busy=%.1fGB-s cpu=%.1fs "
                "loads=%lld unloads=%lld}",
                resources.idle_gb_seconds(), resources.busy_gb_seconds(),
                resources.cpu_seconds(),
                static_cast<long long>(resources.container_loads()),
                static_cast<long long>(resources.container_unloads()));
    if (config.cost.enabled()) {
      std::printf(" cost=$%.4f", result.cost_dollars);
    }
    std::printf("\n");
    if (config.network.enabled) {
      std::printf("    net{sent=%lld delivered=%lld "
                  "lost{loss=%lld partition=%lld queue=%lld} dup=%lld "
                  "reorder=%lld} rpc{retx=%lld dedup=%lld giveup=%lld}\n",
                  static_cast<long long>(ledger.net_messages_sent),
                  static_cast<long long>(ledger.net_delivered),
                  static_cast<long long>(ledger.net_lost_to_loss),
                  static_cast<long long>(ledger.net_lost_to_partition),
                  static_cast<long long>(ledger.net_lost_to_queue),
                  static_cast<long long>(ledger.net_duplicates_delivered),
                  static_cast<long long>(ledger.net_reordered),
                  static_cast<long long>(ledger.rpc_retransmits),
                  static_cast<long long>(ledger.rpc_duplicates_suppressed),
                  static_cast<long long>(ledger.rpc_give_ups));
      std::printf("    lost-split{crash=%lld network=%lld} "
                  "network-failures=%lld cold-after-network=%lld\n",
                  static_cast<long long>(ledger.lost_crash),
                  static_cast<long long>(ledger.lost_network),
                  static_cast<long long>(ledger.network_failures),
                  static_cast<long long>(ledger.cold_starts_after_network));
    }
    if (config.overload.AnyEnabled()) {
      const OverloadLedger& overload = result.overload;
      std::printf("    queued=%lld drained=%lld "
                  "shed{full=%lld deadline=%lld shutdown=%lld} "
                  "qwait{mean=%.1fms max=%.1fms}\n",
                  static_cast<long long>(overload.queued),
                  static_cast<long long>(overload.drained),
                  static_cast<long long>(overload.shed_queue_full),
                  static_cast<long long>(overload.shed_deadline),
                  static_cast<long long>(overload.shed_at_shutdown),
                  overload.MeanQueueWaitMs(), overload.max_queue_wait_ms);
      std::printf("    hedges=%lld hedge-wins=%lld primary-wins=%lld "
                  "unplaced=%lld breaker{opens=%lld half=%lld closes=%lld "
                  "rejected=%lld open-time=%.1fs} cap-rejected=%lld\n",
                  static_cast<long long>(overload.hedges_launched),
                  static_cast<long long>(overload.hedge_wins),
                  static_cast<long long>(overload.hedge_primary_wins),
                  static_cast<long long>(overload.hedges_unplaced),
                  static_cast<long long>(overload.breaker_opens),
                  static_cast<long long>(overload.breaker_half_opens),
                  static_cast<long long>(overload.breaker_closes),
                  static_cast<long long>(overload.breaker_rejections),
                  overload.total_breaker_open_ms / 1e3,
                  static_cast<long long>(overload.cap_rejections));
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  FlagParser flags;
  if (!flags.Parse(argc, argv) ||
      (!flags.Has("trace") && !flags.Has("gen-apps")) || flags.Has("help")) {
    std::fprintf(
        stderr,
        "usage: policy_eval --trace DIR | --gen-apps N\n"
        "                   [--gen-days D=14] [--gen-seed S=42]\n"
        "                   [--gen-rate-cap R=8000]\n"
        "                   [--stream] [--shard-apps N=1024]\n"
        "                   [--max-resident-shards K=2]\n"
        "                   [--policies fixed-10,hybrid,...]\n"
        "                   [--range-minutes N=240] [--cv T=2]\n"
        "                   [--head P=5] [--tail P=99]\n"
        "                   [--use-exec-times] [--weight-by-memory]\n"
        "                   [--threads N=0 (0 = all cores)]\n"
        "                   [--skip-malformed]\n"
        "telemetry (sweep and chaos mode):\n"
        "                   [--trace-out FILE] [--metrics-out FILE]\n"
        "                   [--series-out FILE] [--metrics-interval D=60s]\n"
        "                   [--progress]\n"
        "chaos mode (cluster simulator with fault injection):\n"
        "                   [--faults SPEC | --mtbf H [--mttr M]\n"
        "                    [--wipe-mtbf H] [--fault-seed N]]\n"
        "                   [--invokers N=18] [--invoker-memory MB=4096]\n"
        "                   [--retries N] [--timeout D] [--backoff D]\n"
        "                   [--checkpoint D]\n"
        "overload control plane (also selects the cluster simulator):\n"
        "                   [--overload] [--admission-queue N]\n"
        "                   [--admission-discipline fifo|lifo|codel]\n"
        "                   [--queue-max-wait D] [--hedge D]\n"
        "                   [--hedge-percentile P] [--concurrency-cap N]\n"
        "                   [--breaker] [--breaker-window N]\n"
        "                   [--breaker-threshold F] [--breaker-open D]\n"
        "                   [--breaker-latency-ms X]\n"
        "cost accounting (chaos mode; the cost model also enables the\n"
        "faas_resource_* metric families):\n"
        "                   [--cost-gb-s X] [--cost-cpu-s X]\n"
        "                   [--cost-invoke X] [--resource-telemetry]\n"
        "network model (also selects the cluster simulator):\n"
        "                   [--net-latency MS] [--net-queue-cap N]\n"
        "                   [--net-loss P] [--net-partition I@AT+DUR,...]\n"
        "                   (I = invoker index or `all`; e.g. 3@10m+2m)\n"
        "flash crowds (burst trains injected into the loaded trace):\n"
        "                   [--flash-crowds N] [--flash-minutes M=10]\n"
        "                   [--flash-fraction F=0.3] [--flash-events E=80]\n"
        "                   [--flash-seed S=1234]\n");
    return flags.Has("help") ? 0 : 2;
  }

  const bool stream = flags.GetBool("stream", false);
  const bool gen_mode = flags.Has("gen-apps");
  if (gen_mode && flags.Has("trace")) {
    std::fprintf(stderr, "--trace and --gen-apps are mutually exclusive\n");
    return 2;
  }
  if (stream &&
      (flags.Has("faults") || flags.Has("mtbf") || HasOverloadFlags(flags) ||
       HasNetworkFlags(flags) ||
       flags.Has("trace-out") || flags.Has("metrics-out") ||
       flags.Has("series-out") || flags.GetBool("progress", false))) {
    std::fprintf(stderr,
                 "--stream supports only the plain policy sweep (no chaos/"
                 "overload mode, telemetry exports or --flash-crowds)\n");
    return 2;
  }

  GeneratorConfig gen_config;
  std::optional<WorkloadGenerator> generator;
  Trace trace;
  if (gen_mode) {
    if (flags.Has("flash-crowds")) {
      std::fprintf(stderr, "--flash-crowds requires --trace input\n");
      return 2;
    }
    gen_config.num_apps = static_cast<int>(flags.GetInt("gen-apps", 0));
    if (gen_config.num_apps <= 0) {
      std::fprintf(stderr, "--gen-apps must be positive\n");
      return 2;
    }
    gen_config.days = static_cast<int>(flags.GetInt("gen-days", 14));
    gen_config.seed = static_cast<uint64_t>(flags.GetInt("gen-seed", 42));
    gen_config.instants_rate_cap_per_day =
        flags.GetDouble("gen-rate-cap", 8000.0);
    gen_config.flash_crowd_count = 0;
    generator.emplace(gen_config);
    std::printf("generator: %d sampled apps, %d days, seed %llu, rate cap "
                "%.0f/day%s\n",
                gen_config.num_apps, gen_config.days,
                static_cast<unsigned long long>(gen_config.seed),
                gen_config.instants_rate_cap_per_day,
                stream ? " (streamed; full trace never materialized)" : "");
    if (!stream) {
      trace = generator->Generate();
    }
  } else {
    CsvReadOptions read_options;
    read_options.skip_malformed = flags.GetBool("skip-malformed", false);
    auto read = ReadTraceCsv(flags.GetString("trace", ""), read_options);
    if (!read.ok) {
      std::fprintf(stderr, "failed to read trace: %s\n", read.error.c_str());
      return 1;
    }
    for (const std::string& warning : read.warnings) {
      std::fprintf(stderr, "warning: skipped malformed row: %s\n",
                   warning.c_str());
    }
    if (flags.Has("flash-crowds")) {
      if (stream) {
        std::fprintf(stderr,
                     "--flash-crowds is incompatible with --stream\n");
        return 2;
      }
      FlashCrowdSpec spec;
      spec.count = static_cast<int>(flags.GetInt("flash-crowds", 0));
      if (spec.count <= 0) {
        std::fprintf(stderr, "--flash-crowds must be positive\n");
        return 2;
      }
      spec.duration =
          Duration::Minutes(flags.GetInt("flash-minutes", 10));
      spec.fraction = flags.GetDouble("flash-fraction", 0.3);
      spec.events_per_function = flags.GetDouble("flash-events", 80.0);
      const int64_t before = read.value.TotalInvocations();
      Rng crowd_rng(static_cast<uint64_t>(flags.GetInt("flash-seed", 1234)));
      // Adding invocation instants leaves the name-keyed entity index valid.
      ApplyFlashCrowd(read.value, spec, crowd_rng);
      std::printf("flash crowds: %d bursts, +%lld invocations\n", spec.count,
                  static_cast<long long>(read.value.TotalInvocations() -
                                         before));
    }
    trace = std::move(read.value);
  }
  if (!gen_mode || !stream) {
    std::printf(
        "trace: %zu apps, %lld functions, %lld invocations, %d days\n",
        trace.apps.size(), static_cast<long long>(trace.TotalFunctions()),
        static_cast<long long>(trace.TotalInvocations()),
        static_cast<int>(trace.horizon.days()));
  }

  HybridPolicyConfig hybrid;
  hybrid.num_bins = static_cast<int>(flags.GetInt("range-minutes", 240));
  hybrid.cv_threshold = flags.GetDouble("cv", 2.0);
  hybrid.head_percentile = flags.GetDouble("head", 5.0);
  hybrid.tail_percentile = flags.GetDouble("tail", 99.0);

  std::vector<std::unique_ptr<PolicyFactory>> owned;
  const std::string list =
      flags.GetString("policies", "fixed-10,fixed-60,hybrid");
  for (std::string_view name : SplitString(list, ',')) {
    name = StripWhitespace(name);
    if (name.empty()) {
      continue;
    }
    auto factory = MakeFactory(name, hybrid);
    if (factory == nullptr) {
      std::fprintf(stderr, "unknown policy '%.*s'\n",
                   static_cast<int>(name.size()), name.data());
      return 2;
    }
    owned.push_back(std::move(factory));
  }
  if (owned.empty()) {
    std::fprintf(stderr, "no policies requested\n");
    return 2;
  }

  SimulatorOptions options;
  options.use_execution_times = flags.GetBool("use-exec-times", false);
  options.weight_by_memory = flags.GetBool("weight-by-memory", false);
  options.num_threads = static_cast<int>(flags.GetInt("threads", 0));
  if (options.num_threads < 0) {
    std::fprintf(stderr, "--threads must be >= 0\n");
    return 2;
  }

  std::vector<const PolicyFactory*> factories;
  for (const auto& factory : owned) {
    factories.push_back(factory.get());
  }

  // Telemetry is constructed only when a flag asks for it; otherwise the
  // simulators run with null instrument pointers (the zero-cost path).
  const bool want_trace = flags.Has("trace-out");
  const bool want_metrics = flags.Has("metrics-out") ||
                            flags.Has("series-out") ||
                            flags.GetBool("progress", false);
  std::unique_ptr<Telemetry> telemetry;
  if (want_trace || want_metrics) {
    TelemetryConfig telemetry_config;
    telemetry_config.trace_enabled = want_trace;
    telemetry_config.metrics_enabled = want_metrics;
    telemetry = std::make_unique<Telemetry>(telemetry_config);
  }
  Duration metrics_interval = Duration::Seconds(60);
  if (const auto interval = GetDurationFlag(flags, "metrics-interval")) {
    metrics_interval = *interval;
  } else if (flags.Has("metrics-interval")) {
    return 2;
  }

#if defined(__unix__) || defined(__APPLE__)
  std::optional<SignalFlushGuard> signal_guard;
  if (flags.GetBool("progress", false) && telemetry != nullptr) {
    signal_guard.emplace(flags, telemetry.get());
  }
#endif

  const bool has_cost_flags =
      flags.Has("cost-gb-s") || flags.Has("cost-cpu-s") ||
      flags.Has("cost-invoke") || flags.Has("resource-telemetry");
  if (flags.Has("faults") || flags.Has("mtbf") || HasOverloadFlags(flags) ||
      HasNetworkFlags(flags) || has_cost_flags) {
    const int status = RunChaosEvaluation(flags, trace, factories,
                                          telemetry.get(), metrics_interval);
    if (status != 0) {
      return status;
    }
    PrintPeakRss();
    return WriteTelemetryOutputs(flags, telemetry.get());
  }

  std::vector<PolicyPoint> points;
  if (stream) {
    const int shard_apps = static_cast<int>(flags.GetInt("shard-apps", 1024));
    const int max_resident =
        static_cast<int>(flags.GetInt("max-resident-shards", 2));
    if (shard_apps <= 0 || max_resident <= 0) {
      std::fprintf(stderr,
                   "--shard-apps and --max-resident-shards must be "
                   "positive\n");
      return 2;
    }
    std::unique_ptr<ShardSource> source;
    if (gen_mode) {
      source = std::make_unique<GeneratorShardSource>(*generator, shard_apps);
    } else {
      source = std::make_unique<TraceShardSource>(trace, shard_apps);
    }
    StreamingSweepOptions stream_options;
    stream_options.max_resident_shards = max_resident;
    std::printf("streaming sweep: %d shards of %d apps, <=%d resident\n",
                source->num_shards(), shard_apps, max_resident);
    points = EvaluatePoliciesStreamed(*source, factories,
                                      /*baseline_index=*/0, options,
                                      stream_options);
    if (!points.empty()) {
      std::printf("streamed: %zu surviving apps, %lld invocations\n",
                  points[0].result.apps.size(),
                  static_cast<long long>(points[0].result.TotalInvocations()));
    }
  } else {
    options.telemetry = telemetry.get();
    const ProgressHeartbeat heartbeat(
        flags.GetBool("progress", false) && telemetry != nullptr &&
                telemetry->metrics_enabled()
            ? &telemetry->metrics()
            : nullptr,
        "faas_sim_apps_total", "apps",
        static_cast<int64_t>(trace.apps.size() * factories.size()));
    points = EvaluatePolicies(trace, factories, /*baseline_index=*/0, options);
  }
  if (const int status = WriteTelemetryOutputs(flags, telemetry.get());
      status != 0) {
    return status;
  }

  std::printf("\n%-44s %10s %10s %12s %18s\n", "policy", "cold p50",
              "cold p75", "always-cold", "waste vs first");
  for (const PolicyPoint& point : points) {
    std::printf("%-44s %9.1f%% %9.1f%% %11.1f%% %17.1f%%\n",
                point.name.c_str(),
                point.result.AppColdStartPercentile(50.0),
                point.cold_start_p75,
                100.0 * point.result.FractionAppsAlwaysCold(false),
                point.normalized_wasted_memory_pct);
  }
  PrintPeakRss();
  return 0;
}
