// trace_stats: the full Section 3 characterization report for a trace in
// the Azure public dataset CSV schema (this library's files or the real
// AzurePublicDataset files).
//
// Usage: trace_stats --trace DIR

#include <cstdio>

#include "src/characterization/characterization.h"
#include "src/trace/csv.h"
#include "tools/flags.h"

int main(int argc, char** argv) {
  using namespace faas;
  FlagParser flags;
  if (!flags.Parse(argc, argv) || !flags.Has("trace") || flags.Has("help")) {
    std::fprintf(stderr, "usage: trace_stats --trace DIR\n");
    return flags.Has("help") ? 0 : 2;
  }

  const auto read = ReadTraceCsv(flags.GetString("trace", ""));
  if (!read.ok) {
    std::fprintf(stderr, "failed to read trace: %s\n", read.error.c_str());
    return 1;
  }
  const Trace& trace = read.value;
  std::printf("=== trace overview ===\n");
  std::printf("apps %zu, functions %lld, invocations %lld, days %d\n",
              trace.apps.size(),
              static_cast<long long>(trace.TotalFunctions()),
              static_cast<long long>(trace.TotalInvocations()),
              static_cast<int>(trace.horizon.days()));

  std::printf("\n=== functions per app (Figure 1) ===\n");
  const auto per_app = AnalyzeFunctionsPerApp(trace);
  for (int n : {1, 3, 10, 100}) {
    std::printf("apps with <= %3d functions: %5.1f%%  (invocation share "
                "%5.1f%%)\n",
                n, 100.0 * per_app.FractionAppsWithAtMost(n),
                100.0 * per_app.FractionInvocationsFromAppsWithAtMost(n));
  }

  std::printf("\n=== trigger shares (Figure 2) ===\n");
  const auto shares = AnalyzeTriggerShares(trace);
  for (TriggerType trigger : AllTriggerTypes()) {
    const auto i = static_cast<size_t>(trigger);
    std::printf("%-14s functions %5.1f%%, invocations %5.1f%%\n",
                std::string(TriggerTypeName(trigger)).c_str(),
                shares.percent_functions[i], shares.percent_invocations[i]);
  }

  std::printf("\n=== trigger combinations (Figure 3) ===\n");
  const auto combos = AnalyzeTriggerCombos(trace);
  int shown = 0;
  for (const auto& row : combos.combos) {
    std::printf("%-8s %6.2f%% (cum %6.2f%%)\n", row.combo.c_str(),
                row.percent_apps, row.cumulative_percent);
    if (++shown >= 10) {
      break;
    }
  }

  std::printf("\n=== invocation rates (Figure 5) ===\n");
  const auto rates = AnalyzeInvocationRates(trace);
  std::printf("apps <= 1/hour: %5.1f%%, <= 1/minute: %5.1f%%\n",
              100.0 * rates.fraction_apps_at_most_hourly,
              100.0 * rates.fraction_apps_at_most_minutely);
  std::printf("apps >= 1/minute: %5.1f%% carrying %5.1f%% of invocations\n",
              100.0 * rates.fraction_apps_minutely,
              100.0 * rates.invocation_share_of_minutely_apps);

  std::printf("\n=== IAT variability (Figure 6) ===\n");
  const auto cv = AnalyzeIatCv(trace);
  if (!cv.all_apps.empty()) {
    std::printf("apps with CV ~ 0: %5.1f%%; CV > 1: %5.1f%%  (n=%zu)\n",
                100.0 * cv.all_apps.FractionAtOrBelow(0.05),
                100.0 * (1.0 - cv.all_apps.FractionAtOrBelow(1.0)),
                cv.all_apps.size());
  }

  std::printf("\n=== execution times (Figure 7) ===\n");
  const auto exec = AnalyzeExecutionTimes(trace);
  std::printf("average exec: p50 %.2fs, p90 %.2fs; log-normal fit mu=%.2f "
              "sigma=%.2f\n",
              exec.average_seconds.Quantile(0.5),
              exec.average_seconds.Quantile(0.9), exec.average_fit.mu,
              exec.average_fit.sigma);

  std::printf("\n=== memory (Figure 8) ===\n");
  const auto memory = AnalyzeMemory(trace);
  std::printf("average MB: p50 %.0f, p90 %.0f; max MB: p50 %.0f, p90 %.0f\n",
              memory.average_mb.Quantile(0.5), memory.average_mb.Quantile(0.9),
              memory.maximum_mb.Quantile(0.5),
              memory.maximum_mb.Quantile(0.9));
  std::printf("Burr fit: c=%.2f k=%.3f lambda=%.1f\n", memory.average_fit.c,
              memory.average_fit.k, memory.average_fit.lambda);

  std::printf("\n=== idle time vs IAT (Section 3.4) ===\n");
  const auto idle = AnalyzeIdleVsIat(trace);
  if (!idle.ks_distance_cdf.empty()) {
    std::printf("median KS(IT, IAT) = %.4f over %zu apps; median exec/IAT "
                "ratio %.2e\n",
                idle.ks_distance_cdf.Quantile(0.5),
                idle.ks_distance_cdf.size(), idle.median_exec_to_iat_ratio);
  }
  return 0;
}
