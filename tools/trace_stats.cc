// trace_stats: the full Section 3 characterization report for a trace in
// the Azure public dataset CSV schema (this library's files or the real
// AzurePublicDataset files).
//
// Usage: trace_stats --trace DIR [--summary-metrics]
//
// --summary-metrics replaces the human-readable report with the same
// Prometheus text exposition format the telemetry subsystem emits
// (policy_eval --metrics-out), so a static trace characterization can be
// scraped or diffed alongside simulation metrics.

#include <cstdio>
#include <iostream>
#include <string>

#include "src/characterization/characterization.h"
#include "src/telemetry/export.h"
#include "src/telemetry/metrics.h"
#include "src/trace/csv.h"
#include "tools/flags.h"

namespace {

using namespace faas;

// Renders the Section 3 characterization into a metrics registry and prints
// it as Prometheus text.  Counters carry the raw totals; gauges carry the
// derived ratios, quantiles, and fitted-distribution parameters.
void EmitSummaryMetrics(const Trace& trace) {
  MetricsRegistry registry;
  const TimePoint at;  // All values describe the trace, not a point in time.
  const auto counter = [&](const char* name, const char* help,
                           int64_t value) {
    registry.Inc(registry.AddCounter(name, help), value);
  };
  const auto gauge = [&](const char* name, const char* help, double value,
                         const std::string& label = "") {
    registry.Set(registry.AddGauge(name, help, label), value, at);
  };

  counter("faas_trace_apps_total", "Applications in the trace",
          static_cast<int64_t>(trace.apps.size()));
  counter("faas_trace_functions_total", "Functions in the trace",
          trace.TotalFunctions());
  counter("faas_trace_invocations_total", "Invocations in the trace",
          trace.TotalInvocations());
  gauge("faas_trace_horizon_days", "Trace horizon, days",
        static_cast<double>(trace.horizon.days()));

  const auto per_app = AnalyzeFunctionsPerApp(trace);
  for (int n : {1, 3, 10, 100}) {
    const std::string label =
        "max_functions=\"" + std::to_string(n) + "\"";
    gauge("faas_trace_apps_with_at_most_functions_ratio",
          "Fraction of apps with at most this many functions (Figure 1)",
          per_app.FractionAppsWithAtMost(n), label);
    gauge("faas_trace_invocation_share_apps_at_most_functions_ratio",
          "Invocation share of apps with at most this many functions",
          per_app.FractionInvocationsFromAppsWithAtMost(n), label);
  }

  const auto shares = AnalyzeTriggerShares(trace);
  for (TriggerType trigger : AllTriggerTypes()) {
    const auto i = static_cast<size_t>(trigger);
    const std::string label =
        "trigger=\"" + std::string(TriggerTypeName(trigger)) + "\"";
    gauge("faas_trace_trigger_functions_percent",
          "Share of functions with this trigger type, percent (Figure 2)",
          shares.percent_functions[i], label);
    gauge("faas_trace_trigger_invocations_percent",
          "Share of invocations from this trigger type, percent",
          shares.percent_invocations[i], label);
  }

  const auto rates = AnalyzeInvocationRates(trace);
  gauge("faas_trace_apps_at_most_hourly_ratio",
        "Fraction of apps invoked at most once per hour (Figure 5)",
        rates.fraction_apps_at_most_hourly);
  gauge("faas_trace_apps_at_most_minutely_ratio",
        "Fraction of apps invoked at most once per minute",
        rates.fraction_apps_at_most_minutely);
  gauge("faas_trace_apps_minutely_ratio",
        "Fraction of apps invoked at least once per minute",
        rates.fraction_apps_minutely);
  gauge("faas_trace_invocation_share_minutely_apps_ratio",
        "Invocation share of apps invoked at least once per minute",
        rates.invocation_share_of_minutely_apps);

  const auto cv = AnalyzeIatCv(trace);
  if (!cv.all_apps.empty()) {
    for (double q : {0.5, 0.9}) {
      gauge("faas_trace_iat_cv",
            "Coefficient of variation of per-app inter-arrival times "
            "(Figure 6)",
            cv.all_apps.Quantile(q),
            "quantile=\"" + FormatMetricValue(q) + "\"");
    }
    gauge("faas_trace_apps_cv_near_zero_ratio",
          "Fraction of apps with IAT CV at or below 0.05",
          cv.all_apps.FractionAtOrBelow(0.05));
  }

  const auto exec = AnalyzeExecutionTimes(trace);
  for (double q : {0.5, 0.9}) {
    gauge("faas_trace_avg_exec_seconds",
          "Per-function average execution time, seconds (Figure 7)",
          exec.average_seconds.Quantile(q),
          "quantile=\"" + FormatMetricValue(q) + "\"");
  }
  gauge("faas_trace_exec_lognormal_mu",
        "Log-normal fit of average execution times: mu",
        exec.average_fit.mu);
  gauge("faas_trace_exec_lognormal_sigma",
        "Log-normal fit of average execution times: sigma",
        exec.average_fit.sigma);

  const auto memory = AnalyzeMemory(trace);
  for (double q : {0.5, 0.9}) {
    const std::string label = "quantile=\"" + FormatMetricValue(q) + "\"";
    gauge("faas_trace_avg_memory_mb",
          "Per-app average allocated memory, MB (Figure 8)",
          memory.average_mb.Quantile(q), label);
    gauge("faas_trace_max_memory_mb", "Per-app maximum allocated memory, MB",
          memory.maximum_mb.Quantile(q), label);
  }
  gauge("faas_trace_memory_burr_c", "Burr fit of average memory: c",
        memory.average_fit.c);
  gauge("faas_trace_memory_burr_k", "Burr fit of average memory: k",
        memory.average_fit.k);
  gauge("faas_trace_memory_burr_lambda", "Burr fit of average memory: lambda",
        memory.average_fit.lambda);

  const auto idle = AnalyzeIdleVsIat(trace);
  if (!idle.ks_distance_cdf.empty()) {
    gauge("faas_trace_idle_vs_iat_ks_distance",
          "KS distance between idle-time and IAT CDFs (Section 3.4)",
          idle.ks_distance_cdf.Quantile(0.5), "quantile=\"0.5\"");
    gauge("faas_trace_median_exec_to_iat_ratio",
          "Median ratio of execution time to inter-arrival time",
          idle.median_exec_to_iat_ratio);
  }

  WritePrometheusText(registry.Scrape(), std::cout);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace faas;
  FlagParser flags;
  if (!flags.Parse(argc, argv) || !flags.Has("trace") || flags.Has("help")) {
    std::fprintf(stderr,
                 "usage: trace_stats --trace DIR [--summary-metrics]\n");
    return flags.Has("help") ? 0 : 2;
  }

  const auto read = ReadTraceCsv(flags.GetString("trace", ""));
  if (!read.ok) {
    std::fprintf(stderr, "failed to read trace: %s\n", read.error.c_str());
    return 1;
  }
  const Trace& trace = read.value;
  if (flags.GetBool("summary-metrics", false)) {
    EmitSummaryMetrics(trace);
    return 0;
  }
  std::printf("=== trace overview ===\n");
  std::printf("apps %zu, functions %lld, invocations %lld, days %d\n",
              trace.apps.size(),
              static_cast<long long>(trace.TotalFunctions()),
              static_cast<long long>(trace.TotalInvocations()),
              static_cast<int>(trace.horizon.days()));

  std::printf("\n=== functions per app (Figure 1) ===\n");
  const auto per_app = AnalyzeFunctionsPerApp(trace);
  for (int n : {1, 3, 10, 100}) {
    std::printf("apps with <= %3d functions: %5.1f%%  (invocation share "
                "%5.1f%%)\n",
                n, 100.0 * per_app.FractionAppsWithAtMost(n),
                100.0 * per_app.FractionInvocationsFromAppsWithAtMost(n));
  }

  std::printf("\n=== trigger shares (Figure 2) ===\n");
  const auto shares = AnalyzeTriggerShares(trace);
  for (TriggerType trigger : AllTriggerTypes()) {
    const auto i = static_cast<size_t>(trigger);
    std::printf("%-14s functions %5.1f%%, invocations %5.1f%%\n",
                std::string(TriggerTypeName(trigger)).c_str(),
                shares.percent_functions[i], shares.percent_invocations[i]);
  }

  std::printf("\n=== trigger combinations (Figure 3) ===\n");
  const auto combos = AnalyzeTriggerCombos(trace);
  int shown = 0;
  for (const auto& row : combos.combos) {
    std::printf("%-8s %6.2f%% (cum %6.2f%%)\n", row.combo.c_str(),
                row.percent_apps, row.cumulative_percent);
    if (++shown >= 10) {
      break;
    }
  }

  std::printf("\n=== invocation rates (Figure 5) ===\n");
  const auto rates = AnalyzeInvocationRates(trace);
  std::printf("apps <= 1/hour: %5.1f%%, <= 1/minute: %5.1f%%\n",
              100.0 * rates.fraction_apps_at_most_hourly,
              100.0 * rates.fraction_apps_at_most_minutely);
  std::printf("apps >= 1/minute: %5.1f%% carrying %5.1f%% of invocations\n",
              100.0 * rates.fraction_apps_minutely,
              100.0 * rates.invocation_share_of_minutely_apps);

  std::printf("\n=== IAT variability (Figure 6) ===\n");
  const auto cv = AnalyzeIatCv(trace);
  if (!cv.all_apps.empty()) {
    std::printf("apps with CV ~ 0: %5.1f%%; CV > 1: %5.1f%%  (n=%zu)\n",
                100.0 * cv.all_apps.FractionAtOrBelow(0.05),
                100.0 * (1.0 - cv.all_apps.FractionAtOrBelow(1.0)),
                cv.all_apps.size());
  }

  std::printf("\n=== execution times (Figure 7) ===\n");
  const auto exec = AnalyzeExecutionTimes(trace);
  std::printf("average exec: p50 %.2fs, p90 %.2fs; log-normal fit mu=%.2f "
              "sigma=%.2f\n",
              exec.average_seconds.Quantile(0.5),
              exec.average_seconds.Quantile(0.9), exec.average_fit.mu,
              exec.average_fit.sigma);

  std::printf("\n=== memory (Figure 8) ===\n");
  const auto memory = AnalyzeMemory(trace);
  std::printf("average MB: p50 %.0f, p90 %.0f; max MB: p50 %.0f, p90 %.0f\n",
              memory.average_mb.Quantile(0.5), memory.average_mb.Quantile(0.9),
              memory.maximum_mb.Quantile(0.5),
              memory.maximum_mb.Quantile(0.9));
  std::printf("Burr fit: c=%.2f k=%.3f lambda=%.1f\n", memory.average_fit.c,
              memory.average_fit.k, memory.average_fit.lambda);

  std::printf("\n=== idle time vs IAT (Section 3.4) ===\n");
  const auto idle = AnalyzeIdleVsIat(trace);
  if (!idle.ks_distance_cdf.empty()) {
    std::printf("median KS(IT, IAT) = %.4f over %zu apps; median exec/IAT "
                "ratio %.2e\n",
                idle.ks_distance_cdf.Quantile(0.5),
                idle.ks_distance_cdf.size(), idle.median_exec_to_iat_ratio);
  }
  return 0;
}
